"""lilLinAlg: least-squares regression in the Matlab-like DSL.

Reproduces the paper's flagship tool-development example (Section 8.3):
a distributed linear-algebra DSL whose multiply compiles to a PC join +
aggregation.  The program below is (modulo quoting) the one printed in
the paper.

Run:  python examples/lillinalg_regression.py
"""

import numpy as np

from repro.cluster import PCCluster
from repro.lillinalg import LilLinAlg


def main():
    rng = np.random.default_rng(7)
    n, d = 400, 5
    x = rng.normal(size=(n, d))
    beta_true = rng.normal(size=d)
    y = x @ beta_true + 0.05 * rng.normal(size=n)

    cluster = PCCluster(n_workers=4, page_size=1 << 20)
    lla = LilLinAlg(cluster)
    lla.load_numpy("X", x, block_rows=64, block_cols=d)
    lla.load_numpy("y", y.reshape(-1, 1), block_rows=64, block_cols=1)

    beta = lla.run("""
        X = load("lla", "X");
        y = load("lla", "y");
        beta = (X '* X)^-1 %*% (X '* y);
        save(beta, "lla", "beta");
    """)

    estimate = beta.to_numpy().ravel()
    print("true beta:     ", np.round(beta_true, 4))
    print("estimated beta:", np.round(estimate, 4))
    print("max abs error: ", float(np.abs(estimate - np.linalg.solve(
        x.T @ x, x.T @ y)).max()))
    print("\nnetwork:", cluster.network.stats())


if __name__ == "__main__":
    main()
