"""LDA topic mining on PC: the Figure 2 computation graph in action.

A word-based, non-collapsed Gibbs sampler over (doc, word, count)
triples: each iteration executes a three-way join (triples x theta x
phi) plus two aggregations across the simulated cluster.

Run:  python examples/lda_topics.py
"""

import numpy as np

from repro.cluster import PCCluster
from repro.core import computation_graph
from repro.ml import PCLda


def synthetic_corpus(rng, n_docs, dictionary, planted_topics=2):
    """Documents draw words from one of two disjoint vocabulary halves."""
    half = dictionary // planted_topics
    triples = []
    for doc in range(n_docs):
        topic = doc % planted_topics
        vocabulary = range(topic * half, (topic + 1) * half)
        for word in rng.choice(list(vocabulary), size=8, replace=False):
            triples.append((doc, int(word), int(rng.integers(1, 5))))
    return triples


def main():
    rng = np.random.default_rng(0)
    n_docs, dictionary = 40, 30
    triples = synthetic_corpus(rng, n_docs, dictionary)

    cluster = PCCluster(n_workers=3, page_size=1 << 16)
    lda = PCLda(cluster, n_topics=2, seed=9)
    lda.load(triples, n_docs=n_docs, dictionary_size=dictionary)

    writers, _d, _w = lda.build_iteration_graph()
    graph = computation_graph(writers)
    print("one Gibbs iteration = %d Computation objects:" % len(graph))
    for comp in graph:
        print("  %-14s %s" % (type(comp).__name__, comp.name))

    theta, phi = lda.run(iterations=4)

    # Documents from the two planted halves should separate in theta.
    even = np.mean([theta[d] for d in range(0, n_docs, 2)], axis=0)
    odd = np.mean([theta[d] for d in range(1, n_docs, 2)], axis=0)
    print("\nmean theta, even documents:", np.round(even, 3))
    print("mean theta, odd documents: ", np.round(odd, 3))
    print("separation:",
          round(float(np.abs(even - odd).sum()), 3))


if __name__ == "__main__":
    main()
