"""TPC-H: top-k Jaccard over heavily nested Customer objects.

Section 8.4's second computation: generate a denormalized TPC-H
instance, store whole Customer->Order->LineItem->{Part,Supplier} trees
on PC pages, and find the k customers whose purchased-part sets best
match a query list.

Run:  python examples/tpch_topk.py
"""

from repro.cluster import PCCluster
from repro.tpch import (
    TpchSpec,
    customers_per_supplier_pc,
    load_pc_customers,
    top_k_jaccard_pc,
)


def main():
    spec = TpchSpec(n_customers=300, n_parts=120, n_suppliers=10, seed=42)
    cluster = PCCluster(n_workers=4, page_size=1 << 18)
    count = load_pc_customers(cluster, spec)
    print("loaded %d nested Customer trees" % count)

    query_parts = [3, 17, 23, 42, 51, 64, 77, 99]
    top = top_k_jaccard_pc(cluster, k=5, query_parts=query_parts)
    print("\ntop-5 customers by Jaccard similarity to", query_parts)
    for similarity, cust_key, parts in top:
        print("  customer %4d  similarity %.4f  (%d unique parts)"
              % (cust_key, similarity, len(parts)))

    result, total = customers_per_supplier_pc(cluster)
    busiest = max(result.items(), key=lambda kv: len(kv[1]))
    print("\ncustomers-per-supplier: %d supplier groups, %d customer "
          "entries" % (len(result), total))
    print("busiest supplier: %s with %d customers"
          % (busiest[0], len(busiest[1])))


if __name__ == "__main__":
    main()
