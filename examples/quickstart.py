"""Quickstart: the PC object model and a first declarative computation.

Covers the paper's introductory flow (Sections 3-4): define a PC object
type, load data into a simulated cluster with zero-cost page movement,
and run a selection + aggregation written with the lambda calculus.

Run:  python examples/quickstart.py
"""

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_method,
)
from repro.memory import Float64, Int32, Int64, PCObject, String, VectorType
from repro.obs import render_trace


# A complex PC object: nested container fields live on the same page.
class DataPoint(PCObject):
    fields = [
        ("point_id", Int32),
        ("label", String),
        ("features", VectorType(Float64)),
    ]

    def magnitude(self):
        return float((self.features.as_numpy() ** 2).sum()) ** 0.5

    def bucket(self):
        return self.point_id % 4


# Declarative in the large: a selection whose intent PC can see...
class BigPoints(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_method(arg, "magnitude") > 1.0

    def get_projection(self, arg):
        from repro.core import lambda_from_self

        return lambda_from_self(arg)


# ...feeding an aggregation keyed by a method call.
class CountByBucket(AggregateComp):
    key_type = Int64
    value_type = Int64

    def get_key_projection(self, arg):
        return lambda_from_method(arg, "bucket")

    def get_value_projection(self, arg):
        from repro.core import lambda_from_native

        return lambda_from_native([arg], lambda p: 1)


def main():
    cluster = PCCluster(n_workers=3, page_size=1 << 14)
    cluster.register_type(DataPoint)
    cluster.create_database("demo")
    cluster.create_set("demo", "points", DataPoint)

    # Load: objects are allocated in place on client pages, and the page
    # *bytes* ship to workers — no serialization anywhere.
    with cluster.loader("demo", "points") as load:
        for i in range(500):
            load.append(
                DataPoint,
                point_id=i,
                label="p%d" % i,
                features=[(i % 7) / 3.0, (i % 5) / 3.0],
            )
    print("loaded:", cluster.storage_manager.total_objects("demo", "points"),
          "points;", cluster.network.stats()["bytes_zero_copy"],
          "bytes moved zero-copy")

    reader = ObjectReader("demo", "points")
    selection = BigPoints().set_input(reader)
    aggregate = CountByBucket().set_input(selection)
    writer = Writer("demo", "counts").set_input(aggregate)
    job_log = cluster.execute_computations(writer, job_name="quickstart")

    print("\nscheduled job stages:")
    for stage in job_log:
        print("  ", stage)

    print("\nthe job trace (where the time and the bytes went):")
    print(render_trace(cluster.last_trace))

    print("\nthe optimized TCAP program:")
    print(cluster.last_program.to_text())

    counts = cluster.read("demo", "counts", as_pairs=True, comp=aggregate)
    print("\npoints with |x| > 1, by bucket:", dict(sorted(counts.items())))


if __name__ == "__main__":
    main()
