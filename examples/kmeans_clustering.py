"""k-means on PC, following the paper's Appendix A pattern.

One AggregateComp per Lloyd iteration, carrying the current centroids;
the updated model is read back from the stored Map set each round.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.cluster import PCCluster
from repro.ml import PCKMeans


def main():
    rng = np.random.default_rng(3)
    true_centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 6.0], [6.0, 0.0]])
    points = np.vstack([
        rng.normal(loc=center, scale=0.4, size=(150, 2))
        for center in true_centers
    ])

    cluster = PCCluster(n_workers=4, page_size=1 << 16)
    km = PCKMeans(cluster).load(points, chunk_size=64)
    centers, history = km.train(k=4, iterations=8, seed=11)

    print("converged centers (sorted):")
    for center in sorted(map(tuple, np.round(centers, 2))):
        print("  ", center)
    drift = [
        float(np.abs(a - b).max())
        for a, b in zip(history, history[1:])
    ]
    print("\nper-iteration max center movement:",
          [round(d, 4) for d in drift])
    print("network:", cluster.network.stats())


if __name__ == "__main__":
    main()
