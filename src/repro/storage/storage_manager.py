"""Storage managers: the distributed coordinator and per-worker servers.

The master's *distributed storage manager* decides how a stored set is
partitioned over workers and routes loaded data; each worker's *local
storage server* owns a shared buffer pool plus the user-level file system
holding its partitions (Appendix D.1).
"""

from __future__ import annotations

import itertools

from repro.errors import (
    CatalogError,
    ReplicationError,
    SetNotFoundError,
    StorageError,
)
from repro.storage.buffer_pool import BufferPool
from repro.storage.dataset import PageSet
from repro.storage.page import DEFAULT_PAGE_SIZE


class LocalStorageServer:
    """One worker's storage: a buffer pool and its set partitions."""

    def __init__(self, worker_id, capacity_bytes, page_size=DEFAULT_PAGE_SIZE,
                 registry=None, spill_dir=None, tracer=None,
                 fault_injector=None, metrics=None, residency="mem",
                 shm_registry=None):
        self.worker_id = worker_id
        self.pool = BufferPool(
            capacity_bytes, page_size=page_size, registry=registry,
            spill_dir=spill_dir, tracer=tracer,
            fault_injector=fault_injector, metrics=metrics,
            residency=residency, shm_registry=shm_registry,
        )
        self.metrics = self.pool.metrics
        self._sets = {}  # (db, set) -> PageSet

    def sets(self):
        """All local partitions, as ``((db, name), PageSet)`` pairs."""
        return list(self._sets.items())

    def create_set(self, database, name, type_name=None, page_size=None,
                   layout="row", schema=None):
        """Create the local partition of a set; idempotent."""
        key = (database, name)
        if key not in self._sets:
            self._sets[key] = PageSet(
                database, name, self.pool, type_name=type_name,
                page_size=page_size, layout=layout, schema=schema,
            )
        return self._sets[key]

    def get_set(self, database, name):
        """The local partition of a set, or raise."""
        try:
            return self._sets[(database, name)]
        except KeyError:
            raise SetNotFoundError(
                "worker %r has no partition of %s.%s"
                % (self.worker_id, database, name)
            ) from None

    def has_set(self, database, name):
        return (database, name) in self._sets

    def drop_set(self, database, name):
        """Clear and remove the local partition."""
        page_set = self._sets.pop((database, name), None)
        if page_set is not None:
            page_set.clear()

    def stats(self):
        """Buffer-pool counters plus local set sizes."""
        return {
            "worker_id": self.worker_id,
            "buffer_pool": self.pool.stats(),
            "sets": {
                "%s.%s" % key: len(page_set)
                for key, page_set in self._sets.items()
            },
        }


class DistributedStorageManager:
    """The master-side coordinator for stored sets."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._servers = {}  # worker_id -> LocalStorageServer
        self._round_robin = {}

    def attach_server(self, server):
        """Register a worker's local storage server."""
        self._servers[server.worker_id] = server

    def detach_server(self, worker_id):
        """Remove a (decommissioned) worker's storage server.

        The caller is responsible for having redistributed the worker's
        partitions first; after detaching, ``partitions`` and the loader's
        round-robin routing see only the surviving workers.
        """
        self._servers.pop(worker_id, None)
        # Rebuild the routing cycles so new pages land on survivors only.
        for key in self._round_robin:
            self._round_robin[key] = itertools.cycle(self.worker_ids)

    @property
    def worker_ids(self):
        return sorted(self._servers)

    def server(self, worker_id):
        try:
            return self._servers[worker_id]
        except KeyError:
            raise StorageError("unknown worker %r" % (worker_id,)) from None

    def has_server(self, worker_id):
        """Whether ``worker_id``'s storage server is (still) attached."""
        return worker_id in self._servers

    def create_database(self, name):
        """Create a database namespace cluster-wide."""
        self.catalog.create_database(name)

    def create_set(self, database, name, type_name=None, page_size=None,
                   replication=1, layout="row", schema=None):
        """Create a set partitioned over every attached worker.

        The creation is atomic: if any worker-side create fails, the
        catalog record and the partitions created so far are rolled back,
        so a failed ``create_set`` leaves no half-created set behind.
        """
        if not self._servers:
            raise StorageError("no storage servers attached")
        if replication < 1:
            raise ReplicationError(
                "replication factor must be >= 1, got %r" % (replication,)
            )
        if replication > len(self._servers):
            raise ReplicationError(
                "replication factor %d exceeds the %d attached workers"
                % (replication, len(self._servers))
            )
        meta = self.catalog.create_set(
            database, name, type_name, self.worker_ids,
            replication=replication, page_size=page_size,
            layout=layout, schema=schema,
        )
        created = []
        try:
            for server in self._servers.values():
                server.create_set(
                    database, name, type_name, page_size=page_size,
                    layout=layout, schema=schema,
                )
                created.append(server)
        except Exception:
            for server in created:
                server.drop_set(database, name)
            self.catalog.drop_set(database, name)
            raise
        self._round_robin[(database, name)] = itertools.cycle(self.worker_ids)
        return meta

    def drop_set(self, database, name):
        """Remove a set everywhere."""
        self.catalog.drop_set(database, name)
        self._round_robin.pop((database, name), None)
        for server in self._servers.values():
            server.drop_set(database, name)

    def partitions(self, database, name):
        """The per-worker :class:`PageSet` partitions of a set.

        Raises :class:`SetNotFoundError` for an unknown database or set,
        so storage callers see one error family regardless of whether the
        miss happened in the catalog or on a worker.  A partition whose
        worker is gone is a hard :class:`StorageError` naming the missing
        workers — unless every page of the set is still covered by a live
        replica, in which case reads can proceed on the survivors.
        """
        try:
            meta = self.catalog.set_metadata(database, name)
        except CatalogError:
            raise SetNotFoundError(
                "unknown set %s.%s" % (database, name)
            ) from None
        missing = [w for w in meta.partitions if w not in self._servers]
        if missing:
            uncovered = self._uncovered_pages(meta)
            if uncovered or not meta.pages:
                raise StorageError(
                    "set %s.%s is missing partitions on worker(s) %s "
                    "with no live replica covering them"
                    % (database, name, ", ".join(map(repr, sorted(missing))))
                )
        return [
            self._servers[worker_id].get_set(database, name)
            for worker_id in meta.partitions
            if worker_id in self._servers
        ]

    def _uncovered_pages(self, meta):
        """Page uids of ``meta`` with no replica on an attached worker."""
        return [
            record.uid
            for record in meta.pages.values()
            if not any(w in self._servers for w in record.workers())
        ]

    def next_target(self, database, name):
        """Round-robin choice of the worker receiving the next loaded page."""
        cycle = self._round_robin.get((database, name))
        if cycle is None:
            raise SetNotFoundError("unknown set %s.%s" % (database, name))
        return next(cycle)

    def total_objects(self, database, name):
        """Total object count of a set across all partitions.

        A set with a catalog replica map is counted from its page records
        (the authoritative count even while a partition's worker is dead);
        sets without one fall back to summing the live partitions.
        """
        try:
            meta = self.catalog.set_metadata(database, name)
        except CatalogError:
            raise SetNotFoundError(
                "unknown set %s.%s" % (database, name)
            ) from None
        if meta.pages:
            return sum(record.count for record in meta.pages.values())
        return sum(len(p) for p in self.partitions(database, name))

    def __contains__(self, key):
        database, name = key
        try:
            self.catalog.set_metadata(database, name)
            return True
        except CatalogError:
            return False
