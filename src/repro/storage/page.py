"""Pages: fixed-size units of buffered, movable object storage.

A :class:`Page` owns one allocation block.  Pages are handed out by the
buffer pool, pinned while in use, and either recycled (overwritten by a
new set of objects — the paper's cheapest "deallocation"), spilled to the
user-level file system, or shipped across the simulated network.
"""

from __future__ import annotations

from repro.memory.block import LIGHTWEIGHT_REUSE, AllocationBlock

#: PC's default page size is 256 MB (Section 8.3.1); the reproduction
#: default is scaled down to keep laptop runs snappy, and every workload
#: that tunes page size (Table 2) passes its own.
DEFAULT_PAGE_SIZE = 1 << 20


class Page:
    """One buffer-pool page wrapping an allocation block."""

    __slots__ = ("page_id", "block", "pin_count", "dirty", "set_key",
                 "checksum", "shm")

    def __init__(self, page_id, block, set_key=None):
        self.page_id = page_id
        self.block = block
        self.pin_count = 0
        self.dirty = False
        #: the (database, set) this page belongs to, when any.
        self.set_key = set_key
        #: CRC32 stamped when the page was sealed (None while writable).
        self.checksum = None
        #: the SharedMemory segment backing ``block.buf`` when the owning
        #: pool runs in ``shm`` residency (None for bytearray residency).
        self.shm = None

    @property
    def size(self):
        return self.block.size if self.block is not None else 0

    @property
    def in_memory(self):
        """False once the page's bytes have been spilled and dropped."""
        return self.block is not None

    def to_bytes(self):
        """Zero-cost representation of the page (block bytes verbatim)."""
        return self.block.to_bytes()

    @classmethod
    def from_bytes(cls, page_id, data, registry=None, set_key=None,
                   metrics=None):
        """Reconstitute a page that arrived from disk or the network."""
        block = AllocationBlock.from_bytes(data, registry=registry,
                                           metrics=metrics)
        return cls(page_id, block, set_key=set_key)

    @classmethod
    def fresh(cls, page_id, size, registry=None, policy=LIGHTWEIGHT_REUSE,
              set_key=None, metrics=None):
        """A brand-new, empty page."""
        block = AllocationBlock(size, policy=policy, registry=registry,
                                metrics=metrics)
        return cls(page_id, block, set_key=set_key)

    def __repr__(self):
        state = "mem" if self.in_memory else "spilled"
        return "<Page %d %s pins=%d>" % (self.page_id, state, self.pin_count)
