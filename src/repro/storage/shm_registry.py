"""Crash-safe registry of named shared-memory segments.

The "shm" page residency backs sealed pages with named POSIX
shared-memory segments so back-end *processes* can attach to them
zero-copy.  Named segments outlive their creator: a coordinator that is
``kill -9``'d leaves every segment it owned sitting in ``/dev/shm``
forever — no destructor, no ``atexit`` hook, no ``resource_tracker``
runs after SIGKILL.

The fix mirrors the catalog's write-ahead journal: every segment
*create* and *unlink* is appended to a registry file next to the catalog
WAL **before** it matters, so the registry is always a superset of the
segments that might exist.  A later run (``PCCluster.__init__`` /
``recover()``) replays the registry and reaps every live-listed segment
whose creator pid is dead — crash hygiene as replay, exactly like DDL
recovery.

Records are one JSON object per line::

    {"op": "create", "name": "pc1234-ab12cd-7", "pid": 1234}
    {"op": "unlink", "name": "pc1234-ab12cd-7", "pid": 1234}

Appends are flushed to the OS (surviving a SIGKILL of the process) but
not fsync'd: the threat model is a dead *process*, not a dead machine —
the segments themselves do not survive a reboot either.
"""

from __future__ import annotations

import json
import os


def pid_alive(pid):
    """Whether ``pid`` names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def unlink_segment(name):
    """Unlink one named segment; returns True if it existed.

    Attaches by name, immediately closes, and unlinks — the attach is
    unavoidable (POSIX unlinks by handle in Python's wrapper) and the
    resource tracker's registration is undone by the unlink itself.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:
        # A foreign segment we cannot map (permissions, size 0): leave it.
        return False
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        return False
    return True


class ShmRegistry:
    """Journal of named segments owned by the pools sharing one root.

    One registry serves every buffer pool of a cluster (the file sits
    next to the catalog WAL).  ``note_create``/``note_unlink`` append a
    record and keep an in-memory live set; :meth:`sweep_orphans` reaps
    the segments of *dead* creators and compacts the file down to the
    records that still matter.
    """

    #: Compact once the journal carries this many dead records beyond
    #: the live set — spill churn re-creates segments constantly and the
    #: file must not grow without bound.
    COMPACT_SLACK = 4096

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._live = {}  # name -> creator pid (this process's view)
        self._file = None
        self._dead_records = 0
        self.segments_reaped = 0
        for record in self._entries():
            if record.get("op") == "create":
                self._live[record["name"]] = record.get("pid", 0)
            elif record.get("op") == "unlink":
                self._live.pop(record.get("name"), None)
                self._dead_records += 2

    def _entries(self):
        if not os.path.exists(self.path):
            return
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    # A torn final line from a killed writer: every
                    # complete record before it is intact, and the torn
                    # one can only be a missed unlink (the sweep's pid
                    # check makes the create side safe to over-report).
                    continue

    def _append(self, op, name):
        if self._file is None:
            self._file = open(self.path, "a")
        self._file.write(json.dumps(
            {"op": op, "name": name, "pid": os.getpid()},
            sort_keys=True,
        ))
        self._file.write("\n")
        self._file.flush()

    def note_create(self, name):
        """Record a segment this process just created (pre-create is fine)."""
        self._append("create", name)
        self._live[name] = os.getpid()

    def note_unlink(self, name):
        """Record that a segment was unlinked."""
        if name not in self._live:
            return
        self._append("unlink", name)
        self._live.pop(name, None)
        self._dead_records += 2
        if self._dead_records >= self.COMPACT_SLACK:
            self.compact()

    @property
    def live(self):
        """``{name: creator_pid}`` of segments believed to still exist."""
        return dict(self._live)

    def compact(self):
        """Rewrite the journal with only the still-live create records."""
        tmp = self.path + ".compact"
        with open(tmp, "w") as f:
            for name, pid in self._live.items():
                f.write(json.dumps(
                    {"op": "create", "name": name, "pid": pid},
                    sort_keys=True,
                ))
                f.write("\n")
            f.flush()
        if self._file is not None:
            self._file.close()
            self._file = None
        os.replace(tmp, self.path)
        self._dead_records = 0

    def sweep_orphans(self):
        """Reap segments whose creating process is gone; returns the count.

        Segments owned by live pids (including this process) are left
        alone — their pools' finalizers handle them.  Reaped names are
        journaled as unlinked so repeated sweeps stay cheap.
        """
        reaped = 0
        for name, pid in list(self._live.items()):
            if pid_alive(pid):
                continue
            unlink_segment(name)
            # Whether or not the segment still existed, its dead owner
            # can never unlink it again: retire the record either way.
            self._append("unlink", name)
            self._live.pop(name, None)
            self._dead_records += 2
            reaped += 1
        if reaped:
            self.compact()
        self.segments_reaped += reaped
        return reaped

    def close(self):
        if self._file is not None:
            self._file.close()
            self._file = None
