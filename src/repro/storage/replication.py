"""Replicated, checksummed page storage.

PC's storage subsystem keeps a set's pages on the workers' durable
front-ends; this module adds the redundancy layer on top:

* every sealed page is stamped with a CRC32 over its bytes — the
  integrity reference each copy is verified against on every spill
  reload, network receipt, and replicated read;
* ``create_set(..., replication=k)`` places each page on ``k`` workers
  chosen by a deterministic :class:`PlacementRing`, written synchronously
  at load/materialization time;
* the catalog's per-set replica map (``SetMetadata.pages``) is the
  authoritative record of where each page's copies live, so reads can
  fail over to any live replica, corrupted copies are quarantined and
  healed from a healthy one, and a node loss triggers re-replication on
  the survivors instead of data loss.

All activity is counted (``repl.replica_writes``, ``repl.failover_reads``,
``repl.checksum_failures``, ``repl.re_replications``, ``repl.pages_healed``)
both on the manager and into the active trace span.
"""

from __future__ import annotations

import zlib

from repro.errors import (
    CatalogError,
    PageCorruptionError,
    ReplicationError,
)
from repro.memory.builtins import AnyObject, VectorType
from repro.memory.columnar import ColumnarPage
from repro.obs import MetricsRegistry, Tracer

_ROOT_VECTOR = VectorType(AnyObject)


def page_checksum(data):
    """CRC32 of a page's bytes (the integrity stamp)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def corrupt_bytes(data):
    """Flip one byte mid-buffer — the canonical injected corruption."""
    if not data:
        return data
    flipped = bytearray(data)
    flipped[len(flipped) // 2] ^= 0xFF
    return bytes(flipped)


class PlacementRing:
    """Deterministic replica placement over the sorted live workers.

    The primary's ``k - 1`` ring successors hold the extra copies, so
    placement is a pure function of (primary, live workers, k) and every
    node computes the same answer.  Re-replication targets are picked by
    hashing the page uid over the eligible workers, spreading a dead
    node's pages across all survivors instead of one.
    """

    def __init__(self, worker_ids):
        self.worker_ids = sorted(worker_ids)

    def replicas_for(self, primary, k):
        """The ``k`` workers holding a page whose primary is ``primary``."""
        ring = self.worker_ids
        if primary not in ring:
            raise ReplicationError(
                "primary %r is not an attached worker" % (primary,)
            )
        start = ring.index(primary)
        count = min(k, len(ring))
        return [ring[(start + i) % len(ring)] for i in range(count)]

    def rereplication_target(self, uid, holders):
        """A worker to receive a fresh copy of page ``uid``, or None."""
        eligible = [w for w in self.worker_ids if w not in holders]
        if not eligible:
            return None
        index = zlib.crc32(uid.encode("utf-8")) % len(eligible)
        return eligible[index]


class ReplicationManager:
    """Places, verifies, heals, and re-replicates stored pages."""

    def __init__(self, catalog, storage_manager, network, tracer=None,
                 metrics=None):
        self.catalog = catalog
        self.storage_manager = storage_manager
        self.network = network
        self.tracer = tracer or Tracer()
        # Counters live in the metrics registry; trace mirrors and the
        # stats() view both derive from these declarations.
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry(tracer=self.tracer)
        self._c_replica_writes = self.metrics.counter(
            "pc_repl_replica_writes_total",
            help="Page copies placed on replica workers",
            trace="repl.replica_writes",
        )
        self._c_failover_reads = self.metrics.counter(
            "pc_repl_failover_reads_total",
            help="Reads served from a replica after a primary failure",
            trace="repl.failover_reads",
        )
        self._c_checksum_failures = self.metrics.counter(
            "pc_repl_checksum_failures_total",
            help="Replica copies failing their recorded checksum",
            trace="repl.checksum_failures",
        )
        self._c_re_replications = self.metrics.counter(
            "pc_repl_re_replications_total",
            help="Copies re-created to restore the replication factor",
            trace="repl.re_replications",
        )
        self._c_pages_healed = self.metrics.counter(
            "pc_repl_pages_healed_total",
            help="Corrupt copies overwritten from a healthy replica",
            trace="repl.pages_healed",
        )

    @property
    def replica_writes(self):
        return self._c_replica_writes.value

    @property
    def failover_reads(self):
        return self._c_failover_reads.value

    @property
    def checksum_failures(self):
        return self._c_checksum_failures.value

    @property
    def re_replications(self):
        return self._c_re_replications.value

    @property
    def pages_healed(self):
        return self._c_pages_healed.value

    # -- placement (writes) ----------------------------------------------------

    def store_page(self, database, name, data, count, source="client"):
        """Place one loaded page on its primary plus ring replicas.

        Used by the bulk loader: the page's bytes are shipped verbatim to
        ``replication`` workers chosen by the placement ring, adopted into
        each worker's partition, and recorded in the catalog's replica map
        (checksummed, journaled).  Returns the :class:`PageRecord`.
        """
        meta = self.catalog.set_metadata(database, name)
        checksum = page_checksum(data)
        primary = self.storage_manager.next_target(database, name)
        ring = PlacementRing(self.storage_manager.worker_ids)
        targets = ring.replicas_for(primary, meta.replication)
        replicas = []
        for index, worker_id in enumerate(targets):
            delivered = self.network.ship_page(
                source, worker_id, data, checksum=checksum
            )
            server = self.storage_manager.server(worker_id)
            page_id = server.get_set(database, name).adopt_page_bytes(
                delivered, count_objects=(index == 0)
            )
            replicas.append([worker_id, page_id])
            if index > 0:
                self._c_replica_writes.inc()
        return self.catalog.record_page(
            database, name, replicas, checksum, count, primary=primary
        )

    def register_local_pages(self, database, name, worker_id, page_ids):
        """Record (and replicate) pages a sink wrote in place on a worker.

        Materialization writes pages directly into the owning worker's
        partition; this stamps their checksums, records them in the
        replica map, and ships the extra copies the set's replication
        factor asks for — synchronously, before the stage is declared
        complete.
        """
        meta = self.catalog.set_metadata(database, name)
        server = self.storage_manager.server(worker_id)
        page_set = server.get_set(database, name)
        ring = PlacementRing(self.storage_manager.worker_ids)
        targets = ring.replicas_for(worker_id, meta.replication)
        records = []
        for page_id in page_ids:
            page = server.pool.pin(page_id)
            try:
                data = page.to_bytes()
            finally:
                server.pool.unpin(page_id)
            checksum = page_checksum(data)
            page.checksum = checksum
            count = page_set.page_object_count(page_id)
            replicas = [[worker_id, page_id]]
            for peer_id in targets[1:]:
                delivered = self.network.ship_page(
                    worker_id, peer_id, data, checksum=checksum
                )
                peer = self.storage_manager.server(peer_id)
                peer_pid = peer.get_set(database, name).adopt_page_bytes(
                    delivered, count_objects=False
                )
                replicas.append([peer_id, peer_pid])
                self._c_replica_writes.inc()
            records.append(self.catalog.record_page(
                database, name, replicas, checksum, count, primary=worker_id
            ))
        return records

    # -- reads (failover + healing) --------------------------------------------

    def has_page_map(self, database, name):
        """Whether a set is governed by the catalog replica map."""
        try:
            meta = self.catalog.set_metadata(database, name)
        except CatalogError:
            return False
        return bool(meta.pages)

    def _live_replicas(self, record):
        return [
            (worker_id, page_id)
            for worker_id, page_id in record.replicas
            if self.storage_manager.has_server(worker_id)
        ]

    def scan_assignments(self, database, name):
        """``uid -> worker_id`` reading each page (its first live replica)."""
        meta = self.catalog.set_metadata(database, name)
        assignments = {}
        for uid, record in meta.pages.items():
            live = self._live_replicas(record)
            if not live:
                raise ReplicationError(
                    "page %s of %s.%s has no surviving replica"
                    % (uid, database, name)
                )
            assignments[uid] = live[0][0]
        return assignments

    def scan_page_copies(self, database, name, worker_id=None,
                         only_uids=None):
        """Yield ``(page_set, page_id)`` of every page copy a scan reads.

        The page-granular face of :meth:`scan_objects`: identical page
        selection and ordering (catalog uid order), identical failover
        accounting, identical corruption healing.  Used by transports
        that hand whole pages to a back-end process instead of iterating
        objects in the front-end.
        """
        meta = self.catalog.set_metadata(database, name)
        for uid in list(meta.pages):
            record = meta.pages.get(uid)
            if record is None or (only_uids is not None
                                  and uid not in only_uids):
                continue
            live = self._live_replicas(record)
            if not live:
                raise ReplicationError(
                    "page %s of %s.%s has no surviving replica"
                    % (uid, database, name)
                )
            reader = live[0][0]
            if worker_id is not None and reader != worker_id:
                continue
            if reader != record.primary:
                self._c_failover_reads.inc()
            yield self._healthy_copy(database, name, record, reader)

    def scan_objects(self, database, name, worker_id=None, only_uids=None,
                     columnar_pages=False):
        """Yield every object of a set, page by page, via live replicas.

        ``worker_id`` restricts the scan to the pages *assigned* to that
        worker (each page is read exactly once cluster-wide by the worker
        holding its first live replica); ``only_uids`` restricts it to a
        subset of pages (the orphan re-run path).  Corrupted copies are
        quarantined and transparently healed from a healthy replica —
        corrupted bytes are never yielded.  Columnar pages yield per-row
        views by default; with ``columnar_pages`` set, each yields one
        whole :class:`~repro.memory.columnar.ColumnarRows` batch instead.
        """
        for page_set, page_id in self.scan_page_copies(
            database, name, worker_id=worker_id, only_uids=only_uids
        ):
            with page_set.pinned_page(page_id) as page:
                colpage = ColumnarPage.attach(page.block)
                if colpage is not None:
                    if columnar_pages:
                        yield colpage.rows()
                    else:
                        yield from colpage.rows()
                    continue
                root_offset, _code = page.block.root()
                if root_offset is None:
                    continue
                root = _ROOT_VECTOR.facade(page.block, root_offset)
                for handle in root:
                    yield handle

    def _verified_bytes(self, database, name, record, worker_id, page_id):
        """A replica's bytes iff they pass the CRC check, else None."""
        server = self.storage_manager.server(worker_id)
        try:
            page = server.pool.pin(page_id)
        except PageCorruptionError:
            self._note_checksum_failure(record, worker_id)
            return None
        try:
            data = page.to_bytes()
        finally:
            server.pool.unpin(page_id)
        if record.checksum is not None and \
                page_checksum(data) != record.checksum:
            self._note_checksum_failure(record, worker_id)
            return None
        return data

    def _note_checksum_failure(self, record, worker_id):
        self._c_checksum_failures.inc()
        self.tracer.event(
            "quarantine", kind="fault",
            detail="page %s copy on %s failed its CRC32 check"
            % (record.uid, worker_id),
        )

    def _healthy_copy(self, database, name, record, reader):
        """(page_set, local page id) of a verified copy on ``reader``.

        The reader's local copy is verified first; on corruption, a
        healthy replica is fetched over the network, the local copy is
        replaced in place (same scan slot, object counts untouched), and
        the catalog replica map updated.  Only when *every* replica is
        corrupt does the read fail.
        """
        server = self.storage_manager.server(reader)
        page_set = server.get_set(database, name)
        local = dict((w, p) for w, p in record.replicas)[reader]
        data = self._verified_bytes(database, name, record, reader, local)
        if data is not None:
            return page_set, local
        for peer_id, peer_pid in self._live_replicas(record):
            if peer_id == reader:
                continue
            data = self._verified_bytes(
                database, name, record, peer_id, peer_pid
            )
            if data is None:
                continue
            delivered = self.network.ship_page(
                peer_id, reader, data, checksum=record.checksum
            )
            healed_pid = page_set.replace_page_bytes(local, delivered)
            replicas = [
                [w, healed_pid if w == reader else p]
                for w, p in record.replicas
            ]
            self.catalog.update_page_replicas(
                database, name, record.uid, replicas
            )
            self._c_pages_healed.inc()
            return page_set, healed_pid
        raise ReplicationError(
            "page %s of %s.%s is corrupt on every replica"
            % (record.uid, database, name)
        )

    def estimated_bytes(self, database, name):
        """Replica-aware source-size estimate (each page counted once)."""
        meta = self.catalog.set_metadata(database, name)
        total = 0
        for record in meta.pages.values():
            for worker_id, page_id in self._live_replicas(record):
                server = self.storage_manager.server(worker_id)
                try:
                    page = server.pool.pin(page_id)
                except Exception:
                    continue
                total += page.block.used if page.block else 0
                server.pool.unpin(page_id)
                break
        return total

    # -- membership changes ------------------------------------------------------

    def forget_worker(self, database, name, worker_id, evacuate_from=None):
        """Drop ``worker_id`` from a set's replica map and partition list.

        With ``evacuate_from`` (the departing worker's still-readable
        storage server — a decommission, not a crash), pages whose *only*
        copy lived there are shipped to a survivor first.  Without it (a
        node kill), a page with no other live replica is data loss and
        raises :class:`ReplicationError`.  Returns pages evacuated.
        """
        meta = self.catalog.set_metadata(database, name)
        ring = PlacementRing(self.storage_manager.worker_ids)
        moved = 0
        for uid, record in list(meta.pages.items()):
            if worker_id not in record.workers():
                continue
            survivors = [
                [w, p] for w, p in record.replicas
                if w != worker_id and self.storage_manager.has_server(w)
            ]
            if not survivors:
                if evacuate_from is None:
                    raise ReplicationError(
                        "page %s of %s.%s lost its last replica with "
                        "worker %r" % (uid, database, name, worker_id)
                    )
                local = dict(
                    (w, p) for w, p in record.replicas
                )[worker_id]
                page = evacuate_from.pool.pin(local)
                try:
                    data = page.to_bytes()
                finally:
                    evacuate_from.pool.unpin(local)
                target = ring.rereplication_target(uid, {worker_id})
                if target is None:
                    raise ReplicationError(
                        "no surviving worker can take page %s of %s.%s"
                        % (uid, database, name)
                    )
                delivered = self.network.ship_page(
                    worker_id, target, data, checksum=record.checksum
                )
                peer = self.storage_manager.server(target)
                peer_pid = peer.get_set(database, name).adopt_page_bytes(
                    delivered, count_objects=False
                )
                survivors = [[target, peer_pid]]
                moved += 1
            self.catalog.update_page_replicas(database, name, uid, survivors)
        if worker_id in meta.partitions:
            self.catalog.set_partitions(
                database, name,
                [w for w in meta.partitions if w != worker_id],
            )
        return moved

    def restore_replication(self, database=None):
        """Bring every page back to its set's replication factor.

        Pages short of ``replication`` live copies (after a kill or
        decommission) get fresh copies on ring-chosen survivors, sourced
        from a verified healthy replica.  Returns copies created.
        """
        created = 0
        ring = PlacementRing(self.storage_manager.worker_ids)
        for meta in self.catalog.list_sets(database):
            if not meta.pages:
                continue
            want = min(meta.replication, len(ring.worker_ids))
            for uid, record in list(meta.pages.items()):
                live = self._live_replicas(record)
                if not live:
                    raise ReplicationError(
                        "page %s of %s has no surviving replica"
                        % (uid, meta.qualified_name)
                    )
                if len(live) != len(record.replicas):
                    record = self.catalog.update_page_replicas(
                        meta.database, meta.name, uid,
                        [list(r) for r in live],
                    )
                holders = set(record.workers())
                while len(record.replicas) < want:
                    target = ring.rereplication_target(uid, holders)
                    if target is None:
                        break
                    src_id, src_pid = record.replicas[0]
                    data = self._verified_bytes(
                        meta.database, meta.name, record, src_id, src_pid
                    )
                    if data is None:
                        # Source copy is corrupt: heal through the read
                        # path first, then copy from the healed bytes.
                        _page_set, healed = self._healthy_copy(
                            meta.database, meta.name, record, src_id
                        )
                        record = meta.pages[uid]
                        data = self._verified_bytes(
                            meta.database, meta.name, record, src_id, healed
                        )
                    delivered = self.network.ship_page(
                        src_id, target, data, checksum=record.checksum
                    )
                    peer = self.storage_manager.server(target)
                    peer_pid = peer.get_set(
                        meta.database, meta.name
                    ).adopt_page_bytes(delivered, count_objects=False)
                    record = self.catalog.update_page_replicas(
                        meta.database, meta.name, uid,
                        record.replicas + [[target, peer_pid]],
                    )
                    holders.add(target)
                    created += 1
                    self._c_re_replications.inc()
        return created

    def replication_factors(self, database, name):
        """``uid -> live copy count`` (tests assert full factor restored)."""
        meta = self.catalog.set_metadata(database, name)
        return {
            uid: len(self._live_replicas(record))
            for uid, record in meta.pages.items()
        }

    def stats(self):
        return {
            "replica_writes": self.replica_writes,
            "failover_reads": self.failover_reads,
            "checksum_failures": self.checksum_failures,
            "re_replications": self.re_replications,
            "pages_healed": self.pages_healed,
        }
