"""Page sets: named collections of pages holding PC objects.

A stored set in PC is a bag of pages, each carrying a root
``Vector<Handle<Object>>`` of the objects on that page.  Writers allocate
objects in place on the current page and retire it when an allocation no
longer fits (the out-of-memory fault of Section 6.1); readers pin pages
one at a time and iterate the root vector.
"""

from __future__ import annotations

import contextlib

from repro.errors import BlockFullError, StorageError
from repro.memory.builtins import AnyObject, VectorType
from repro.memory.columnar import ColumnarPage, ColumnarRows
from repro.memory.objects import make_object_on, use_allocation_block

_ROOT_VECTOR = VectorType(AnyObject)


def _block_object_count(block):
    """Logical object (row) count of a sealed page block."""
    colpage = ColumnarPage.attach(block)
    if colpage is not None:
        return len(colpage)
    root_offset, _code = block.root()
    if root_offset is None:
        return 0
    return len(_ROOT_VECTOR.facade(block, root_offset))


class PageSet:
    """One partition of a stored set, local to a worker."""

    def __init__(self, database, name, pool, type_name=None, page_size=None,
                 layout="row", schema=None):
        self.database = database
        self.name = name
        self.pool = pool
        self.type_name = type_name
        self.page_size = page_size or pool.page_size
        #: "row" or "columnar"; individual pages self-describe (their root
        #: type code), so a columnar set can still adopt row pages (e.g.
        #: aggregation outputs written into it).
        self.layout = layout
        self.schema = schema
        self.page_ids = []
        self.object_count = 0

    @property
    def key(self):
        return (self.database, self.name)

    @property
    def qualified_name(self):
        return "%s.%s" % (self.database, self.name)

    # -- writing -------------------------------------------------------------------

    def writer(self):
        """Context manager yielding a :class:`SetWriter`."""
        return SetWriter(self)

    def adopt_page_bytes(self, data, count_objects=True):
        """Install a page that arrived over the (simulated) network.

        The arriving bytes are used verbatim — zero-cost data movement.
        ``count_objects=False`` adopts the page without adding its objects
        to the partition's logical count; the replication layer uses it
        for redundant copies, which must not inflate set cardinality.
        """
        page = self.pool.adopt_page(data, set_key=self.key)
        if count_objects:
            self.object_count += _block_object_count(page.block)
        self.page_ids.append(page.page_id)
        self.pool.unpin(page.page_id, dirty=True)
        return page.page_id

    def replace_page_bytes(self, old_page_id, data):
        """Swap a page's bytes for a healthy copy fetched from a replica.

        The old (quarantined) page is freed and the replacement adopted in
        its slot, keeping scan order and the logical object count intact.
        """
        index = self.page_ids.index(old_page_id)
        self.pool.free_page(old_page_id)
        page = self.pool.adopt_page(data, set_key=self.key)
        self.page_ids[index] = page.page_id
        self.pool.unpin(page.page_id, dirty=True)
        return page.page_id

    def page_object_count(self, page_id):
        """Number of objects (rows, for columnar pages) on one page."""
        with self.pinned_page(page_id) as page:
            return _block_object_count(page.block)

    # -- reading --------------------------------------------------------------------

    @contextlib.contextmanager
    def pinned_page(self, page_id):
        """Pin ``page_id`` for the duration of the with-block."""
        page = self.pool.pin(page_id)
        try:
            yield page
        finally:
            self.pool.unpin(page_id)

    def scan_pages(self):
        """Yield ``(page, items)`` for each page, pinning in turn.

        ``items`` is the root vector of handles for a row page, or the
        page's :class:`~repro.memory.columnar.ColumnarRows` for a
        columnar one — both iterate one element per stored object.
        """
        for page_id in self.page_ids:
            with self.pinned_page(page_id) as page:
                colpage = ColumnarPage.attach(page.block)
                if colpage is not None:
                    yield page, colpage.rows()
                    continue
                root_offset, _code = page.block.root()
                if root_offset is None:
                    continue
                yield page, _ROOT_VECTOR.facade(page.block, root_offset)

    def scan_objects(self, columnar_pages=False):
        """Yield a handle for every object in the set, page by page.

        Columnar pages yield per-row views by default; with
        ``columnar_pages`` set, each columnar page instead yields one
        whole :class:`~repro.memory.columnar.ColumnarRows` batch (the
        engine's vectorized scan source).
        """
        for _page, items in self.scan_pages():
            if columnar_pages and isinstance(items, ColumnarRows):
                yield items
                continue
            for handle in items:
                yield handle

    def clear(self):
        """Drop all pages of this partition."""
        for page_id in self.page_ids:
            self.pool.free_page(page_id)
        self.page_ids = []
        self.object_count = 0

    def __len__(self):
        return self.object_count

    def __repr__(self):
        return "<PageSet %s: %d objects on %d pages>" % (
            self.qualified_name, self.object_count, len(self.page_ids),
        )


class SetWriter:
    """Appends objects to a page set, rolling pages as they fill."""

    def __init__(self, page_set):
        self.page_set = page_set
        self._page = None
        self._root = None

    def __enter__(self):
        self._open_page()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._seal_page()
        return False

    def _open_page(self):
        pool = self.page_set.pool
        self._page = pool.new_page(
            size=self.page_set.page_size, set_key=self.page_set.key
        )
        block = self._page.block
        root_handle = make_object_on(block, _ROOT_VECTOR, [])
        block.set_root(root_handle.offset, root_handle.type_code)
        self._root = _ROOT_VECTOR.facade(block, root_handle.offset)

    def _seal_page(self):
        if self._page is None:
            return
        self.page_set.page_ids.append(self._page.page_id)
        self.page_set.pool.unpin(self._page.page_id, dirty=True)
        self._page = None
        self._root = None

    def append(self, type_or_class, init=None, **fields):
        """Allocate one object in place on the current page and record it.

        On a full page, the page is sealed and the allocation retried on a
        fresh one (the engine's reaction to the out-of-memory fault).
        """
        for attempt in (0, 1):
            block = self._page.block
            try:
                self._root.reserve(len(self._root) + 1)
                handle = make_object_on(block, type_or_class, init, **fields)
                self._root.append(handle)
                handle.release()
                self.page_set.object_count += 1
                return
            except BlockFullError as full:
                if attempt:
                    raise StorageError(
                        "a single object does not fit on an empty %d-byte page"
                        % self.page_set.page_size
                    ) from full
                self._seal_page()
                self._open_page()

    def append_built(self, build):
        """Run ``build(block)`` on the current page; it returns a handle.

        For objects too intricate for keyword construction: ``build`` is
        called with the page's block as the active allocation block and
        must return the handle of the single object to record.
        """
        for attempt in (0, 1):
            block = self._page.block
            try:
                self._root.reserve(len(self._root) + 1)
                with use_allocation_block(block):
                    handle = build(block)
                self._root.append(handle)
                handle.release()
                self.page_set.object_count += 1
                return
            except BlockFullError as full:
                if attempt:
                    raise StorageError(
                        "a single object does not fit on an empty %d-byte page"
                        % self.page_set.page_size
                    ) from full
                self._seal_page()
                self._open_page()
