"""The buffer pool: pinned in-memory pages with LRU spill.

Each worker's local storage server manages a buffer pool (Appendix D.1)
used for buffering and caching datasets.  Pages are pinned while a
computation reads or writes them; unpinned pages are eligible for LRU
eviction.  Evicted dirty pages are written to the *user-level file system*
(a spill directory), evicted clean pages are simply dropped and re-read
on demand.  Because a page's bytes are its authoritative representation,
spilling and re-loading is a straight byte copy either way — the storage
half of the paper's zero-cost data movement.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import weakref
from collections import OrderedDict

from repro.errors import (
    BufferPoolExhaustedError,
    PageCorruptionError,
    PageReloadError,
    StorageError,
)
from repro.memory.block import AllocationBlock
from repro.obs import MetricsRegistry, Tracer
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.replication import corrupt_bytes, page_checksum


def _release_segments(pages, segments, graveyard, shm_registry=None):
    """Close and unlink every shared-memory segment a pool left behind.

    Module-level so ``weakref.finalize`` can run it after the pool itself
    is gone.  Blocks are detached first so their memoryviews over the
    mappings die and the segments can actually unmap; a segment whose
    buffer is still exported (a facade somewhere keeps a view alive) is
    unlinked anyway so the kernel reclaims it once the last mapping drops.
    """
    for page in pages.values():
        if page.shm is not None:
            page.block = None
            page.shm = None
    for shm in list(segments.values()) + list(graveyard):
        try:
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        if shm_registry is not None:
            shm_registry.note_unlink(shm.name)
    segments.clear()
    del graveyard[:]


#: Pools with shared-memory residency still open in this process; the
#: interpreter-exit hook drops their segments so a *clean* exit (including
#: an uncaught exception unwinding the stack) never strands /dev/shm
#: entries.  Hard kills are covered by the ShmRegistry startup sweep.
_LIVE_SHM_POOLS = weakref.WeakSet()


@atexit.register
def _atexit_release_pools():
    for pool in list(_LIVE_SHM_POOLS):
        try:
            pool.close()
        except Exception:  # noqa: BLE001 - interpreter is going down
            pass


class BufferPool:
    """Fixed-budget page cache with pinning and LRU spill."""

    def __init__(self, capacity_bytes, page_size=DEFAULT_PAGE_SIZE,
                 registry=None, spill_dir=None, tracer=None,
                 fault_injector=None, metrics=None, residency="mem",
                 shm_registry=None):
        if capacity_bytes < page_size:
            raise StorageError("buffer pool smaller than one page")
        if residency not in ("mem", "shm"):
            raise StorageError("unknown page residency %r" % (residency,))
        self.capacity_bytes = capacity_bytes
        self.page_size = page_size
        self.registry = registry
        self.tracer = tracer or Tracer()
        self.fault_injector = fault_injector
        #: "mem" backs pages with private bytearrays; "shm" backs them
        #: with named POSIX shared-memory segments so a back-end *process*
        #: can attach to a sealed page by name (zero-copy hand-off).
        self.residency = residency
        #: crash-safety journal (repro.storage.shm_registry.ShmRegistry):
        #: every named segment's create/unlink is recorded so a later run
        #: can reap what a hard-killed process stranded.
        self.shm_registry = shm_registry
        self._shm_segments = {}  # page_id -> SharedMemory
        self._shm_graveyard = []  # segments kept alive by exported views
        self._shm_prefix = "pc%d-%s" % (os.getpid(), os.urandom(3).hex())
        self._pages = {}  # page_id -> Page
        self._finalizer = weakref.finalize(
            self, _release_segments,
            self._pages, self._shm_segments, self._shm_graveyard,
            shm_registry,
        )
        if residency == "shm":
            _LIVE_SHM_POOLS.add(self)
        self._lru = OrderedDict()  # page_id -> None, oldest first
        self._next_page_id = 1
        self._in_memory_bytes = 0
        #: high-water mark of in-memory bytes; the profiler resets and
        #: reads it per stage/operator scope (plain attribute by design).
        self.peak_in_memory_bytes = 0
        if spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="pc-spill-")
        else:
            os.makedirs(spill_dir, exist_ok=True)
            self._spill_dir = spill_dir
        self._spilled = {}  # page_id -> file path
        self._spill_checksums = {}  # page_id -> CRC32 of the spill file
        # Statistics live in the metrics registry; the metric name, the
        # trace-counter mirror, and the stats() key each derive from one
        # declaration here (drift-proof by construction).
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry(tracer=self.tracer)
        self._c_pages_created = self.metrics.counter(
            "pc_pool_pages_created_total",
            help="Pages allocated or adopted into the buffer pool",
            trace="pool.pages_created",
        )
        self._c_pins = self.metrics.counter(
            "pc_pool_pages_pinned_total",
            help="Pin operations (page touches)",
            trace="pool.pages_pinned",
        )
        self._c_evictions = self.metrics.counter(
            "pc_pool_evictions_total",
            help="LRU evictions under memory pressure",
            trace="pool.evictions",
        )
        self._c_spills = self.metrics.counter(
            "pc_pool_spills_total",
            help="Dirty/unspilled pages written to the spill directory",
            trace="pool.spills",
        )
        self._c_reloads = self.metrics.counter(
            "pc_pool_reloads_total",
            help="Spilled pages read back on demand",
            trace="pool.reloads",
        )
        self._c_reload_failures = self.metrics.counter(
            "pc_pool_reload_failures_total",
            help="Injected/real I/O faults reloading spilled pages",
            trace="pool.reload_failures",
        )
        self._c_checksum_failures = self.metrics.counter(
            "pc_pool_checksum_failures_total",
            help="Spilled pages failing their CRC32 on reload",
            trace="pool.checksum_failures",
        )
        self._g_in_memory = self.metrics.gauge(
            "pc_pool_in_memory_bytes",
            help="Bytes currently resident in the pool",
        )
        self._g_capacity = self.metrics.gauge(
            "pc_pool_capacity_bytes", help="Pool byte budget",
        )
        self._g_pages = self.metrics.gauge(
            "pc_pool_pages", help="Pages known to the pool (any state)",
        )
        self._g_peak = self.metrics.gauge(
            "pc_pool_peak_bytes",
            help="High-water mark of resident bytes since last profiler "
                 "scope reset",
        )
        self._g_shm = self.metrics.gauge(
            "pc_pool_shm_segments",
            help="Shared-memory segments currently backing resident pages",
        )
        self.metrics.on_collect(self._collect_gauges)

    def _collect_gauges(self):
        self._g_in_memory.set(self._in_memory_bytes)
        self._g_capacity.set(self.capacity_bytes)
        self._g_pages.set(len(self._pages))
        self._g_peak.set(self.peak_in_memory_bytes)
        self._g_shm.set(len(self._shm_segments))

    def _grow_resident(self, nbytes):
        self._in_memory_bytes += nbytes
        if self._in_memory_bytes > self.peak_in_memory_bytes:
            self.peak_in_memory_bytes = self._in_memory_bytes

    # Legacy counter attributes: thin read-only views over the registry,
    # so `pool.spills` and `pool.stats()["spills"]` cannot disagree.

    @property
    def pages_created(self):
        return self._c_pages_created.value

    @property
    def pins(self):
        return self._c_pins.value

    @property
    def evictions(self):
        return self._c_evictions.value

    @property
    def spills(self):
        return self._c_spills.value

    @property
    def reloads(self):
        return self._c_reloads.value

    @property
    def reload_failures(self):
        return self._c_reload_failures.value

    @property
    def checksum_failures(self):
        return self._c_checksum_failures.value

    # -- shared-memory backing ----------------------------------------------------

    def _shm_create(self, page_id, block_size):
        """A named shared-memory segment sized for one block.

        The kernel may round the mapping up to a whole number of VM pages;
        the returned memoryview is sliced back to exactly ``block_size`` so
        block-header bookkeeping never sees the slack.
        """
        from multiprocessing import shared_memory

        name = "%s-%d" % (self._shm_prefix, page_id)
        if self.shm_registry is not None:
            # Journaled *before* the segment exists (WAL discipline): the
            # registry must always be a superset of what is in /dev/shm,
            # so a kill between the two lines over-reports, never leaks.
            self.shm_registry.note_create(name)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=block_size,
        )
        self._shm_segments[page_id] = shm
        # shm.buf is the raw mapping the AllocationBlock is built over,
        # not an existing block's backing store.
        return shm, memoryview(shm.buf)[:block_size]  # pcsan: disable=PC002

    def _fresh_page(self, page_id, size, set_key, policy):
        kwargs = {"registry": self.registry, "metrics": self.metrics}
        if policy is not None:
            kwargs["policy"] = policy
        if self.residency != "shm":
            return Page.fresh(page_id, size, set_key=set_key, **kwargs)
        shm, buf = self._shm_create(page_id, size)
        block = AllocationBlock(size, buf=buf, init_header=True, **kwargs)
        page = Page(page_id, block, set_key=set_key)
        page.shm = shm
        return page

    def _reconstitute_page(self, page_id, data, set_key):
        """Page from shipped/spilled bytes, honoring the residency mode."""
        if self.residency != "shm":
            return Page.from_bytes(
                page_id, data, registry=self.registry, set_key=set_key,
                metrics=self.metrics,
            )
        from repro.memory import layout

        block_size = layout.unpack_block_header(data)[0]
        shm, buf = self._shm_create(page_id, block_size)
        try:
            buf[: len(data)] = data
            block = AllocationBlock.from_buffer(
                buf, registry=self.registry, metrics=self.metrics,
            )
        except BaseException:
            # Don't leak the named segment: the next reload of this page
            # would collide on the name with FileExistsError.
            self._shm_segments.pop(page_id, None)
            del buf
            try:
                shm.unlink()
            except FileNotFoundError:  # pcsan: disable=PC005
                pass  # never materialised
            if self.shm_registry is not None:
                self.shm_registry.note_unlink(shm.name)
            shm.close()
            raise
        page = Page(page_id, block, set_key=set_key)
        page.shm = shm
        return page

    def _discard_fresh(self, page):
        """Undo a just-reconstituted page whose install step failed.

        Without this, a ``_make_room`` raise between segment creation
        and installation would leak the named segment — and the *next*
        reload of the same page would die on FileExistsError.
        """
        if page is not None and page.shm is not None:
            self._drop_block(page)

    def _sweep_graveyard(self):
        """Retire graveyard segments whose exported views have died.

        Each unclosed segment holds an open file descriptor and a
        mapping; under eviction churn the graveyard would otherwise
        grow by hundreds of handles per scan and exhaust the fd limit.
        """
        for shm in self._shm_graveyard[:]:
            try:
                shm.close()
            except BufferError:  # pcsan: disable=PC005
                continue  # still exported somewhere
            self._shm_graveyard.remove(shm)

    def _drop_block(self, page):
        """Detach a page's block, releasing its shared-memory segment."""
        page.block = None
        shm = page.shm
        if shm is None:
            return
        page.shm = None
        self._shm_segments.pop(page.page_id, None)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        if self.shm_registry is not None:
            self.shm_registry.note_unlink(shm.name)
        try:
            shm.close()
        except BufferError:
            # A facade somewhere still exports a view over the mapping;
            # keep the handle and retire it once the view dies.
            self._shm_graveyard.append(shm)
        self._sweep_graveyard()

    def shm_export(self, page_id):
        """``(segment_name, block_size)`` of a shared-memory-resident page.

        Reloads the page first if it was spilled.  Returns None when the
        pool runs bytearray residency — callers fall back to shipping the
        page's bytes.  The name stays valid until the page is evicted or
        freed; sealed pages are never mutated, and POSIX keeps an attached
        segment's memory alive for readers even across an unlink.
        """
        page = self.pin(page_id)
        try:
            if page.shm is None:
                return None
            return (page.shm.name, page.block.size)
        finally:
            self.unpin(page_id)

    def close(self):
        """Release every shared-memory segment this pool still owns."""
        for page in self._pages.values():
            if page.shm is not None:
                size = page.size
                self._drop_block(page)
                self._in_memory_bytes -= size
        self._sweep_graveyard()

    # -- page lifecycle -----------------------------------------------------------

    def new_page(self, size=None, set_key=None, policy=None):
        """Allocate a fresh pinned page."""
        size = size or self.page_size
        self._make_room(size)
        page_id = self._next_page_id
        self._next_page_id += 1
        page = self._fresh_page(page_id, size, set_key, policy)
        page.pin_count = 1
        self._pages[page_id] = page
        self._grow_resident(size)
        self._c_pages_created.inc()
        return page

    def adopt_page(self, data, set_key=None):
        """Install bytes that arrived from the network as a pinned page."""
        page_id = self._next_page_id
        self._next_page_id += 1
        # The shipped bytes are a used-prefix; the reconstituted block
        # occupies its full declared size, so budget for that, not for
        # len(data).
        page = self._reconstitute_page(page_id, data, set_key)
        try:
            self._make_room(page.size)
        except BaseException:
            self._discard_fresh(page)
            raise
        page.pin_count = 1
        self._pages[page_id] = page
        self._grow_resident(page.size)
        self._c_pages_created.inc()
        return page

    def pin(self, page_id):
        """Pin a page, reloading it from spill if necessary."""
        page = self._pages.get(page_id)
        if page is None:
            raise StorageError("unknown page id %d" % page_id)
        if not page.in_memory:
            self._reload(page)
        page.pin_count += 1
        self._lru.pop(page_id, None)
        self._c_pins.inc()
        return page

    def unpin(self, page_id, dirty=False):
        """Release one pin; the page becomes evictable at zero pins."""
        page = self._pages.get(page_id)
        if page is None:
            raise StorageError("unknown page id %d" % page_id)
        if page.pin_count <= 0:
            raise StorageError("unpin of unpinned page %d" % page_id)
        if dirty:
            page.dirty = True
        page.pin_count -= 1
        if page.pin_count == 0:
            self._lru[page_id] = None

    def pinned_pages(self):
        """``{page_id: pin_count}`` for every currently pinned page.

        PCSan snapshots this before a job and diffs it afterwards to
        detect pin leaks (pages pinned during the job and never unpinned).
        """
        return {
            page_id: page.pin_count
            for page_id, page in self._pages.items()
            if page.pin_count > 0
        }

    def free_page(self, page_id):
        """Drop a page entirely (its set was cleared or it was temporary)."""
        page = self._pages.pop(page_id, None)
        if page is None:
            return
        block = getattr(page, "block", None)
        shadow = getattr(block, "_san", None) if block is not None else None
        if shadow is not None:
            shadow.retire("page %d freed" % page_id)
        self._lru.pop(page_id, None)
        if page.in_memory:
            self._in_memory_bytes -= page.size
            self._drop_block(page)
        self._spill_checksums.pop(page_id, None)
        path = self._spilled.pop(page_id, None)
        if path is not None and os.path.exists(path):
            os.unlink(path)

    # -- eviction / spill ------------------------------------------------------------

    def _make_room(self, needed):
        while self._in_memory_bytes + needed > self.capacity_bytes:
            if not self._lru:
                raise BufferPoolExhaustedError(
                    "need %d bytes but all %d bytes are pinned"
                    % (needed, self._in_memory_bytes)
                )
            victim_id, _none = self._lru.popitem(last=False)
            self._evict(self._pages[victim_id])

    def _evict(self, page):
        self._c_evictions.inc()
        if page.dirty or page.page_id not in self._spilled:
            path = os.path.join(self._spill_dir, "page-%d" % page.page_id)
            data = page.to_bytes()
            with open(path, "wb") as f:
                f.write(data)
            self._spilled[page.page_id] = path
            self._spill_checksums[page.page_id] = page_checksum(data)
            self._c_spills.inc()
            page.dirty = False
        self._in_memory_bytes -= page.size
        self._drop_block(page)

    def _reload(self, page):
        path = self._spilled.get(page.page_id)
        if path is None:
            raise StorageError(
                "page %d is neither in memory nor spilled" % page.page_id
            )
        if (
            self.fault_injector is not None
            and self.fault_injector.should_fail_reload(page.page_id)
        ):
            # The spill file is untouched, so a later pin can retry the
            # reload — inside a job the scheduler's stage retry does.
            self._c_reload_failures.inc()
            raise PageReloadError(
                "injected I/O fault reloading spilled page %d" % page.page_id
            )
        # Guard against re-entrancy: if the page still sits in the LRU
        # (pin_count 0, bytes dropped), _make_room below could pick it as
        # its own eviction victim — double-decrementing the budget and
        # crashing on to_bytes() of a block-less page.
        self._lru.pop(page.page_id, None)
        with open(path, "rb") as f:
            data = f.read()
        if (
            self.fault_injector is not None
            and self.fault_injector.should_corrupt_page(page.page_id)
        ):
            # A corrupted spill file is *sticky*: write the damage back so
            # a plain retry keeps failing until the replication layer
            # heals the copy from a healthy replica.
            data = corrupt_bytes(data)
            with open(path, "wb") as f:
                f.write(data)
        expected = self._spill_checksums.get(page.page_id)
        if expected is not None and page_checksum(data) != expected:
            self._c_checksum_failures.inc()
            raise PageCorruptionError(
                "spilled page %d failed its CRC32 check on reload"
                % page.page_id
            )
        # Spill files hold a block's used-prefix, which can be far
        # smaller than the block it reconstitutes into; budget the real
        # in-memory footprint, not the file size.
        reloaded = self._reconstitute_page(page.page_id, data, page.set_key)
        try:
            self._make_room(reloaded.size)
        except BaseException:
            self._discard_fresh(reloaded)
            raise
        page.block = reloaded.block
        page.shm = reloaded.shm
        self._grow_resident(reloaded.size)
        self._c_reloads.inc()

    # -- introspection ------------------------------------------------------------------

    @property
    def in_memory_bytes(self):
        return self._in_memory_bytes

    def stats(self):
        """Counters used by tests and the runtime benches."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "in_memory_bytes": self._in_memory_bytes,
            "pages": len(self._pages),
            "pages_created": self.pages_created,
            "evictions": self.evictions,
            "spills": self.spills,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "checksum_failures": self.checksum_failures,
            "pins": self.pins,
        }
