"""Storage subsystem: buffer pool, pages, page sets, storage managers."""

from repro.storage.buffer_pool import BufferPool
from repro.storage.dataset import PageSet, SetWriter
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.replication import (
    PlacementRing,
    ReplicationManager,
    corrupt_bytes,
    page_checksum,
)
from repro.storage.storage_manager import (
    DistributedStorageManager,
    LocalStorageServer,
)

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DistributedStorageManager",
    "LocalStorageServer",
    "Page",
    "PageSet",
    "PlacementRing",
    "ReplicationManager",
    "SetWriter",
    "corrupt_bytes",
    "page_checksum",
]
