"""The PC execution engine: physical planning and vectorized pipelines."""

from repro.engine.interpreter import LocalInterpreter
from repro.engine.local import run_local
from repro.engine.physical import PhysicalPlan, Pipeline, plan_pipelines
from repro.engine.pipeline import EngineMetrics, PipelineEngine
from repro.engine.vectors import DEFAULT_BATCH_SIZE, VectorList, batches_of

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "EngineMetrics",
    "LocalInterpreter",
    "PhysicalPlan",
    "Pipeline",
    "PipelineEngine",
    "VectorList",
    "batches_of",
    "plan_pipelines",
    "run_local",
]
