"""Physical planning: breaking a TCAP DAG into pipelines (Appendix C).

The single most important physical decision is how to cut the TCAP DAG
into *pipelines*: maximal chains of operations that push vector lists
through RAM without materializing.  A pipeline always ends in a *pipe
sink*; only a few operations require one:

* JOIN — the build side ends in a hash-table sink; the probe side runs
  *through* the join as an ordinary stage;
* AGGREGATE — the producing stage ends in an aggregation sink; consumers
  start a new pipeline over the aggregated result;
* OUTPUT — the terminal sink writing a stored set;
* any vector list with more than one consumer is materialized (the
  paper's rule for multi-consumer outputs).

Choosing which join input builds and which probes yields the alternative
pipelinings of Figure 3; :func:`plan_pipelines` accepts overrides so the
figure bench can enumerate them.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
)

#: Sink kinds.
SINK_OUTPUT = "output"
SINK_HASH_BUILD = "hash_build"
SINK_AGGREGATE = "aggregate"
SINK_MATERIALIZE = "materialize"

#: Source kinds.
SOURCE_SCAN = "scan"
SOURCE_VLIST = "vlist"


class Pipeline:
    """One executable pipeline: source -> stages -> sink."""

    def __init__(self, pipeline_id, source_kind, source, stages, sink_kind,
                 sink):
        self.pipeline_id = pipeline_id
        self.source_kind = source_kind
        self.source = source  # ScanStmt or vlist name
        self.stages = stages  # APPLY/FILTER/HASH/FLATTEN/JOIN(probe) stmts
        self.sink_kind = sink_kind
        self.sink = sink  # OutputStmt | JoinStmt | AggregateStmt | vlist name

    def depends_on(self):
        """Names of materialized vector lists / join builds required."""
        needs = []
        if self.source_kind == SOURCE_VLIST:
            needs.append(("vlist", self.source))
        for stage in self.stages:
            if isinstance(stage, JoinStmt):
                needs.append(("hash_table", stage.output))
        return needs

    def provides(self):
        """What this pipeline makes available once it has run."""
        if self.sink_kind == SINK_HASH_BUILD:
            return ("hash_table", self.sink.output)
        if self.sink_kind == SINK_AGGREGATE:
            return ("vlist", self.sink.output)
        if self.sink_kind == SINK_MATERIALIZE:
            return ("vlist", self.sink)
        return ("output", self.sink.set_name)

    def describe(self):
        """One-line description used by the Figure 3 bench."""
        if self.source_kind == SOURCE_SCAN:
            src = "scan %s.%s" % (self.source.database, self.source.set_name)
        else:
            src = "read %s" % self.source
        ops = []
        for stage in self.stages:
            if isinstance(stage, JoinStmt):
                ops.append("probe(%s)" % stage.output)
            else:
                ops.append(stage.op.lower())
        sink = {
            SINK_OUTPUT: lambda: "write %s.%s" % (self.sink.database,
                                                  self.sink.set_name),
            SINK_HASH_BUILD: lambda: "build(%s)" % self.sink.output,
            SINK_AGGREGATE: lambda: "aggregate(%s)" % self.sink.output,
            SINK_MATERIALIZE: lambda: "materialize(%s)" % self.sink,
        }[self.sink_kind]()
        return " -> ".join([src] + ops + [sink])

    def __repr__(self):
        return "<Pipeline %d: %s>" % (self.pipeline_id, self.describe())


class PhysicalPlan:
    """Ordered pipelines plus the join build-side decisions."""

    def __init__(self, pipelines, build_sides):
        self.pipelines = pipelines
        self.build_sides = build_sides  # JoinStmt.output -> "left"/"right"

    def __iter__(self):
        return iter(self.pipelines)

    def __len__(self):
        return len(self.pipelines)

    def describe(self):
        return "\n".join(p.describe() for p in self.pipelines)


def plan_pipelines(program, build_side_overrides=None):
    """Cut ``program`` into an ordered :class:`PhysicalPlan`."""
    overrides = dict(build_side_overrides or {})
    consumers = {}
    for statement in program.statements:
        for name in statement.input_names():
            consumers.setdefault(name, []).append(statement)

    build_sides = {}
    for statement in program.statements:
        if isinstance(statement, JoinStmt):
            build_sides[statement.output] = overrides.get(
                statement.output, "right"
            )

    # Vector lists that force a pipeline cut when *consumed*.
    materialized = set()
    for statement in program.statements:
        if isinstance(statement, OutputStmt):
            continue
        if isinstance(statement, AggregateStmt):
            materialized.add(statement.output)
        elif len(consumers.get(statement.output, [])) > 1:
            materialized.add(statement.output)

    pipelines = []
    counter = iter(range(1_000_000))

    def follow(source_kind, source, start_vlist, entry=None):
        """Extend a pipeline from ``start_vlist`` until a sink.

        ``entry`` forces the first consuming statement (used when a
        materialized vector list fans out to several consumers, each of
        which heads its own pipeline).
        """
        stages = []
        current = start_vlist
        while True:
            if entry is not None:
                statement, entry = entry, None
            else:
                consuming = consumers.get(current, [])
                if not consuming:
                    pipelines.append(Pipeline(
                        next(counter), source_kind, source, stages,
                        SINK_MATERIALIZE, current,
                    ))
                    return
                if current in materialized or len(consuming) > 1:
                    pipelines.append(Pipeline(
                        next(counter), source_kind, source, stages,
                        SINK_MATERIALIZE, current,
                    ))
                    return
                statement = consuming[0]
            if isinstance(statement, (ApplyStmt, FilterStmt, HashStmt,
                                      FlattenStmt)):
                stages.append(statement)
                current = statement.output
            elif isinstance(statement, JoinStmt):
                side = build_sides[statement.output]
                build_input = (
                    statement.left_input if side == "left"
                    else statement.right_input
                )
                if current == build_input:
                    pipelines.append(Pipeline(
                        next(counter), source_kind, source, stages,
                        SINK_HASH_BUILD, statement,
                    ))
                    return
                stages.append(statement)  # probe stage, pipeline continues
                current = statement.output
            elif isinstance(statement, AggregateStmt):
                pipelines.append(Pipeline(
                    next(counter), source_kind, source, stages,
                    SINK_AGGREGATE, statement,
                ))
                return
            elif isinstance(statement, OutputStmt):
                pipelines.append(Pipeline(
                    next(counter), source_kind, source, stages,
                    SINK_OUTPUT, statement,
                ))
                return
            else:
                raise PlanningError(
                    "cannot place statement %r" % type(statement).__name__
                )

    for statement in program.statements:
        if isinstance(statement, ScanStmt):
            follow(SOURCE_SCAN, statement, statement.output)
    for name in sorted(materialized):
        for consumer in consumers.get(name, []):
            follow(SOURCE_VLIST, name, name, entry=consumer)

    return PhysicalPlan(_topo_sort(pipelines), build_sides)


def _topo_sort(pipelines):
    """Order pipelines so every dependency runs before its consumer."""
    providers = {}
    for pipeline in pipelines:
        providers[pipeline.provides()] = pipeline
    ordered = []
    state = {}  # pipeline_id -> "visiting" | "done"

    def visit(pipeline):
        mark = state.get(pipeline.pipeline_id)
        if mark == "done":
            return
        if mark == "visiting":
            raise PlanningError("cyclic pipeline dependencies")
        state[pipeline.pipeline_id] = "visiting"
        for need in pipeline.depends_on():
            provider = providers.get(need)
            if provider is not None:
                visit(provider)
        state[pipeline.pipeline_id] = "done"
        ordered.append(pipeline)

    for pipeline in pipelines:
        visit(pipeline)
    return ordered
