"""Whole-batch numpy kernels for columnar-lowered TCAP stages.

When the optimizer marks a statement ``columnar`` (see
:mod:`repro.tcap.optimizer.columnar`), the pipeline engine routes it here
instead of the per-row implementations in
:mod:`repro.engine.pipeline`.  A kernel executes one stage over the whole
batch as a single array operation: attribute access becomes a zero-copy
column view, comparisons/arithmetic become ufunc calls, FILTER becomes a
boolean mask, and grouped sums become one ``bincount``.

Every kernel is *total over its guard, partial over its inputs*: it
returns ``None`` whenever the batch does not actually carry array-typed
columns (e.g. an orphan-page replay feeding per-row objects into a marked
stage), and the engine falls back to the object path for that stage.  The
:func:`reify` boundary converts array columns back into plain Python
values so fallback operators and sinks observe exactly what the object
path would have produced.

Accumulation order note: grouped float sums use sequential in-input-order
accumulation (``np.bincount`` / ``np.add.at``) per *batch*, then combine
batch subtotals.  Relative to the strictly row-at-a-time object path this
reassociates floating-point addition across batch boundaries; results are
identical whenever the addends are exactly representable (the parity
suite uses dyadic rationals for this reason).
"""

from __future__ import annotations

import numpy as np

from repro.engine.vectors import VectorList
from repro.memory.columnar import ColumnarRows

_COMPARISON_OPS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITHMETIC_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


def is_array_column(column):
    """True for column values the kernels can consume whole."""
    return isinstance(column, (np.ndarray, ColumnarRows))


def is_columnar_batch(batch):
    """True when any column of ``batch`` is array-typed."""
    return any(is_array_column(batch.column(name)) for name in batch.names())


def reify_column(column):
    """One column's object-path representation (plain Python values).

    Row batches detach: the produced rows keep their schema-named
    attribute surface but hold copied values, so they are free to
    outlive the page and to cross a process boundary.
    """
    if isinstance(column, np.ndarray):
        return column.tolist()
    if isinstance(column, ColumnarRows):
        return [row.detach() for row in column]
    return column


def reify(batch):
    """The batch with every array column lowered to plain Python values.

    ``ndarray.tolist`` yields Python scalars (not numpy scalars), so a
    reified batch is indistinguishable from one the object path built.
    """
    if not is_columnar_batch(batch):
        return batch
    return VectorList({
        name: reify_column(batch.column(name)) for name in batch.names()
    })


def _as_arrays(columns):
    """All columns as ndarrays, or None when any is not kernel-ready."""
    arrays = []
    for column in columns:
        if not isinstance(column, np.ndarray):
            return None
        arrays.append(column)
    return arrays


def apply_kernel(engine, stage, batch):
    """Run a columnar-marked APPLY as one array op; None means fall back."""
    info = stage.info
    kind = info.get("type")
    inputs = [batch.column(c) for c in stage.apply_columns]
    produced = None
    if kind == "attAccess":
        rows = inputs[0]
        if isinstance(rows, ColumnarRows):
            try:
                produced = rows.column(info["attName"])
            except KeyError:
                produced = None
    elif kind == "self":
        if inputs and is_array_column(inputs[0]):
            produced = inputs[0]
    elif kind == "constant":
        produced = np.full(len(batch), info["value"])
    elif kind in ("comparison", "equalityCheck", "arithmetic"):
        fn = _COMPARISON_OPS.get(info.get("op")) or _ARITHMETIC_OPS.get(
            info.get("op")
        )
        arrays = _as_arrays(inputs)
        if fn is not None and arrays is not None and len(arrays) == 2:
            produced = fn(arrays[0], arrays[1])
    elif kind == "bool_and":
        arrays = _as_arrays(inputs)
        if arrays is not None and len(arrays) == 2:
            produced = np.logical_and(arrays[0], arrays[1])
    elif kind == "bool_or":
        arrays = _as_arrays(inputs)
        if arrays is not None and len(arrays) == 2:
            produced = np.logical_or(arrays[0], arrays[1])
    elif kind == "bool_not":
        arrays = _as_arrays(inputs)
        if arrays is not None and len(arrays) == 1:
            produced = np.logical_not(arrays[0])
    elif kind == "nativeLambda":
        kernel = getattr(engine.program, "kernels", {}).get(
            (stage.computation, stage.stage)
        )
        if kernel is not None and all(is_array_column(c) for c in inputs):
            produced = kernel(*inputs)
            if not isinstance(produced, np.ndarray) or \
                    len(produced) != len(batch):
                produced = None
    if produced is None:
        return None
    out = batch.shallow_copy(stage.copy_columns)
    return out.with_column(stage.new_column, produced)


def filter_kernel(stage, batch):
    """Run a columnar-marked FILTER as a boolean mask; None → fall back."""
    mask = batch.column(stage.bool_column)
    if not isinstance(mask, np.ndarray):
        return None
    mask = mask.astype(bool, copy=False)
    out = {}
    for name in stage.copy_columns:
        column = batch.column(name)
        if isinstance(column, ColumnarRows):
            out[name] = column.mask(mask)
        elif isinstance(column, np.ndarray):
            out[name] = column[mask]
        else:
            return None
    return VectorList(out)


def aggregate_sum(groups, keys, values):
    """Fold one batch of (key, value) pairs into ``groups`` as grouped sums.

    Accumulation is sequential in input order within the batch (bincount
    for float64 weights, unbuffered ``np.add.at`` otherwise, so integer
    sums stay exact integers as on the object path).
    """
    unique, inverse = np.unique(keys, return_inverse=True)
    if values.dtype == np.float64:
        sums = np.bincount(inverse, weights=values, minlength=len(unique))
    else:
        sums = np.zeros(len(unique), dtype=np.result_type(values))
        np.add.at(sums, inverse, values)
    for key, total in zip(unique.tolist(), sums.tolist()):
        if key in groups:
            groups[key] = groups[key] + total
        else:
            groups[key] = total
