"""Single-process execution helpers.

:func:`run_local` takes a computation graph, compiles it to TCAP,
optimizes it, plans pipelines, and executes them with the vectorized
pipeline engine over in-memory sources.  It is the quickest way to run a
PC computation without standing up a (simulated) cluster, and the
differential-testing counterpart of the reference interpreter.
"""

from __future__ import annotations

from repro.engine.physical import plan_pipelines
from repro.engine.pipeline import EngineMetrics, PipelineEngine
from repro.engine.vectors import DEFAULT_BATCH_SIZE
from repro.tcap.compiler import compile_computations
from repro.tcap.optimizer import optimize


def run_local(sinks, sources, batch_size=DEFAULT_BATCH_SIZE, optimized=True,
              build_side_overrides=None, metrics=None):
    """Compile, (optionally) optimize, plan, and execute locally.

    ``sources`` maps ``(database, set)`` to lists of objects.  Returns
    ``(outputs, program, metrics)`` where outputs maps ``(database, set)``
    of each Writer to the produced Python list.
    """
    program = compile_computations(sinks)
    if optimized:
        optimize(program)
    plan = plan_pipelines(program, build_side_overrides=build_side_overrides)
    metrics = metrics or EngineMetrics()

    def scan_reader(scan_stmt):
        key = (scan_stmt.database, scan_stmt.set_name)
        return iter(sources[key])

    engine = PipelineEngine(
        program, plan, scan_reader, batch_size=batch_size, metrics=metrics
    )
    outputs = engine.run()
    return outputs, program, metrics
