"""Pipelined, vectorized execution of physical plans (Appendix C).

The :class:`PipelineEngine` executes the pipelines produced by
:func:`repro.engine.physical.plan_pipelines` on one worker.  Vector-list
batches are pushed through each pipeline's stages; sinks collect results:

* hash-table sinks build the join tables probe pipelines consume;
* aggregation sinks pre-aggregate into a per-pipeline hash map (the
  paper's per-thread ``Map`` on an output page);
* output sinks either collect Python values (local mode) or allocate PC
  objects in place on output-set pages (cluster mode), rolling to a fresh
  page on the out-of-memory fault and counting the resulting zombie pages.

Batches are processed with the current output page installed as the
active allocation block, so user code calling ``make_object`` inside a
native lambda allocates directly on the output page — the paper's
"data should be constructed where it is ultimately needed".
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockFullError, ExecutionError
from repro.obs import Tracer
from repro.engine import kernels
from repro.memory.builtins import MapFacade, stable_hash
from repro.memory.columnar import ColumnarRows
from repro.memory.handle import Handle
from repro.memory.objects import use_allocation_block
from repro.engine.physical import (
    SINK_AGGREGATE,
    SINK_HASH_BUILD,
    SINK_MATERIALIZE,
    SINK_OUTPUT,
    SOURCE_SCAN,
)
from repro.engine.vectors import DEFAULT_BATCH_SIZE, VectorList, batches_of
from repro.tcap.ir import (
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
)


class EngineMetrics:
    """Counters surfaced by tests and the Figure 4/5 benches.

    The fields stay exact per engine instance (tests assert per-run
    values); :meth:`bind` additionally publishes every increase into a
    metrics registry as cumulative ``pc_engine_*`` counters, so the
    cluster-wide snapshot sees engine activity without disturbing the
    per-instance numbers.
    """

    FIELDS = ("batches", "rows_in", "stage_invocations", "pages_written",
              "zombie_pages", "pre_aggregated_keys", "probe_matches",
              "columnar_rows")

    def __init__(self):
        object.__setattr__(self, "_counters", None)
        for name in self.FIELDS:
            object.__setattr__(self, name, 0)

    def bind(self, registry):
        """Mirror future (and already-accumulated) increases into
        ``registry`` as ``pc_engine_<field>_total`` counters."""
        counters = {
            name: registry.counter(
                "pc_engine_%s_total" % name,
                help="Pipeline-engine counter: %s" % name.replace("_", " "),
            )
            for name in self.FIELDS
        }
        for name, counter in counters.items():
            accumulated = getattr(self, name)
            if accumulated:
                counter.inc(accumulated)
        object.__setattr__(self, "_counters", counters)
        return self

    def __setattr__(self, name, value):
        counters = self._counters
        if counters is not None and name in counters:
            delta = value - getattr(self, name, 0)
            if delta > 0:
                counters[name].inc(delta)
        object.__setattr__(self, name, value)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}


#: Operator labels for the profiler's ``pc_op_seconds`` histogram.
_OPERATOR_NAMES = {
    ApplyStmt: "apply",
    FilterStmt: "filter",
    HashStmt: "hash",
    FlattenStmt: "flatten",
    JoinStmt: "join",
}


class PipelineEngine:
    """Executes a physical plan over one worker's data."""

    def __init__(self, program, plan, scan_reader, batch_size=None,
                 output_sink_factory=None, metrics=None, tracer=None,
                 profiler=None):
        """``scan_reader(scan_stmt)`` yields the objects of a stored set;
        ``output_sink_factory(output_stmt)`` builds the sink for OUTPUT
        statements (defaults to collecting Python lists).  With a
        ``profiler`` every TCAP operator application is timed into the
        ``pc_op_seconds{operator=...}`` histograms.
        """
        self.program = program
        self.plan = plan
        self.scan_reader = scan_reader
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        self.metrics = metrics or EngineMetrics()
        self.tracer = tracer or Tracer()
        self.profiler = profiler
        self.hash_tables = {}  # join output vlist -> {hash: [row tuples]}
        self.store = {}  # materialized vlist -> {column: list}
        self.outputs = {}  # (db, set) -> list (when using the default sink)
        self._sink_factory = output_sink_factory or self._default_sink

    # -- public ------------------------------------------------------------------

    def run(self):
        """Execute every pipeline in dependency order."""
        for pipeline in self.plan:
            self._run_pipeline(pipeline)
        return self.outputs

    # -- pipeline execution --------------------------------------------------------

    def _run_pipeline(self, pipeline):
        sink = self._make_sink(pipeline)
        for batch in self._source_batches(pipeline):
            self.metrics.batches += 1
            self.metrics.rows_in += len(batch)
            self._process_batch(pipeline, batch, sink)
        sink.finish()

    def _process_batch(self, pipeline, batch, sink):
        """Push one batch through all stages into the sink.

        Allocation faults from a page-backed sink roll the output page and
        re-run the batch from the top; objects the failed attempt left on
        the sealed page become dead space, and the sealed page — which may
        hold output rows already — is the paper's zombie output page.
        """
        self.tracer.add("engine.batches")
        self.tracer.add("engine.rows_in", len(batch))
        for attempt in range(3):
            block = sink.allocation_block()
            try:
                if block is not None:
                    with use_allocation_block(block):
                        current = self._apply_stages(pipeline, batch)
                        if current is not None:
                            sink.consume(current)
                else:
                    current = self._apply_stages(pipeline, batch)
                    if current is not None:
                        sink.consume(current)
                if current is not None:
                    self.tracer.add("engine.rows_out", len(current))
                return
            except BlockFullError:
                if attempt == 2:
                    raise
                sink.roll_page()
                self.metrics.zombie_pages += 1

    def _apply_stages(self, pipeline, batch):
        """Run all stages; returns None when a stage empties the batch."""
        current = batch
        for stage in pipeline.stages:
            self.metrics.stage_invocations += 1
            current = self._apply_stage(stage, current)
            if len(current) == 0:
                return None
        return current

    def _apply_stage(self, stage, batch):
        if self.profiler is not None:
            return self.profiler.operator(
                _OPERATOR_NAMES.get(type(stage), type(stage).__name__),
                self._apply_stage_inner, stage, batch,
            )
        return self._apply_stage_inner(stage, batch)

    def _apply_stage_inner(self, stage, batch):
        if stage.info.get("columnar") == "1":
            result = self._apply_columnar(stage, batch)
            if result is not None:
                return result
        # Fallback boundary: operators past this point run per-row, so any
        # array columns are lowered back to plain Python values first.
        batch = kernels.reify(batch)
        if isinstance(stage, ApplyStmt):
            fn = self.program.stage_fn(stage.computation, stage.stage)
            inputs = [batch.column(c) for c in stage.apply_columns]
            produced = fn(*inputs)
            out = batch.shallow_copy(stage.copy_columns)
            return out.with_column(stage.new_column, list(produced))
        if isinstance(stage, FilterStmt):
            mask = batch.column(stage.bool_column)
            return VectorList({
                name: [v for v, keep in zip(batch.column(name), mask) if keep]
                for name in stage.copy_columns
            })
        if isinstance(stage, HashStmt):
            keys = batch.column(stage.key_column)
            out = batch.shallow_copy(stage.copy_columns)
            return out.with_column(
                stage.new_column, [stable_hash(k) for k in keys]
            )
        if isinstance(stage, FlattenStmt):
            out = {c: [] for c in stage.output_columns()}
            copies = [batch.column(c) for c in stage.copy_columns]
            for row, seq in enumerate(batch.column(stage.seq_column)):
                for item in seq:
                    out[stage.new_column].append(item)
                    for name, column in zip(stage.copy_columns, copies):
                        out[name].append(column[row])
            return VectorList(out)
        if isinstance(stage, JoinStmt):
            return self._probe(stage, batch)
        raise ExecutionError("unknown stage %r" % type(stage).__name__)

    def _apply_columnar(self, stage, batch):
        """Try the whole-batch kernel for a columnar-marked stage.

        Returns None when the batch is not actually array-typed (orphan
        replays, post-fallback segments) — the caller then takes the
        per-row path, which is always correct.
        """
        if isinstance(stage, ApplyStmt):
            result = kernels.apply_kernel(self, stage, batch)
        elif isinstance(stage, FilterStmt):
            result = kernels.filter_kernel(stage, batch)
        else:
            result = None
        if result is not None:
            self._note_columnar(
                _OPERATOR_NAMES.get(type(stage), type(stage).__name__),
                len(batch),
            )
        return result

    def _note_columnar(self, operator, rows):
        self.metrics.columnar_rows += rows
        if self.profiler is not None:
            self.profiler.note_columnar_rows(operator, rows)
        elif self.tracer is not None:
            # No profiler in a back-end process: record the per-operator
            # count as a trace counter so the coordinator can replay it
            # into its own pc_op_columnar_rows_total series.
            self.tracer.add("op.%s.columnar_rows" % operator, rows)

    def _probe(self, stage, batch):
        table = self.hash_tables.get(stage.output)
        if table is None:
            raise ExecutionError(
                "hash table for %s was not built" % stage.output
            )
        build_side = self.plan.build_sides.get(stage.output, "right")
        if build_side == "right":
            probe_columns, probe_hash = stage.left_columns, stage.left_hash
            built_columns = stage.right_columns
        else:
            probe_columns, probe_hash = stage.right_columns, stage.right_hash
            built_columns = stage.left_columns
        out = {c: [] for c in stage.output_columns()}
        probe_cols = [batch.column(c) for c in probe_columns]
        for row, hash_value in enumerate(batch.column(probe_hash)):
            for built_row in table.get(hash_value, ()):
                self.metrics.probe_matches += 1
                for name, column in zip(probe_columns, probe_cols):
                    out[name].append(column[row])
                for name, value in zip(built_columns, built_row):
                    out[name].append(value)
        return VectorList(out)

    # -- sources ---------------------------------------------------------------------

    def _source_batches(self, pipeline):
        if pipeline.source_kind == SOURCE_SCAN:
            scan = pipeline.source
            yield from object_batches(
                self.scan_reader(scan), scan.column, self.batch_size,
                columnar=scan.info.get("columnar") == "1",
            )
            return
        columns = self.store.get(pipeline.source)
        if columns is None:
            raise ExecutionError(
                "vector list %r was not materialized" % pipeline.source
            )
        yield from batches_of(columns, self.batch_size)

    # -- sinks -----------------------------------------------------------------------

    def _make_sink(self, pipeline):
        if pipeline.sink_kind == SINK_HASH_BUILD:
            return HashBuildSink(self, pipeline.sink)
        if pipeline.sink_kind == SINK_AGGREGATE:
            return AggregateSink(self, pipeline.sink)
        if pipeline.sink_kind == SINK_MATERIALIZE:
            return MaterializeSink(self, pipeline.sink)
        if pipeline.sink_kind == SINK_OUTPUT:
            return self._sink_factory(pipeline.sink)
        raise ExecutionError("unknown sink kind %r" % pipeline.sink_kind)

    def _default_sink(self, output_stmt):
        return ListOutputSink(self, output_stmt)


def object_batches(objects, column, batch_size, columnar=False):
    """Batch a scanned object stream into single-column vector lists.

    Shared by the engine's scan source and the scheduler's orphan-page
    re-runs; stored aggregation Maps are expanded into their pairs either
    way.  A columnar page arrives in the stream as one
    :class:`~repro.memory.columnar.ColumnarRows` item: with ``columnar``
    set it is sliced into array batches the kernels consume whole,
    otherwise it is expanded into per-row views for the object path.
    """
    chunk = []
    for item in objects:
        if isinstance(item, ColumnarRows):
            if columnar:
                if chunk:
                    yield VectorList({column: chunk})
                    chunk = []
                for start in range(0, len(item), batch_size):
                    yield VectorList(
                        {column: item.slice(start, start + batch_size)}
                    )
            else:
                chunk.extend(item)
                while len(chunk) >= batch_size:
                    yield VectorList({column: chunk[:batch_size]})
                    chunk = chunk[batch_size:]
            continue
        expanded = _expand_aggregate_object(item)
        if expanded is None:
            chunk.append(item)
        else:
            chunk.extend(expanded)
        if len(chunk) >= batch_size:
            yield VectorList({column: chunk})
            chunk = []
    if chunk:
        yield VectorList({column: chunk})


def _expand_aggregate_object(item):
    """Expand a stored aggregation Map into its (key, value) pairs.

    Aggregation results are stored as PC Map objects (Appendix D.2); a
    downstream computation scanning such a set consumes the pairs.
    Returns None when ``item`` is not an aggregation map.
    """
    if isinstance(item, MapFacade):
        return list(item.items())
    if isinstance(item, Handle) and not item.is_null:
        view = item.deref()
        if isinstance(view, MapFacade):
            return list(view.items())
    return None


class Sink:
    """Base pipe sink."""

    def __init__(self, engine):
        self.engine = engine

    def allocation_block(self):
        """The output page block stages should allocate onto, if any."""
        return None

    def roll_page(self):
        raise BlockFullError(0, 0)  # sinks without pages cannot recover

    def consume(self, batch):
        raise NotImplementedError

    def finish(self):
        """Flush at end of pipeline."""

    def abort(self):
        """Undo any *durable* half-effects of a failed attempt.

        Called by the scheduler's retry machinery after a back-end crash,
        before the task is re-dispatched into a fresh sink.  Sinks whose
        state is engine-transient (discarded with the re-forked back-end)
        need do nothing; page-writing sinks roll their partial pages back.
        """


class HashBuildSink(Sink):
    """Builds the hash table for a join's build side."""

    def __init__(self, engine, join_stmt):
        super().__init__(engine)
        self.join = join_stmt
        side = engine.plan.build_sides[join_stmt.output]
        if side == "right":
            self.hash_column = join_stmt.right_hash
            self.columns = join_stmt.right_columns
        else:
            self.hash_column = join_stmt.left_hash
            self.columns = join_stmt.left_columns
        self.table = {}

    def consume(self, batch):
        batch = kernels.reify(batch)
        cols = [batch.column(c) for c in self.columns]
        for row, hash_value in enumerate(batch.column(self.hash_column)):
            self.table.setdefault(hash_value, []).append(
                tuple(column[row] for column in cols)
            )

    def finish(self):
        self.engine.hash_tables[self.join.output] = self.table


class AggregateSink(Sink):
    """Pre-aggregates (key, value) pairs — the paper's producing stage.

    With ``merge=True`` the finished groups are combined into whatever the
    engine's store already holds for this output instead of overwriting
    it — the mode the scheduler uses when a surviving worker absorbs a
    lost peer's orphaned scan pages after its own portion completed.
    """

    def __init__(self, engine, agg_stmt, merge=False):
        super().__init__(engine)
        self.statement = agg_stmt
        self.comp = engine.program.computations[agg_stmt.computation]
        self.groups = {}
        self.merge = merge

    def consume(self, batch):
        keys = batch.column(self.statement.key_column)
        values = batch.column(self.statement.value_column)
        if (
            self.statement.info.get("columnar") == "1"
            and isinstance(keys, np.ndarray)
            and isinstance(values, np.ndarray)
        ):
            # Declared-sum aggregation over array columns: one grouped
            # bincount per batch instead of a per-row combine loop.
            kernels.aggregate_sum(self.groups, keys, values)
            self.engine._note_columnar("aggregate", len(batch))
            return
        keys = kernels.reify_column(keys)
        values = kernels.reify_column(values)
        combine = self.comp.combine
        groups = self.groups
        for key, value in zip(keys, values):
            if key in groups:
                groups[key] = combine(groups[key], value)
            else:
                groups[key] = value

    def finish(self):
        self.engine.metrics.pre_aggregated_keys += len(self.groups)
        groups = self.groups
        existing = (
            self.engine.store.get(self.statement.output)
            if self.merge else None
        )
        if existing:
            merged = dict(zip(existing["key"], existing["val"]))
            combine = self.comp.combine
            for key, value in groups.items():
                if key in merged:
                    merged[key] = combine(merged[key], value)
                else:
                    merged[key] = value
            groups = merged
        self.engine.store[self.statement.output] = {
            "key": list(groups.keys()),
            "val": list(groups.values()),
        }


class MaterializeSink(Sink):
    """Materializes a multi-consumer vector list.

    ``merge=True`` appends the finished columns to the store's existing
    entry instead of replacing it (see :class:`AggregateSink`).
    """

    def __init__(self, engine, vlist_name, merge=False):
        super().__init__(engine)
        self.vlist_name = vlist_name
        self.columns = None
        self.merge = merge

    def consume(self, batch):
        batch = kernels.reify(batch)
        if self.columns is None:
            self.columns = {name: [] for name in batch.names()}
        for name in self.columns:
            self.columns[name].extend(batch.column(name))

    def finish(self):
        columns = self.columns or {}
        existing = (
            self.engine.store.get(self.vlist_name) if self.merge else None
        )
        if existing:
            merged = {name: list(vals) for name, vals in existing.items()}
            for name, vals in columns.items():
                merged.setdefault(name, []).extend(vals)
            columns = merged
        self.engine.store[self.vlist_name] = columns


class ListOutputSink(Sink):
    """Local-mode output: collect Python values."""

    def __init__(self, engine, output_stmt):
        super().__init__(engine)
        self.statement = output_stmt

    def consume(self, batch):
        key = (self.statement.database, self.statement.set_name)
        self.engine.outputs.setdefault(key, []).extend(
            kernels.reify_column(batch.column(self.statement.column))
        )


class PageOutputSink(Sink):
    """Cluster-mode output: allocate objects in place on set pages."""

    def __init__(self, engine, output_stmt, page_set):
        super().__init__(engine)
        self.statement = output_stmt
        self.page_set = page_set
        self._pages_mark = len(page_set.page_ids)
        self._objects_mark = page_set.object_count
        self.writer = page_set.writer().__enter__()

    def allocation_block(self):
        return self.writer._page.block

    def roll_page(self):
        self.writer._seal_page()
        self.writer._open_page()
        self.engine.metrics.pages_written += 1

    def consume(self, batch):
        root = self.writer._root
        for value in kernels.reify_column(batch.column(self.statement.column)):
            # Values produced by user projections are handles or facades
            # already living on the output page (in-place allocation) —
            # appending to the root vector is then pure bookkeeping.  A
            # value still living elsewhere is deep-copied in by the
            # vector's cross-block assignment rule.
            root.append(value)
            self.page_set.object_count += 1

    def finish(self):
        self.writer.__exit__(None, None, None)
        self.engine.metrics.pages_written += len(self.page_set.page_ids)

    def abort(self):
        if self.writer._page is not None:
            self.page_set.pool.free_page(self.writer._page.page_id)
            self.writer._page = None
            self.writer._root = None
        for page_id in self.page_set.page_ids[self._pages_mark:]:
            self.page_set.pool.free_page(page_id)
        del self.page_set.page_ids[self._pages_mark:]
        self.page_set.object_count = self._objects_mark
