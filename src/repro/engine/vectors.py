"""Vector lists: the unit of data flowing through TCAP pipelines.

A :class:`VectorList` is an ordered bundle of equal-length named columns
(Section 5.2).  Pipelines push *batches* — small vector lists whose row
count is tuned so a batch's working set stays cache-resident; the default
matches the paper's guidance of sizing vectors to the L1/L2 cache rather
than processing one row (Volcano) or one full column (materialization) at
a time.

Columns are Python lists on the object path and numpy arrays or
:class:`~repro.memory.columnar.ColumnarRows` batches on the columnar
path; the vector list itself is agnostic — it only requires that every
column report the same ``len``.
"""

from __future__ import annotations

from repro.errors import ExecutionError

#: Default rows per batch; the ablation bench sweeps this.
DEFAULT_BATCH_SIZE = 1024


class VectorList:
    """Named, equal-length columns.

    The column dict is private: every mutation goes through
    :meth:`append_column` (or the copying helpers), which re-validate the
    equal-length invariant.  ``__len__`` reports the first column's
    length, so an unchecked write could silently desynchronize it from
    the rest — the constructor-only validation this replaces allowed
    exactly that.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns=None):
        self._columns = dict(columns or {})
        lengths = {len(col) for col in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(
                "ragged vector list: column lengths %s" % sorted(lengths)
            )

    def __len__(self):
        for column in self._columns.values():
            return len(column)
        return 0

    def __contains__(self, name):
        return name in self._columns

    def column(self, name):
        try:
            return self._columns[name]
        except KeyError as missing:
            raise ExecutionError(
                "vector list has no column %r (has %s)"
                % (name, sorted(self._columns))
            ) from missing

    def append_column(self, name, values):
        """Add (or replace) a column in place, re-validating lengths."""
        if self._columns and len(values) != len(self):
            raise ExecutionError(
                "ragged vector list: column %r has %d rows, expected %d"
                % (name, len(values), len(self))
            )
        self._columns[name] = values

    def shallow_copy(self, names):
        """A new vector list sharing the selected column objects.

        This is TCAP's shallow column copy: no per-row work at all.
        """
        return VectorList({name: self.column(name) for name in names})

    def with_column(self, name, values):
        """This vector list plus one appended column (shared others)."""
        out = VectorList(self._columns)
        out.append_column(name, values)
        return out

    def names(self):
        return list(self._columns)

    def __repr__(self):
        return "VectorList(%s x %d rows)" % (sorted(self._columns), len(self))


def batches_of(column_dict, batch_size=DEFAULT_BATCH_SIZE):
    """Slice aligned columns into VectorList batches."""
    names = list(column_dict)
    if not names:
        return
    total = len(column_dict[names[0]])
    for start in range(0, total, batch_size):
        yield VectorList({
            name: column_dict[name][start:start + batch_size]
            for name in names
        })
