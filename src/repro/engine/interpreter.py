"""A reference executor for TCAP programs.

This interpreter runs a TCAP program one statement at a time over whole,
materialized columns.  It is deliberately simple: no pipelining, no pages,
no partitioning.  It exists (a) as the semantic reference the vectorized
pipeline engine is differentially tested against, and (b) as the local
execution path for small inputs.

Sources and sinks are plain Python mappings from ``(database, set)`` to
lists of objects, so the interpreter is usable without any storage stack.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.memory.builtins import stable_hash
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
)


class LocalInterpreter:
    """Executes a compiled TcapProgram over in-memory inputs."""

    def __init__(self, program, sources):
        self.program = program
        self.sources = dict(sources)
        self.env = {}  # vlist name -> {column: list}
        self.outputs = {}  # (db, set) -> list

    def run(self):
        """Execute every statement; returns ``{(db, set): [objects]}``."""
        for statement in self.program.statements:
            self._execute(statement)
        return self.outputs

    # -- dispatch -----------------------------------------------------------------

    def _execute(self, statement):
        handler = self._HANDLERS.get(type(statement))
        if handler is None:
            raise ExecutionError(
                "interpreter cannot execute %r" % type(statement).__name__
            )
        handler(self, statement)

    def _vlist(self, name):
        try:
            return self.env[name]
        except KeyError as missing:
            raise ExecutionError(
                "vector list %r not materialized" % name
            ) from missing

    # -- statement handlers ---------------------------------------------------------

    def _scan(self, statement):
        key = (statement.database, statement.set_name)
        if key not in self.sources:
            raise ExecutionError("no source bound for set %s.%s" % key)
        self.env[statement.output] = {
            statement.column: list(self.sources[key])
        }

    def _apply(self, statement):
        vlist = self._vlist(statement.input_name)
        fn = self.program.stage_fn(statement.computation, statement.stage)
        inputs = [vlist[column] for column in statement.apply_columns]
        produced = fn(*inputs)
        out = {column: vlist[column] for column in statement.copy_columns}
        out[statement.new_column] = list(produced)
        self.env[statement.output] = out

    def _filter(self, statement):
        vlist = self._vlist(statement.input_name)
        mask = vlist[statement.bool_column]
        out = {}
        for column in statement.copy_columns:
            values = vlist[column]
            out[column] = [v for v, keep in zip(values, mask) if keep]
        self.env[statement.output] = out

    def _hash(self, statement):
        vlist = self._vlist(statement.input_name)
        keys = vlist[statement.key_column]
        out = {column: vlist[column] for column in statement.copy_columns}
        out[statement.new_column] = [stable_hash(k) for k in keys]
        self.env[statement.output] = out

    def _join(self, statement):
        left = self._vlist(statement.left_input)
        right = self._vlist(statement.right_input)
        build = {}
        right_cols = [right[c] for c in statement.right_columns]
        for row_index, hash_value in enumerate(right[statement.right_hash]):
            build.setdefault(hash_value, []).append(row_index)
        out = {c: [] for c in statement.output_columns()}
        left_cols = [left[c] for c in statement.left_columns]
        for row_index, hash_value in enumerate(left[statement.left_hash]):
            for match in build.get(hash_value, ()):
                for name, column in zip(statement.left_columns, left_cols):
                    out[name].append(column[row_index])
                for name, column in zip(statement.right_columns, right_cols):
                    out[name].append(column[match])
        self.env[statement.output] = out

    def _flatten(self, statement):
        vlist = self._vlist(statement.input_name)
        sequences = vlist[statement.seq_column]
        out = {c: [] for c in statement.output_columns()}
        copies = [vlist[c] for c in statement.copy_columns]
        for row_index, seq in enumerate(sequences):
            for item in seq:
                out[statement.new_column].append(item)
                for name, column in zip(statement.copy_columns, copies):
                    out[name].append(column[row_index])
        self.env[statement.output] = out

    def _aggregate(self, statement):
        vlist = self._vlist(statement.input_name)
        comp = self.program.computations[statement.computation]
        groups = {}
        keys = vlist[statement.key_column]
        values = vlist[statement.value_column]
        for key, value in zip(keys, values):
            if key in groups:
                groups[key] = comp.combine(groups[key], value)
            else:
                groups[key] = value
        self.env[statement.output] = {
            "key": list(groups.keys()),
            "val": list(groups.values()),
        }

    def _output(self, statement):
        vlist = self._vlist(statement.input_name)
        key = (statement.database, statement.set_name)
        self.outputs.setdefault(key, []).extend(vlist[statement.column])

    _HANDLERS = {
        ScanStmt: _scan,
        ApplyStmt: _apply,
        FilterStmt: _filter,
        HashStmt: _hash,
        JoinStmt: _join,
        FlattenStmt: _flatten,
        AggregateStmt: _aggregate,
        OutputStmt: _output,
    }
