"""MatrixBlock: the chunked representation of distributed matrices.

A huge matrix is stored as a PC set of :class:`MatrixBlock` objects, each
holding one contiguous rectangular sub-block (Section 6.1, Section 8.3.1).
The numeric payload lives as raw float64 bytes on the block's page;
:meth:`MatrixBlock.get_matrix` returns a numpy view that *aliases* those
bytes — the exact reproduction of the paper's ``Eigen::Map`` over
``getRawDataHandle()->c_ptr()``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinAlgError
from repro.memory import Float64, Int32, PCObject, VectorType, make_object

#: Key encoding for (block_row, block_col) aggregation keys: PC Maps key on
#: primitives, so block coordinates pack into one int64.
_KEY_SHIFT = 20


def encode_block_key(block_row, block_col):
    """Pack block coordinates into a single int64 aggregation key."""
    return (block_row << _KEY_SHIFT) | block_col


def decode_block_key(key):
    """Unpack an int64 aggregation key into (block_row, block_col)."""
    return key >> _KEY_SHIFT, key & ((1 << _KEY_SHIFT) - 1)


class MatrixBlock(PCObject):
    """One rectangular chunk of a distributed matrix."""

    fields = [
        ("block_row", Int32),
        ("block_col", Int32),
        ("rows", Int32),
        ("cols", Int32),
        ("data", VectorType(Float64)),
    ]

    def get_matrix(self):
        """A (rows, cols) numpy view aliasing the page bytes (zero copy)."""
        return self.data.as_numpy().reshape(self.rows, self.cols)

    def key(self):
        return (self.block_row, self.block_col)


def make_matrix_block(block_row, block_col, values):
    """Allocate a MatrixBlock on the active block from a 2-D numpy array."""
    values = np.asarray(values, dtype="f8")
    if values.ndim != 2:
        raise LinAlgError("matrix block values must be 2-D")
    return make_object(
        MatrixBlock,
        block_row=block_row,
        block_col=block_col,
        rows=values.shape[0],
        cols=values.shape[1],
        data=values,
    )


def block_grid(n_rows, n_cols, block_rows, block_cols):
    """Yield ``(brow, bcol, row_slice, col_slice)`` covering the matrix."""
    for brow in range((n_rows + block_rows - 1) // block_rows):
        for bcol in range((n_cols + block_cols - 1) // block_cols):
            row_slice = slice(
                brow * block_rows, min((brow + 1) * block_rows, n_rows)
            )
            col_slice = slice(
                bcol * block_cols, min((bcol + 1) * block_cols, n_cols)
            )
            yield brow, bcol, row_slice, col_slice
