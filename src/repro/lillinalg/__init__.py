"""lilLinAlg: the distributed linear-algebra tool of Section 8.3."""

from repro.lillinalg.dsl import LilLinAlg, Parser, as_numpy, tokenize
from repro.lillinalg.matrix import (
    MatrixBlock,
    block_grid,
    decode_block_key,
    encode_block_key,
    make_matrix_block,
)
from repro.lillinalg.ops import BlockSumAggregate, DistributedMatrix

__all__ = [
    "BlockSumAggregate",
    "DistributedMatrix",
    "LilLinAlg",
    "MatrixBlock",
    "Parser",
    "as_numpy",
    "block_grid",
    "decode_block_key",
    "encode_block_key",
    "make_matrix_block",
    "tokenize",
]
