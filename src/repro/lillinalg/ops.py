"""Distributed matrix operations as PC computation graphs (Section 8.3).

Every operation builds the same kind of graph a lilLinAlg AST node does in
the paper: multiplication is a ``JoinComp`` (match A's block column with
B's block row) followed by an ``AggregateComp`` (sum partial products per
output block) — "distributed matrix multiplication is basically a join
followed by an aggregation".

The numeric kernels run through numpy views aliasing page bytes (the
``Eigen::Map`` path); whether a join broadcasts or hash-partitions is the
scheduler's decision, not lilLinAlg's, exactly as in PC.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.errors import LinAlgError
from repro.memory import Float64, Int64, VectorType
from repro.lillinalg.matrix import (
    MatrixBlock,
    block_grid,
    decode_block_key,
    encode_block_key,
    make_matrix_block,
)

_set_ids = itertools.count(1)


def _fresh_set_name(prefix):
    return "%s_%d" % (prefix, next(_set_ids))


class BlockSumAggregate(AggregateComp):
    """Sums numpy partial blocks keyed by encoded block coordinates."""

    key_type = Int64
    value_type = VectorType(Float64)

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda t: t[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda t: t[1])

    def combine(self, a, b):
        return a + b

    def decode_value(self, stored):
        if isinstance(stored, np.ndarray):
            return stored
        return np.array(stored.as_numpy())


class DistributedMatrix:
    """A matrix stored as a PC set of MatrixBlock objects."""

    def __init__(self, cluster, database, set_name, n_rows, n_cols,
                 block_rows, block_cols):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.block_rows = block_rows
        self.block_cols = block_cols

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_numpy(cls, cluster, database, values, block_rows, block_cols,
                   set_name=None):
        """Chunk a numpy matrix into MatrixBlocks and load it."""
        values = np.asarray(values, dtype="f8")
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        set_name = set_name or _fresh_set_name("mat")
        cluster.register_type(MatrixBlock)
        cluster.create_database(database)
        cluster.create_set(database, set_name, MatrixBlock)
        n_rows, n_cols = values.shape
        with cluster.loader(database, set_name) as load:
            for brow, bcol, rslice, cslice in block_grid(
                n_rows, n_cols, block_rows, block_cols
            ):
                chunk = values[rslice, cslice]
                load.append_built(
                    lambda block, _b=brow, _c=bcol, _chunk=chunk:
                    make_matrix_block(_b, _c, _chunk)
                )
        return cls(cluster, database, set_name, n_rows, n_cols,
                   block_rows, block_cols)

    def to_numpy(self):
        """Gather all blocks to the client and assemble the full matrix."""
        out = np.zeros((self.n_rows, self.n_cols))
        for handle in self.cluster.read(self.database, self.set_name):
            view = handle.deref()
            r0 = view.block_row * self.block_rows
            c0 = view.block_col * self.block_cols
            out[r0:r0 + view.rows, c0:c0 + view.cols] = view.get_matrix()
        return out

    def _reader(self):
        return ObjectReader(self.database, self.set_name)

    def _result(self, set_name, n_rows, n_cols, block_rows=None,
                block_cols=None):
        return DistributedMatrix(
            self.cluster, self.database, set_name, n_rows, n_cols,
            block_rows or self.block_rows, block_cols or self.block_cols,
        )

    def _run_blockwise(self, comp, n_rows, n_cols, block_rows=None,
                       block_cols=None):
        """Execute a graph whose output set holds MatrixBlock objects."""
        out_set = _fresh_set_name("mat")
        self.cluster.create_set(self.database, out_set, MatrixBlock)
        writer = Writer(self.database, out_set).set_input(comp)
        self.cluster.execute_computations(writer)
        return self._result(out_set, n_rows, n_cols, block_rows, block_cols)

    def _run_aggregated(self, agg, n_rows, n_cols, block_rows, block_cols):
        """Execute a block-sum aggregation and rematerialize blocks."""
        out_set = _fresh_set_name("agg")
        writer = Writer(self.database, out_set).set_input(agg)
        self.cluster.execute_computations(writer)
        merged = self.cluster.read(
            self.database, out_set, as_pairs=True, comp=agg
        )
        result_set = _fresh_set_name("mat")
        self.cluster.create_set(self.database, result_set, MatrixBlock)
        with self.cluster.loader(self.database, result_set) as load:
            for key, flat in merged.items():
                brow, bcol = decode_block_key(key)
                rows = min(block_rows, n_rows - brow * block_rows)
                cols = min(block_cols, n_cols - bcol * block_cols)
                chunk = np.asarray(flat).reshape(rows, cols)
                load.append_built(
                    lambda block, _b=brow, _c=bcol, _chunk=chunk:
                    make_matrix_block(_b, _c, _chunk)
                )
        self.cluster.drop_set(self.database, out_set)
        return self._result(
            result_set, n_rows, n_cols, block_rows, block_cols
        )

    # -- element-wise operations ---------------------------------------------------------

    def _elementwise(self, other, op_name, fn):
        if (self.n_rows, self.n_cols) != (other.n_rows, other.n_cols):
            raise LinAlgError(
                "%s shape mismatch: %sx%s vs %sx%s"
                % (op_name, self.n_rows, self.n_cols, other.n_rows,
                   other.n_cols)
            )

        class ElementwiseJoin(JoinComp):
            def get_selection(self, a, b):
                return (
                    lambda_from_member(a, "block_row")
                    == lambda_from_member(b, "block_row")
                ) & (
                    lambda_from_member(a, "block_col")
                    == lambda_from_member(b, "block_col")
                )

            def get_projection(self, a, b):
                return lambda_from_native([a, b], lambda ba, bb:
                                          make_matrix_block(
                                              ba.block_row, ba.block_col,
                                              fn(ba.get_matrix(),
                                                 bb.get_matrix())))

        join = ElementwiseJoin()
        join.set_input(0, self._reader()).set_input(1, other._reader())
        return self._run_blockwise(join, self.n_rows, self.n_cols)

    def add(self, other):
        """Element-wise sum (a join on block coordinates)."""
        return self._elementwise(other, "add", lambda a, b: a + b)

    def subtract(self, other):
        """Element-wise difference."""
        return self._elementwise(other, "subtract", lambda a, b: a - b)

    def elementwise_multiply(self, other):
        """Hadamard product (the DSL's ``.*``)."""
        return self._elementwise(other, ".*", lambda a, b: a * b)

    def scale_multiply(self, scalar):
        """Multiply every entry by ``scalar``."""
        scalar = float(scalar)

        class Scale(SelectionComp):
            def get_projection(self, arg):
                return lambda_from_native([arg], lambda b: make_matrix_block(
                    b.block_row, b.block_col, b.get_matrix() * scalar
                ))

        sel = Scale().set_input(self._reader())
        return self._run_blockwise(sel, self.n_rows, self.n_cols)

    def subtract_row_vector(self, vector):
        """Subtract a length-``n_cols`` vector from every row.

        ``vector`` is a small client-side constant captured in the native
        lambda — the stand-in for a broadcast variable, used by the
        nearest-neighbor benchmark to form ``x_i - x'``.
        """
        vector = np.asarray(vector, dtype="f8").reshape(-1)
        if vector.size != self.n_cols:
            raise LinAlgError("row vector length mismatch")
        block_cols = self.block_cols

        class SubtractRow(SelectionComp):
            def get_projection(self, arg):
                def shift(b):
                    c0 = b.block_col * block_cols
                    segment = vector[c0:c0 + b.cols]
                    return make_matrix_block(
                        b.block_row, b.block_col, b.get_matrix() - segment
                    )

                return lambda_from_native([arg], shift)

        sel = SubtractRow().set_input(self._reader())
        return self._run_blockwise(sel, self.n_rows, self.n_cols)

    # -- structural operations ----------------------------------------------------------

    def transpose(self):
        """Distributed transpose (a selection producing swapped blocks)."""

        class Transpose(SelectionComp):
            def get_projection(self, arg):
                return lambda_from_native([arg], lambda b: make_matrix_block(
                    b.block_col, b.block_row,
                    np.ascontiguousarray(b.get_matrix().T),
                ))

        sel = Transpose().set_input(self._reader())
        return self._run_blockwise(
            sel, self.n_cols, self.n_rows,
            block_rows=self.block_cols, block_cols=self.block_rows,
        )

    # -- multiplication -------------------------------------------------------------------

    def multiply(self, other):
        """Distributed matrix multiply: join + aggregation (``%*%``)."""
        if self.n_cols != other.n_rows:
            raise LinAlgError(
                "multiply inner dimension mismatch: %d vs %d"
                % (self.n_cols, other.n_rows)
            )
        if self.block_cols != other.block_rows:
            raise LinAlgError("multiply block chunking mismatch")

        class MultiplyJoin(JoinComp):
            def get_selection(self, a, b):
                return lambda_from_member(a, "block_col") == \
                    lambda_from_member(b, "block_row")

            def get_projection(self, a, b):
                def partial(ba, bb):
                    product = ba.get_matrix() @ bb.get_matrix()
                    return (
                        encode_block_key(ba.block_row, bb.block_col),
                        product.reshape(-1),
                    )

                return lambda_from_native([a, b], partial)

        join = MultiplyJoin()
        join.set_input(0, self._reader()).set_input(1, other._reader())
        agg = BlockSumAggregate().set_input(join)
        return self._run_aggregated(
            agg, self.n_rows, other.n_cols, self.block_rows, other.block_cols
        )

    def transpose_multiply(self, other):
        """``A '* B`` = ``transpose(A) %*% B`` without materializing A^T."""
        if self.n_rows != other.n_rows:
            raise LinAlgError("transpose-multiply dimension mismatch")

        class TransposeMultiplyJoin(JoinComp):
            def get_selection(self, a, b):
                return lambda_from_member(a, "block_row") == \
                    lambda_from_member(b, "block_row")

            def get_projection(self, a, b):
                def partial(ba, bb):
                    product = ba.get_matrix().T @ bb.get_matrix()
                    return (
                        encode_block_key(ba.block_col, bb.block_col),
                        product.reshape(-1),
                    )

                return lambda_from_native([a, b], partial)

        join = TransposeMultiplyJoin()
        join.set_input(0, self._reader()).set_input(1, other._reader())
        agg = BlockSumAggregate().set_input(join)
        return self._run_aggregated(
            agg, self.n_cols, other.n_cols, self.block_cols, other.block_cols
        )

    # -- reductions ---------------------------------------------------------------------------

    def row_sum(self):
        """Column vector of row sums."""
        block_rows = self.block_rows

        class RowSum(AggregateComp):
            key_type = Int64
            value_type = VectorType(Float64)

            def get_key_projection(self, arg):
                return lambda_from_native(
                    [arg], lambda b: encode_block_key(b.block_row, 0)
                )

            def get_value_projection(self, arg):
                return lambda_from_native(
                    [arg], lambda b: b.get_matrix().sum(axis=1)
                )

            def combine(self, a, b):
                return a + b

            def decode_value(self, stored):
                if isinstance(stored, np.ndarray):
                    return stored
                return np.array(stored.as_numpy())

        agg = RowSum().set_input(self._reader())
        return self._run_aggregated(
            agg, self.n_rows, 1, block_rows, 1
        )

    def col_sum(self):
        """Row vector of column sums."""
        class ColSum(AggregateComp):
            key_type = Int64
            value_type = VectorType(Float64)

            def get_key_projection(self, arg):
                return lambda_from_native(
                    [arg], lambda b: encode_block_key(0, b.block_col)
                )

            def get_value_projection(self, arg):
                return lambda_from_native(
                    [arg], lambda b: b.get_matrix().sum(axis=0)
                )

            def combine(self, a, b):
                return a + b

            def decode_value(self, stored):
                if isinstance(stored, np.ndarray):
                    return stored
                return np.array(stored.as_numpy())

        agg = ColSum().set_input(self._reader())
        return self._run_aggregated(
            agg, 1, self.n_cols, 1, self.block_cols
        )

    def _scalar_reduce(self, reducer, projector):
        class Reduce(AggregateComp):
            key_type = Int64
            value_type = Float64

            def get_key_projection(self, arg):
                return lambda_from_native([arg], lambda b: 0)

            def get_value_projection(self, arg):
                return lambda_from_native([arg], projector)

            def combine(self, a, b):
                return reducer(a, b)

        agg = Reduce().set_input(self._reader())
        out_set = _fresh_set_name("sc")
        writer = Writer(self.database, out_set).set_input(agg)
        self.cluster.execute_computations(writer)
        merged = self.cluster.read(self.database, out_set, as_pairs=True)
        self.cluster.drop_set(self.database, out_set)
        values = list(merged.values())
        result = values[0]
        for value in values[1:]:
            result = reducer(result, value)
        return result

    def min_element(self):
        """The smallest entry of the matrix."""
        return self._scalar_reduce(min, lambda b: float(b.get_matrix().min()))

    def max_element(self):
        """The largest entry of the matrix."""
        return self._scalar_reduce(max, lambda b: float(b.get_matrix().max()))

    # -- small-matrix escape hatch -----------------------------------------------------------

    def inverse(self):
        """Matrix inverse (``^-1``).

        Inversion is inherently non-blockwise; like the paper's linear
        regression, it is applied to small (d x d) Gram matrices, so the
        blocks are gathered to the client, inverted with the native
        kernel, and redistributed.
        """
        if self.n_rows != self.n_cols:
            raise LinAlgError("inverse of a non-square matrix")
        full = self.to_numpy()
        inverted = np.linalg.inv(full)
        return DistributedMatrix.from_numpy(
            self.cluster, self.database, inverted,
            self.block_rows, self.block_cols,
        )

    def __repr__(self):
        return "<DistributedMatrix %s.%s %dx%d (blocks %dx%d)>" % (
            self.database, self.set_name, self.n_rows, self.n_cols,
            self.block_rows, self.block_cols,
        )
