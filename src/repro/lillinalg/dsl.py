"""The lilLinAlg DSL: a small Matlab-like language (Section 8.3.1).

Programs look like the paper's linear-regression example::

    X = load("db", "X");
    y = load("db", "y");
    beta = (X '* X)^-1 %*% (X '* y);
    save(beta, "db", "beta");

Operators (binding tightest first):

* postfix ``'`` — transpose; postfix ``^-1`` — inverse
* ``'*`` — transpose-then-multiply; ``%*%`` — matrix multiply;
  ``.*`` — element-wise multiply; scalar ``*`` — scale
* ``+`` / ``-`` — element-wise add / subtract

Functions: ``load(db, set | matrix literal)``, ``save(expr, db, set)``,
``rowSum``, ``colSum``, ``minElement``, ``maxElement``.

The evaluator parses a program into an AST, then walks the AST building
PC Computation graphs through :class:`~repro.lillinalg.ops.DistributedMatrix`
— exactly the paper's flow of "parse into an AST, then use the AST to
build up a graph of PC Computation objects".
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import DslParseError, LinAlgError
from repro.lillinalg.ops import DistributedMatrix

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<TMUL>'\*)
  | (?P<MMUL>%\*%)
  | (?P<EMUL>\.\*)
  | (?P<INV>\^-1)
  | (?P<NUMBER>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<STRING>"[^"]*")
  | (?P<OP>[=()+\-*,;'])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.text)


def tokenize(source):
    """Split DSL source into tokens; raises on unrecognized input."""
    tokens = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise DslParseError(
                "unexpected character %r" % source[position], line=line
            )
        kind = match.lastgroup
        text = match.group()
        line += text.count("\n")
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "OP":
            kind = text
        tokens.append(Token(kind, text, line))
    tokens.append(Token("EOF", "", line))
    return tokens


# -- AST nodes -----------------------------------------------------------------

class Node:
    pass


class Name(Node):
    def __init__(self, name):
        self.name = name


class Number(Node):
    def __init__(self, value):
        self.value = value


class BinOp(Node):
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class Postfix(Node):
    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class Call(Node):
    def __init__(self, fn, args):
        self.fn = fn
        self.args = args


class Assign(Node):
    def __init__(self, target, expr):
        self.target = target
        self.expr = expr


class Parser:
    """Recursive-descent parser for the DSL grammar."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        return self.tokens[self.position]

    def next(self):
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token.kind != kind:
            raise DslParseError(
                "expected %s, found %r" % (kind, token.text), line=token.line
            )
        return token

    def parse_program(self):
        statements = []
        while self.peek().kind != "EOF":
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self):
        token = self.peek()
        if (
            token.kind == "NAME"
            and self.tokens[self.position + 1].kind == "="
        ):
            name = self.next().text
            self.expect("=")
            expr = self.parse_expr()
            self.expect(";")
            return Assign(name, expr)
        expr = self.parse_expr()
        self.expect(";")
        return expr

    # expr := term (("+"|"-") term)*
    def parse_expr(self):
        node = self.parse_term()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            node = BinOp(op, node, self.parse_term())
        return node

    # term := postfix (("%*%"|"'*"|".*"|"*") postfix)*
    def parse_term(self):
        node = self.parse_postfix()
        while self.peek().kind in ("MMUL", "TMUL", "EMUL", "*"):
            op = self.next().kind
            node = BinOp(op, node, self.parse_postfix())
        return node

    # postfix := atom ("'" | "^-1")*
    def parse_postfix(self):
        node = self.parse_atom()
        while self.peek().kind in ("'", "INV"):
            op = self.next().kind
            node = Postfix(op, node)
        return node

    def parse_atom(self):
        token = self.next()
        if token.kind == "NUMBER":
            return Number(float(token.text))
        if token.kind == "STRING":
            return Name("\x00str:" + token.text[1:-1])
        if token.kind == "NAME":
            if self.peek().kind == "(":
                self.next()
                args = []
                if self.peek().kind != ")":
                    args.append(self.parse_expr())
                    while self.peek().kind == ",":
                        self.next()
                        args.append(self.parse_expr())
                self.expect(")")
                return Call(token.text, args)
            return Name(token.text)
        if token.kind == "(":
            node = self.parse_expr()
            self.expect(")")
            return node
        raise DslParseError(
            "unexpected token %r" % token.text, line=token.line
        )


class LilLinAlg:
    """The DSL front end bound to one cluster.

    Matrices referenced by ``load`` must have been registered with
    :meth:`bind` (or created by a previous ``save``), mirroring the
    paper's pattern of loading named sets from PC storage.
    """

    def __init__(self, cluster, database="lla"):
        self.cluster = cluster
        self.database = database
        self.environment = {}

    def bind(self, name, matrix):
        """Expose an existing DistributedMatrix to DSL programs."""
        self.environment[name] = matrix
        return matrix

    def load_numpy(self, name, values, block_rows, block_cols):
        """Chunk and load a numpy matrix, binding it to ``name``."""
        matrix = DistributedMatrix.from_numpy(
            self.cluster, self.database, values, block_rows, block_cols,
        )
        return self.bind(name, matrix)

    def run(self, source):
        """Execute a DSL program; returns the value of the last statement."""
        statements = Parser(tokenize(source)).parse_program()
        result = None
        for statement in statements:
            result = self._execute(statement)
        return result

    def _execute(self, node):
        if isinstance(node, Assign):
            value = self._eval(node.expr)
            self.environment[node.target] = value
            return value
        return self._eval(node)

    def _eval(self, node):
        if isinstance(node, Number):
            return node.value
        if isinstance(node, Name):
            if node.name.startswith("\x00str:"):
                return node.name[len("\x00str:"):]
            try:
                return self.environment[node.name]
            except KeyError:
                raise LinAlgError("undefined matrix %r" % node.name) from None
        if isinstance(node, Postfix):
            operand = self._eval(node.operand)
            if node.op == "'":
                return operand.transpose()
            return operand.inverse()
        if isinstance(node, BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if node.op == "+":
                return left.add(right)
            if node.op == "-":
                return left.subtract(right)
            if node.op == "MMUL":
                return left.multiply(right)
            if node.op == "TMUL":
                return left.transpose_multiply(right)
            if node.op == "EMUL":
                return left.elementwise_multiply(right)
            if node.op == "*":
                if isinstance(left, (int, float)):
                    return right.scale_multiply(left)
                if isinstance(right, (int, float)):
                    return left.scale_multiply(right)
                return left.multiply(right)
            raise LinAlgError("unknown operator %r" % node.op)
        if isinstance(node, Call):
            return self._call(node.fn, [self._eval(a) for a in node.args])
        raise LinAlgError("cannot evaluate %r" % node)

    def _call(self, fn, args):
        if fn == "load":
            name = args[-1]
            if name in self.environment:
                return self.environment[name]
            raise LinAlgError(
                "load(%r): bind the matrix first with bind()/load_numpy()"
                % name
            )
        if fn == "save":
            matrix, name = args[0], args[-1]
            self.environment[name] = matrix
            return matrix
        if fn == "rowSum":
            return args[0].row_sum()
        if fn == "colSum":
            return args[0].col_sum()
        if fn == "minElement":
            return args[0].min_element()
        if fn == "maxElement":
            return args[0].max_element()
        if fn == "inv":
            return args[0].inverse()
        if fn == "toNumpy":
            return args[0].to_numpy()
        raise LinAlgError("unknown function %r" % fn)


def as_numpy(value):
    """Collect a DSL result (matrix or scalar) into host form."""
    if isinstance(value, DistributedMatrix):
        return value.to_numpy()
    return np.asarray(value)
