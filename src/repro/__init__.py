"""repro: a Python reproduction of PlinyCompute (SIGMOD 2018).

PlinyCompute ("PC") is *declarative in the large* — computations are
expressed with a lambda calculus, compiled to the TCAP intermediate
language, optimized with relational techniques, and scheduled over a
cluster — and *high-performance in the small* — all data lives in the PC
object model, allocated in place on pages that move between storage,
network, and compute with zero (de)serialization.

Subpackages
-----------
``repro.memory``
    The PC object model: pages as heaps, offset-pointer handles,
    reference counting, allocation policies.
``repro.catalog`` / ``repro.storage``
    Cluster metadata and the paged storage subsystem (buffer pool, sets).
``repro.core``
    The user-facing API: lambda calculus and Computation classes.
``repro.tcap``
    The TCAP IR, compiler, and rule-based optimizer.
``repro.engine``
    The vectorized pipeline execution engine and physical planner.
``repro.cluster``
    The simulated distributed runtime (master, workers, shuffle network).
``repro.lillinalg``
    The lilLinAlg distributed linear-algebra DSL of Section 8.3.
``repro.ml``
    LDA, GMM, and k-means implementations of Section 8.5.
``repro.tpch``
    The denormalized TPC-H object workloads of Section 8.4.
``repro.baseline``
    A Spark-like managed-runtime engine used as the benchmark comparator.
"""

__version__ = "0.1.0"
