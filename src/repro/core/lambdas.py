"""PC's lambda calculus (Section 4 of the paper).

A PC programmer does not hand the system opaque row functions; they hand it
*lambda terms* built from a toolkit of lambda abstraction families
(:func:`lambda_from_member`, :func:`lambda_from_method`,
:func:`lambda_from_native`, :func:`lambda_from_self`) composed with
higher-order functions (the comparison, boolean and arithmetic operators).
The system can then *see into* the computation — which attribute is read,
which method is called, which inputs each sub-term depends on — and that
visibility is what makes TCAP compilation and relational-style
optimization possible.  Anything hidden inside a native lambda stays
opaque, exactly as in the paper.

Operator mapping from the C++ binding:

====================  =====================
C++                   Python
====================  =====================
``==`` / ``!=``       ``==`` / ``!=``
``<`` ``>`` etc.      ``<`` ``>`` etc.
``&&`` / ``||``       ``&`` / ``|``
``!``                 ``~``
``+ - * /``           ``+ - * /``
====================  =====================
"""

from __future__ import annotations

import itertools

from repro.errors import LambdaError

_term_ids = itertools.count(1)


class Arg:
    """Placeholder for one input of a computation.

    When PC calls a user's lambda term construction function it passes one
    ``Arg`` per input set; the user threads them through the abstraction
    families.  ``index`` identifies the input, ``cls`` (optional) documents
    the expected object type.
    """

    __slots__ = ("index", "cls")

    def __init__(self, index, cls=None):
        self.index = index
        self.cls = cls

    def __repr__(self):
        cls = self.cls.__name__ if self.cls is not None else "?"
        return "<arg%d: %s>" % (self.index, cls)


class LambdaTerm:
    """A node of a lambda term tree.

    Attributes
    ----------
    kind:
        The abstraction/operator kind; mirrors the ``type`` entry of a TCAP
        key-value map (``attAccess``, ``methodCall``, ``nativeLambda``,
        ``self``, ``constant``, ``==``, ``&&``, ``+``...).
    children:
        Sub-terms this term consumes.  Leaves consume ``Arg`` inputs
        instead (``arg_indices``).
    info:
        Metadata carried into the TCAP key-value map (attName, methodName,
        op...).  Informational only at execution time, vital for
        optimization (Section 5.2).
    """

    def __init__(self, kind, children=(), arg_indices=(), info=None,
                 executor=None, kernel=None):
        self.term_id = next(_term_ids)
        self.kind = kind
        self.children = list(children)
        self.arg_indices = list(arg_indices)
        self.info = dict(info or {})
        self._executor = executor
        #: optional whole-batch (columnar) implementation of this term;
        #: see :func:`lambda_from_native`'s ``kernel`` argument.
        self.kernel = kernel

    # -- analysis -----------------------------------------------------------------

    def depends_on(self):
        """The set of input indices this term transitively reads."""
        deps = set(self.arg_indices)
        for child in self.children:
            deps |= child.depends_on()
        return deps

    def walk(self):
        """Post-order traversal of the term tree."""
        for child in self.children:
            yield from child.walk()
        yield self

    def conjuncts(self):
        """Split a boolean term on top-level ``&&`` into its conjuncts."""
        if self.kind == "&&":
            for child in self.children:
                yield from child.conjuncts()
        else:
            yield self

    @property
    def is_equality(self):
        return self.kind == "=="

    # -- execution ------------------------------------------------------------------

    def executor(self):
        """The vectorized stage function for this single node.

        The returned callable takes one column (Python list) per child —
        or per argument index, for leaf abstractions — and returns the
        output column.  This is the reproduction of the paper's
        template-metaprogramming pipeline stages: the closure is
        specialized once, then applied to whole vectors with no
        per-element dispatch beyond the user's own code.
        """
        if self._executor is None:
            raise LambdaError(
                "lambda term %s has no executor (analysis-only term)"
                % self.kind
            )
        return self._executor

    # -- composition: higher-order functions -------------------------------------------

    def _binary(self, other, kind, fn):
        other = as_lambda(other)
        return LambdaTerm(
            kind,
            children=[self, other],
            info={"type": _BINARY_INFO_TYPE.get(kind, "binaryOp"), "op": kind},
            executor=_vectorize2(fn),
        )

    def __eq__(self, other):  # noqa: A003 - the paper's == composition
        return self._binary(other, "==", lambda a, b: a == b)

    def __ne__(self, other):
        return self._binary(other, "!=", lambda a, b: a != b)

    def __lt__(self, other):
        return self._binary(other, "<", lambda a, b: a < b)

    def __le__(self, other):
        return self._binary(other, "<=", lambda a, b: a <= b)

    def __gt__(self, other):
        return self._binary(other, ">", lambda a, b: a > b)

    def __ge__(self, other):
        return self._binary(other, ">=", lambda a, b: a >= b)

    def __and__(self, other):
        return self._binary(other, "&&", lambda a, b: bool(a) and bool(b))

    def __or__(self, other):
        return self._binary(other, "||", lambda a, b: bool(a) or bool(b))

    def __invert__(self):
        return LambdaTerm(
            "!",
            children=[self],
            info={"type": "bool_not"},
            executor=_vectorize1(lambda a: not a),
        )

    def __add__(self, other):
        return self._binary(other, "+", lambda a, b: a + b)

    def __sub__(self, other):
        return self._binary(other, "-", lambda a, b: a - b)

    def __mul__(self, other):
        return self._binary(other, "*", lambda a, b: a * b)

    def __truediv__(self, other):
        return self._binary(other, "/", lambda a, b: a / b)

    __hash__ = object.__hash__  # identity hashing despite __eq__ overload

    def __repr__(self):
        if self.arg_indices:
            src = "args%s" % self.arg_indices
        else:
            src = "%d children" % len(self.children)
        return "<lambda %s (%s) %s>" % (self.kind, src, self.info or "")


_BINARY_INFO_TYPE = {
    "==": "equalityCheck",
    "!=": "comparison",
    "<": "comparison",
    "<=": "comparison",
    ">": "comparison",
    ">=": "comparison",
    "&&": "bool_and",
    "||": "bool_or",
    "+": "arithmetic",
    "-": "arithmetic",
    "*": "arithmetic",
    "/": "arithmetic",
}


def _vectorize1(fn):
    def stage(col):
        return [fn(v) for v in col]

    return stage


def _vectorize2(fn):
    def stage(left, right):
        return [fn(a, b) for a, b in zip(left, right)]

    return stage


def _deref(value):
    """Resolve a Handle into its facade; pass other values through."""
    deref = getattr(value, "deref", None)
    if deref is not None:
        return deref()
    return value


# ---------------------------------------------------------------------------
# Lambda abstraction families
# ---------------------------------------------------------------------------

def lambda_from_member(arg, attr_name):
    """``makeLambdaFromMember``: read a member of the pointed-to object."""
    if not isinstance(arg, Arg):
        raise LambdaError("lambda_from_member expects an Arg placeholder")

    def stage(col):
        return [getattr(_deref(v), attr_name) for v in col]

    return LambdaTerm(
        "attAccess",
        arg_indices=[arg.index],
        info={"type": "attAccess", "attName": attr_name},
        executor=stage,
    )


def lambda_from_method(arg, method_name, *call_args):
    """``makeLambdaFromMethod``: call a method on the pointed-to object."""
    if not isinstance(arg, Arg):
        raise LambdaError("lambda_from_method expects an Arg placeholder")

    def stage(col):
        return [getattr(_deref(v), method_name)(*call_args) for v in col]

    return LambdaTerm(
        "methodCall",
        arg_indices=[arg.index],
        info={"type": "methodCall", "methodName": method_name},
        executor=stage,
    )


def lambda_from_native(args, fn, kernel=None):
    """``makeLambda``: wrap a native (opaque) host-language function.

    ``fn`` receives one dereferenced object per arg.  PC cannot see inside
    it, so terms built this way are not optimizable — the programmer
    trades optimization for expressiveness, exactly as in the paper.

    ``kernel`` optionally supplies a whole-batch implementation: a
    callable taking one column per arg — a numpy array, or a
    :class:`~repro.memory.columnar.ColumnarRows` batch for object
    columns — and returning one numpy array of results.  A kernelized
    term is eligible for columnar lowering; the kernel MUST be pure
    (no side effects, output a function of the inputs only — the PCSan
    PC003 discipline) and agree with ``fn`` row-for-row, since the
    engine freely switches between the two at fallback boundaries.
    """
    if isinstance(args, Arg):
        args = [args]
    indices = [a.index for a in args]

    if len(indices) == 1:
        def stage(col):
            return [fn(_deref(v)) for v in col]
    else:
        def stage(*cols):
            return [
                fn(*(_deref(v) for v in row)) for row in zip(*cols)
            ]

    info = {"type": "nativeLambda"}
    if kernel is not None:
        info["kernelized"] = "1"
    return LambdaTerm(
        "nativeLambda",
        arg_indices=indices,
        info=info,
        executor=stage,
        kernel=kernel,
    )


def lambda_from_self(arg):
    """``makeLambdaFromSelf``: the identity abstraction."""
    if not isinstance(arg, Arg):
        raise LambdaError("lambda_from_self expects an Arg placeholder")

    def stage(col):
        return list(col)

    return LambdaTerm(
        "self",
        arg_indices=[arg.index],
        info={"type": "self"},
        executor=stage,
    )


def const_lambda(value):
    """A constant term (appears when comparing against literals)."""
    def stage(length_hint):
        # Constant columns are materialized by the engine with an explicit
        # length; this executor is only used through `broadcast`.
        return [value] * length_hint

    term = LambdaTerm(
        "constant",
        info={"type": "constant", "value": value},
        executor=stage,
    )
    return term


def as_lambda(value):
    """Coerce ``value`` into a LambdaTerm (constants are wrapped)."""
    if isinstance(value, LambdaTerm):
        return value
    return const_lambda(value)
