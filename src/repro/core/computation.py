"""The Computation classes: PC's high-level, declarative building blocks.

A PC program is a graph of :class:`Computation` objects (Section 4).  Each
class is customized not with row functions but with *lambda term
construction functions* returning terms from :mod:`repro.core.lambdas`;
the TCAP compiler calls those functions once per computation (not once per
datum!) and compiles the resulting terms into TCAP.

The toolkit mirrors the paper: ``SelectionComp``, ``MultiSelectionComp``,
``JoinComp`` (arbitrary arity and predicate), ``AggregateComp``, plus the
``ObjectReader`` / ``Writer`` endpoints binding the graph to stored sets.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.errors import PCError
from repro.core.lambdas import Arg

_kind_counters = defaultdict(itertools.count)


class Computation:
    """One node of a computation graph."""

    #: Short name prefix used for the TCAP computation label; mirrors the
    #: paper's ``Sel_43`` / ``Join_2212`` style identifiers.
    kind = "Comp"

    #: Number of inputs the computation consumes.
    arity = 1

    def __init__(self):
        self.inputs = [None] * self.arity
        self.name = "%s_%d" % (self.kind, next(_kind_counters[self.kind]))

    def set_input(self, index_or_comp, comp=None):
        """Wire an upstream computation into input slot ``index``.

        Accepts either ``set_input(comp)`` for unary computations or
        ``set_input(index, comp)``.
        """
        if comp is None:
            index, comp = 0, index_or_comp
        else:
            index = index_or_comp
        if not 0 <= index < self.arity:
            raise PCError(
                "%s has %d inputs; %d is out of range"
                % (self.name, self.arity, index)
            )
        self.inputs[index] = comp
        return self

    def upstream(self):
        """The wired input computations (raises on unwired slots)."""
        for index, comp in enumerate(self.inputs):
            if comp is None:
                raise PCError(
                    "input %d of %s is not wired" % (index, self.name)
                )
        return list(self.inputs)

    def args(self):
        """Arg placeholders handed to the lambda construction functions."""
        return [Arg(i) for i in range(self.arity)]

    def execute(self, cluster, **kwargs):
        """Run the graph this computation terminates, on ``cluster``.

        The fluent client entry point::

            Writer("db", "out").set_input(agg).execute(cluster)

        Keyword arguments pass through to
        ``PCCluster.execute_computations`` (``optimized``, ``job_name``,
        ``build_side_overrides``); returns the scheduler's job log.
        """
        return cluster.execute_computations(self, **kwargs)

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.name)


def computation_graph(sinks):
    """Topologically ordered list of all computations feeding ``sinks``."""
    if isinstance(sinks, Computation):
        sinks = [sinks]
    order = []
    seen = set()

    def visit(comp):
        if id(comp) in seen:
            return
        seen.add(id(comp))
        for upstream in comp.inputs:
            if upstream is not None:
                visit(upstream)
        order.append(comp)

    for sink in sinks:
        visit(sink)
    return order


class ObjectReader(Computation):
    """Scans a stored set (the graph's source)."""

    kind = "Scan"
    arity = 0

    def __init__(self, database, set_name):
        super().__init__()
        self.database = database
        self.set_name = set_name


class Writer(Computation):
    """Writes its input to a stored set (the graph's sink)."""

    kind = "Write"
    arity = 1

    def __init__(self, database, set_name):
        super().__init__()
        self.database = database
        self.set_name = set_name


class SelectionComp(Computation):
    """Relational selection + projection over one input set.

    Subclasses override :meth:`get_selection` (a boolean lambda term) and
    :meth:`get_projection` (the output lambda term).
    """

    kind = "Sel"
    arity = 1

    def get_selection(self, arg):
        """Boolean lambda term; default keeps everything."""
        from repro.core.lambdas import const_lambda

        return const_lambda(True)

    def get_projection(self, arg):
        """Output lambda term; default is the identity."""
        from repro.core.lambdas import lambda_from_self

        return lambda_from_self(arg)


class MultiSelectionComp(Computation):
    """Selection with a set-valued projection (a relational flat-map)."""

    kind = "MultiSel"
    arity = 1

    def get_selection(self, arg):
        from repro.core.lambdas import const_lambda

        return const_lambda(True)

    def get_projection(self, arg):
        """Lambda term producing a *sequence* of outputs per input."""
        raise NotImplementedError


class JoinComp(Computation):
    """A join of arbitrary arity and arbitrary predicate.

    The programmer overrides :meth:`get_selection` to describe *when* a
    combination of inputs joins and :meth:`get_projection` to describe the
    output — and, crucially, does **not** pick join orders or algorithms;
    PC analyzes the lambda term and decides (Section 4).
    """

    kind = "Join"

    def __init__(self, arity=2):
        self.arity = arity
        super().__init__()

    def get_selection(self, *args):
        raise NotImplementedError

    def get_projection(self, *args):
        raise NotImplementedError


class AggregateComp(Computation):
    """Grouped aggregation.

    Mirrors the C++ ``AggregateComp <Out, Key, Value, In>``: subclasses
    provide lambda terms extracting a key and a value from each input
    object, descriptors for both (so results can live in PC ``Map``s on
    shuffle pages), and a ``combine`` merging two values.
    """

    kind = "Agg"
    arity = 1

    #: PCType descriptors for the key and value stored in shuffle Maps.
    key_type = None
    value_type = None

    #: Declarative reduction kind.  ``combine`` stays the executable
    #: truth; setting ``reduce = "sum"`` *additionally* promises that
    #: combine is plain addition over fixed-stride values, which lets the
    #: columnar optimizer lower the aggregation onto grouped array sums.
    reduce = None

    def get_key_projection(self, arg):
        raise NotImplementedError

    def get_value_projection(self, arg):
        raise NotImplementedError

    def combine(self, a, b):
        """Merge two values for the same key; defaults to ``+``."""
        return a + b

    def decode_value(self, stored):
        """Convert a value read back from a PC Map into combinable form.

        Primitive values round-trip unchanged; computations whose value
        type is a composite or vector override this to rebuild the Python
        form that :meth:`combine` works on.
        """
        return stored

    def decode_key(self, stored):
        """Convert a key read back from a PC Map (default: unchanged)."""
        return stored
