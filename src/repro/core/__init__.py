"""The PC user-facing API: lambda calculus and Computation classes."""

from repro.core.computation import (
    AggregateComp,
    Computation,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    SelectionComp,
    Writer,
    computation_graph,
)
from repro.core.lambdas import (
    Arg,
    LambdaTerm,
    as_lambda,
    const_lambda,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
    lambda_from_self,
)

__all__ = [
    "AggregateComp",
    "Arg",
    "Computation",
    "JoinComp",
    "LambdaTerm",
    "MultiSelectionComp",
    "ObjectReader",
    "SelectionComp",
    "Writer",
    "as_lambda",
    "computation_graph",
    "const_lambda",
    "lambda_from_member",
    "lambda_from_method",
    "lambda_from_native",
    "lambda_from_self",
]
