"""Declarative column schemas: the one way to opt a set into columnar layout.

A :class:`Schema` names the fixed-stride columns of a set and is passed to
``cluster.create_set(..., layout="columnar", schema=...)``.  It is the
client-facing contract behind :class:`repro.memory.columnar.ColumnarPage`:
every column is a primitive (fixed-width) PC type, so a page can store the
set struct-of-arrays style and expose each column as a zero-copy numpy
view.

Schemas can be written out explicitly::

    from repro.schema import Schema, f64, i32

    schema = Schema([("x", f64), ("y", f64), ("flag", i32)])

or derived from a registered :class:`~repro.memory.objects.PCObject`
subclass whose fields are all primitives::

    schema = Schema.from_class(TaxiRide)

Schemas serialize to plain dicts (:meth:`Schema.to_dict` /
:meth:`Schema.from_dict`) so the catalog can journal them and workers can
reconstruct them without shipping descriptor objects.
"""

from __future__ import annotations

from repro.errors import TypeRegistrationError
from repro.memory.types import (
    NUMPY_DTYPES,
    Float32,
    Float64,
    Int8,
    Int16,
    Int32,
    Int64,
    UInt32,
    UInt64,
    primitive_by_name,
)

#: Short dtype aliases for schema declarations (numpy-flavoured names).
f32 = Float32
f64 = Float64
i8 = Int8
i16 = Int16
i32 = Int32
i64 = Int64
u32 = UInt32
u64 = UInt64

_ALIASES = {
    "f4": Float32, "f8": Float64,
    "i1": Int8, "i2": Int16, "i4": Int32, "i8": Int64,
    "u4": UInt32, "u8": UInt64,
}


def _as_primitive(spec):
    """Normalize a column type spec into a primitive descriptor."""
    if isinstance(spec, str):
        if spec in _ALIASES:
            return _ALIASES[spec]
        return primitive_by_name(spec)
    name = getattr(spec, "name", None)
    if name in NUMPY_DTYPES:
        return spec
    raise TypeRegistrationError(
        "columnar schemas require fixed-stride numeric columns; "
        "%r is not one" % (spec,)
    )


class Schema:
    """An ordered list of ``(name, primitive type)`` columns."""

    __slots__ = ("fields",)

    def __init__(self, fields):
        seen = set()
        normalized = []
        for name, spec in fields:
            if name in seen:
                raise TypeRegistrationError(
                    "duplicate column %r in schema" % (name,)
                )
            seen.add(name)
            normalized.append((name, _as_primitive(spec)))
        if not normalized:
            raise TypeRegistrationError("a schema needs at least one column")
        self.fields = tuple(normalized)

    # -- derivation ---------------------------------------------------------

    @classmethod
    def from_class(cls, pc_class):
        """Derive a schema from a PCObject subclass of all-primitive fields.

        Returns None when any field is not fixed-stride numeric (such a
        class cannot be laid out columnar and must stay on the row path).
        """
        accessors = getattr(pc_class, "pc_accessors", None)
        if not accessors:
            return None
        fields = []
        for accessor in accessors:
            if NUMPY_DTYPES.get(accessor.pc_type.name) is None:
                return None
            fields.append((accessor.name, accessor.pc_type))
        return cls(fields)

    # -- introspection ------------------------------------------------------

    def names(self):
        """Column names in declaration order."""
        return [name for name, _t in self.fields]

    def dtype_of(self, name):
        """The numpy dtype string of column ``name``."""
        for field_name, descriptor in self.fields:
            if field_name == name:
                return NUMPY_DTYPES[descriptor.name]
        raise KeyError(name)

    @property
    def row_stride(self):
        """Bytes one row occupies across all columns."""
        return sum(descriptor.slot_size for _n, descriptor in self.fields)

    def __len__(self):
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other):
        if not isinstance(other, Schema):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(tuple((n, t.name) for n, t in self.fields))

    # -- wire format --------------------------------------------------------

    def to_dict(self):
        """A plain-dict form suitable for the catalog journal."""
        return {"columns": [[n, t.name] for n, t in self.fields]}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a schema journaled by :meth:`to_dict` (or None)."""
        if not data:
            return None
        return cls([
            (name, primitive_by_name(type_name))
            for name, type_name in data["columns"]
        ])

    def __repr__(self):
        return "Schema([%s])" % ", ".join(
            "(%r, %s)" % (n, t.name) for n, t in self.fields
        )
