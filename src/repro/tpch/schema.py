"""The denormalized TPC-H object schema (Section 8.4.1).

Rather than flat relations, the data is a forest of heavily nested
objects: a ``Customer`` owns its ``Order``s, each order owns its
``LineItem``s, and each line item references the ``Part`` and
``Supplier`` it sold.  On PC, one whole customer tree is allocated on a
single page, so pages move with all their nesting intact; the baseline
uses structurally identical plain-Python objects that must be pickled
across every boundary.

(The paper nests Part/Supplier *inline* inside LineItem; the PC binding
here uses same-page handles, which is representationally equivalent for
the computations and preserves single-page locality.)
"""

from __future__ import annotations

from repro.memory import Int32, PCObject, String, VectorType
from repro.memory.builtins import AnyObject


class Part(PCObject):
    fields = [
        ("part_id", Int32),
        ("name", String),
        ("mfgr", String),
        ("brand", String),
        ("part_type", String),
        ("size", Int32),
        ("container", String),
        ("retail_price", Int32),
    ]


class Supplier(PCObject):
    fields = [
        ("supp_id", Int32),
        ("name", String),
        ("address", String),
        ("nation", String),
        ("phone", String),
        ("acct_bal", Int32),
    ]


class LineItem(PCObject):
    fields = [
        ("order_key", Int32),
        ("line_number", Int32),
        ("supplier", Supplier),
        ("part", Part),
        ("quantity", Int32),
        ("extended_price", Int32),
        ("discount", Int32),
        ("tax", Int32),
        ("ship_mode", String),
    ]


class Order(PCObject):
    fields = [
        ("order_key", Int32),
        ("cust_key", Int32),
        ("order_status", String),
        ("total_price", Int32),
        ("order_date", String),
        ("priority", String),
        ("clerk", String),
        ("line_items", VectorType(AnyObject)),
    ]


class Customer(PCObject):
    fields = [
        ("cust_key", Int32),
        ("name", String),
        ("address", String),
        ("nation", String),
        ("phone", String),
        ("acct_bal", Int32),
        ("market_segment", String),
        ("orders", VectorType(AnyObject)),
    ]

    def part_ids(self):
        """Unique part ids across every order (used by top-k Jaccard)."""
        parts = set()
        for order in self.orders:
            for item in order.deref().line_items:
                parts.add(item.deref().part.part_id)
        return parts

    def supplier_parts(self):
        """Map supplier name -> part ids this customer bought from them."""
        out = {}
        for order in self.orders:
            for item in order.deref().line_items:
                view = item.deref()
                out.setdefault(view.supplier.name, []).append(
                    view.part.part_id
                )
        return out


# -- baseline mirror classes ---------------------------------------------------

class PyPart:
    __slots__ = ("part_id", "name", "mfgr", "brand", "part_type", "size",
                 "container", "retail_price")

    def __init__(self, **kwargs):
        for name, value in kwargs.items():
            setattr(self, name, value)


class PySupplier:
    __slots__ = ("supp_id", "name", "address", "nation", "phone", "acct_bal")

    def __init__(self, **kwargs):
        for name, value in kwargs.items():
            setattr(self, name, value)


class PyLineItem:
    __slots__ = ("order_key", "line_number", "supplier", "part", "quantity",
                 "extended_price", "discount", "tax", "ship_mode")

    def __init__(self, **kwargs):
        for name, value in kwargs.items():
            setattr(self, name, value)


class PyOrder:
    __slots__ = ("order_key", "cust_key", "order_status", "total_price",
                 "order_date", "priority", "clerk", "line_items")

    def __init__(self, **kwargs):
        for name, value in kwargs.items():
            setattr(self, name, value)


class PyCustomer:
    __slots__ = ("cust_key", "name", "address", "nation", "phone",
                 "acct_bal", "market_segment", "orders")

    def __init__(self, **kwargs):
        for name, value in kwargs.items():
            setattr(self, name, value)

    def part_ids(self):
        parts = set()
        for order in self.orders:
            for item in order.line_items:
                parts.add(item.part.part_id)
        return parts

    def supplier_parts(self):
        out = {}
        for order in self.orders:
            for item in order.line_items:
                out.setdefault(item.supplier.name, []).append(
                    item.part.part_id
                )
        return out
