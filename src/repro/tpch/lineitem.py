"""TPC-H lineitem scans (Q1/Q6 style) over a columnar stored set.

The Section 8.4 computations in :mod:`repro.tpch.queries` exercise the
row path's nested objects; this module adds the flat, fixed-stride side
of TPC-H — the ``lineitem`` hot-loop scans behind Q1 and Q6 — as the
columnar layout's showcase workload:

* **Q6-style revenue**: ``sum(extendedprice * discount)`` over a
  shipdate / discount / quantity predicate — one filter plus one
  grouped (single-group) sum, both columnar-lowered;
* **Q1-lite**: per ``returnflag`` sums of quantity and extendedprice —
  grouped ``reduce = "sum"`` aggregations keyed by a numeric flag.

Generated values are dyadic rationals (quantities are whole numbers,
prices quarters, discounts 64ths), so the array kernels' batch-order
float accumulation is exact and the parity suite can demand
byte-identical results against the object path.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AggregateComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
    lambda_from_self,
)
from repro.memory import Float64, Int64
from repro.schema import Schema, f64, i64

#: One row per order line; every column fixed-stride numeric.
LINEITEM_SCHEMA = Schema([
    ("quantity", f64),
    ("extendedprice", f64),
    ("discount", f64),
    ("shipdate", i64),      # days since epoch-of-benchmark
    ("returnflag", i64),    # 0=A, 1=N, 2=R
])


def generate_lineitems(n, seed=0):
    """``n`` deterministic rows as a dict of numpy columns."""
    rng = np.random.default_rng(seed)
    return {
        "quantity": rng.integers(1, 51, size=n).astype(np.float64),
        "extendedprice": rng.integers(400, 40000, size=n) / 4.0,
        "discount": rng.integers(0, 8, size=n) / 64.0,
        "shipdate": rng.integers(0, 2556, size=n),
        "returnflag": rng.integers(0, 3, size=n),
    }


def load_lineitems(cluster, n, database="tpch", set_name="lineitem",
                   seed=0, page_size=None, replication=1):
    """Create the columnar lineitem set and load ``n`` generated rows."""
    cluster.create_database(database)
    cluster.create_set(database, set_name, schema=LINEITEM_SCHEMA,
                       page_size=page_size, replication=replication)
    columns = generate_lineitems(n, seed=seed)
    with cluster.loader(database, set_name) as load:
        load.append_columns(**columns)
    return columns


class Q6Selection(SelectionComp):
    """The Q6 predicate; projects the surviving rows unchanged."""

    def __init__(self, date_lo=365, date_hi=730, disc_lo=1 / 64.0,
                 disc_hi=5 / 64.0, max_qty=24.0):
        super().__init__()
        self.date_lo = date_lo
        self.date_hi = date_hi
        self.disc_lo = disc_lo
        self.disc_hi = disc_hi
        self.max_qty = max_qty

    def get_selection(self, arg):
        shipdate = lambda_from_member(arg, "shipdate")
        discount = lambda_from_member(arg, "discount")
        quantity = lambda_from_member(arg, "quantity")
        return (
            (shipdate >= self.date_lo) & (shipdate < self.date_hi)
            & (discount >= self.disc_lo) & (discount <= self.disc_hi)
            & (quantity < self.max_qty)
        )

    def get_projection(self, arg):
        return lambda_from_self(arg)


class Q6Revenue(AggregateComp):
    """``sum(extendedprice * discount)`` into a single group."""

    key_type = Int64
    value_type = Float64
    reduce = "sum"

    def get_key_projection(self, arg):
        return lambda_from_native(
            [arg], lambda row: 0,
            kernel=lambda rows: np.zeros(len(rows), dtype=np.int64),
        )

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "extendedprice") * \
            lambda_from_member(arg, "discount")


class Q1Sum(AggregateComp):
    """Per-returnflag sum of one measure column (Q1's hot loop)."""

    key_type = Int64
    value_type = Float64
    reduce = "sum"

    def __init__(self, measure):
        super().__init__()
        self.measure = measure

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "returnflag")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, self.measure)


def q6_revenue(cluster, database="tpch", set_name="lineitem",
               columnar=None, **predicate):
    """Run the Q6-style scan; returns the summed revenue (a float)."""
    reader = ObjectReader(database, set_name)
    selected = Q6Selection(**predicate).set_input(reader)
    agg = Q6Revenue().set_input(selected)
    out_set = "q6_tmp"
    if (database, out_set) in cluster.storage_manager:
        cluster.clear_set(database, out_set)
    writer = Writer(database, out_set).set_input(agg)
    cluster.execute_computations(writer, columnar=columnar)
    merged = cluster.read(database, out_set, as_pairs=True, comp=agg)
    return merged.get(0, 0.0)


def q1_sums(cluster, measure, database="tpch", set_name="lineitem",
            columnar=None):
    """Per-returnflag sums of ``measure``; returns {flag: sum}."""
    reader = ObjectReader(database, set_name)
    agg = Q1Sum(measure).set_input(reader)
    out_set = "q1_tmp"
    if (database, out_set) in cluster.storage_manager:
        cluster.clear_set(database, out_set)
    writer = Writer(database, out_set).set_input(agg)
    cluster.execute_computations(writer, columnar=columnar)
    return cluster.read(database, out_set, as_pairs=True, comp=agg)


def reference_q6(columns, date_lo=365, date_hi=730, disc_lo=1 / 64.0,
                 disc_hi=5 / 64.0, max_qty=24.0):
    """Driver-side Q6 oracle over the generated columns."""
    keep = (
        (columns["shipdate"] >= date_lo) & (columns["shipdate"] < date_hi)
        & (columns["discount"] >= disc_lo)
        & (columns["discount"] <= disc_hi)
        & (columns["quantity"] < max_qty)
    )
    return float(
        (columns["extendedprice"][keep] * columns["discount"][keep]).sum()
    )


def reference_q1(columns, measure):
    """Driver-side Q1 oracle: {returnflag: sum(measure)}."""
    out = {}
    for flag in np.unique(columns["returnflag"]).tolist():
        keep = columns["returnflag"] == flag
        out[flag] = float(columns[measure][keep].sum())
    return out
