"""Denormalized TPC-H workloads (Section 8.4)."""

from repro.tpch.generator import (
    TpchSpec,
    load_pc_customers,
    python_customers,
)
from repro.tpch.queries import (
    CustomerMultiSelection,
    CustomerSupplierPartGroupBy,
    TopJaccard,
    customers_per_supplier_baseline,
    customers_per_supplier_pc,
    jaccard,
    reference_customers_per_supplier,
    reference_top_k,
    top_k_jaccard_baseline,
    top_k_jaccard_pc,
)
from repro.tpch.schema import (
    Customer,
    LineItem,
    Order,
    Part,
    PyCustomer,
    Supplier,
)

__all__ = [
    "Customer",
    "CustomerMultiSelection",
    "CustomerSupplierPartGroupBy",
    "LineItem",
    "Order",
    "Part",
    "PyCustomer",
    "Supplier",
    "TopJaccard",
    "TpchSpec",
    "customers_per_supplier_baseline",
    "customers_per_supplier_pc",
    "jaccard",
    "load_pc_customers",
    "python_customers",
    "reference_customers_per_supplier",
    "reference_top_k",
    "top_k_jaccard_baseline",
    "top_k_jaccard_pc",
]
