"""A deterministic synthetic TPC-H dbgen (the Section 8.4 substrate).

The paper denormalizes the official TPC-H data; the reproduction
generates structurally identical data directly in denormalized form:
every customer owns 1-3 orders of 1-4 line items, each referencing one
of ``n_parts`` parts and ``n_suppliers`` suppliers.  The same seeded
stream drives both the PC loader (whole customer trees allocated on one
page) and the baseline's plain-Python mirror objects, so the two engines
compute over identical data.
"""

from __future__ import annotations

import numpy as np

from repro.memory import make_object
from repro.tpch.schema import (
    Customer,
    LineItem,
    Order,
    Part,
    PyCustomer,
    PyLineItem,
    PyOrder,
    PyPart,
    PySupplier,
    Supplier,
)

_SEGMENTS = ("BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE")
_NATIONS = ("FRANCE", "GERMANY", "JAPAN", "BRAZIL", "KENYA", "PERU")
_MODES = ("AIR", "RAIL", "SHIP", "TRUCK")


class TpchSpec:
    """Shape parameters for one synthetic TPC-H instance."""

    def __init__(self, n_customers, n_parts=200, n_suppliers=25, seed=0):
        self.n_customers = n_customers
        self.n_parts = n_parts
        self.n_suppliers = n_suppliers
        self.seed = seed


def _customer_records(spec):
    """Yield one plain-dict record tree per customer (engine-neutral)."""
    rng = np.random.default_rng(spec.seed)
    order_key = 0
    for cust_key in range(spec.n_customers):
        orders = []
        for _o in range(int(rng.integers(1, 4))):
            items = []
            for line_number in range(int(rng.integers(1, 5))):
                part_id = int(rng.integers(0, spec.n_parts))
                supp_id = int(rng.integers(0, spec.n_suppliers))
                items.append({
                    "order_key": order_key,
                    "line_number": line_number,
                    "part": {
                        "part_id": part_id,
                        "name": "part#%d" % part_id,
                        "mfgr": "mfgr#%d" % (part_id % 5),
                        "brand": "brand#%d" % (part_id % 25),
                        "part_type": "type#%d" % (part_id % 12),
                        "size": part_id % 50,
                        "container": "box",
                        "retail_price": 900 + part_id,
                    },
                    "supplier": {
                        "supp_id": supp_id,
                        "name": "supplier#%d" % supp_id,
                        "address": "addr#%d" % supp_id,
                        "nation": _NATIONS[supp_id % len(_NATIONS)],
                        "phone": "555-%04d" % supp_id,
                        "acct_bal": 1000 + supp_id,
                    },
                    "quantity": int(rng.integers(1, 50)),
                    "extended_price": int(rng.integers(100, 10000)),
                    "discount": int(rng.integers(0, 10)),
                    "tax": int(rng.integers(0, 8)),
                    "ship_mode": _MODES[int(rng.integers(0, len(_MODES)))],
                })
            orders.append({
                "order_key": order_key,
                "cust_key": cust_key,
                "order_status": "O",
                "total_price": sum(i["extended_price"] for i in items),
                "order_date": "1996-01-%02d" % (1 + order_key % 28),
                "priority": "1-URGENT",
                "clerk": "clerk#%d" % (order_key % 100),
                "line_items": items,
            })
            order_key += 1
        yield {
            "cust_key": cust_key,
            "name": "customer#%d" % cust_key,
            "address": "caddr#%d" % cust_key,
            "nation": _NATIONS[cust_key % len(_NATIONS)],
            "phone": "444-%04d" % cust_key,
            "acct_bal": int(rng.integers(-100, 5000)),
            "market_segment": _SEGMENTS[cust_key % len(_SEGMENTS)],
            "orders": orders,
        }


def load_pc_customers(cluster, spec, database="tpch", set_name="customers",
                      replication=1):
    """Generate and load whole Customer trees into a PC cluster."""
    for cls in (Part, Supplier, LineItem, Order, Customer):
        cluster.register_type(cls)
    cluster.create_database(database)
    cluster.create_set(database, set_name, Customer, replication=replication)
    count = 0
    with cluster.loader(database, set_name) as load:
        for record in _customer_records(spec):
            load.append_built(
                lambda block, _r=record: _build_customer(_r)
            )
            count += 1
    return count


def _build_customer(record):
    """Allocate one nested Customer tree on the active page."""
    order_handles = []
    for order in record["orders"]:
        item_handles = []
        for item in order["line_items"]:
            part = make_object(Part, **item["part"])
            supplier = make_object(Supplier, **item["supplier"])
            line_item = make_object(
                LineItem,
                order_key=item["order_key"],
                line_number=item["line_number"],
                supplier=supplier,
                part=part,
                quantity=item["quantity"],
                extended_price=item["extended_price"],
                discount=item["discount"],
                tax=item["tax"],
                ship_mode=item["ship_mode"],
            )
            part.release()
            supplier.release()
            item_handles.append(line_item)
        order_handle = make_object(
            Order,
            **{k: v for k, v in order.items() if k != "line_items"},
        )
        items_vector = order_handle.deref().line_items
        if items_vector is None:
            order_handle.deref().line_items = []
            items_vector = order_handle.deref().line_items
        for handle in item_handles:
            items_vector.append(handle)
            handle.release()
        order_handles.append(order_handle)
    customer = make_object(
        Customer, **{k: v for k, v in record.items() if k != "orders"}
    )
    customer.deref().orders = []
    orders_vector = customer.deref().orders
    for handle in order_handles:
        orders_vector.append(handle)
        handle.release()
    return customer


def python_customers(spec):
    """The baseline's plain-Python mirror of the same data."""
    out = []
    for record in _customer_records(spec):
        orders = []
        for order in record["orders"]:
            items = [
                PyLineItem(
                    part=PyPart(**item["part"]),
                    supplier=PySupplier(**item["supplier"]),
                    **{k: v for k, v in item.items()
                       if k not in ("part", "supplier")},
                )
                for item in order["line_items"]
            ]
            orders.append(PyOrder(
                line_items=items,
                **{k: v for k, v in order.items() if k != "line_items"},
            ))
        out.append(PyCustomer(
            orders=orders,
            **{k: v for k, v in record.items() if k != "orders"},
        ))
    return out
