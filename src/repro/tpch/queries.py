"""The two Section 8.4 computations, on PC and on the baseline.

1. **Customers per supplier** — for each supplier, the map from customer
   name to the list of part ids that supplier sold them.  On PC this is
   a ``MultiSelectionComp`` (customer -> per-supplier SupplierInfo
   fragments) feeding an ``AggregateComp`` grouping by supplier name,
   whose value is itself a PC ``Map<String, Vector<int>>`` — the nested
   structure the paper profiles its String handling on.

2. **Top-k closest customer part sets** — Jaccard similarity between each
   customer's unique part set and a query part list, keeping the k best.
   On PC this is the ``TopJaccard`` aggregation; the top-k lists merge
   pairwise in the combine step so at most k candidates ever leave a
   worker.
"""

from __future__ import annotations

from repro.core import (
    AggregateComp,
    MultiSelectionComp,
    ObjectReader,
    Writer,
    lambda_from_native,
)
from repro.memory import Int32, MapType, String, VectorType


def jaccard(parts, query_set):
    """Jaccard similarity between a part set and the query set."""
    if not parts and not query_set:
        return 1.0
    union = len(parts | query_set)
    if union == 0:
        return 0.0
    return len(parts & query_set) / union


# ---------------------------------------------------------------------------
# Customers per supplier
# ---------------------------------------------------------------------------

class CustomerMultiSelection(MultiSelectionComp):
    """Customer -> (supplier name, {customer name: [part ids]}) pieces."""

    def get_projection(self, arg):
        def explode(customer):
            name = customer.name
            return [
                (supplier_name, {name: part_ids})
                for supplier_name, part_ids
                in customer.supplier_parts().items()
            ]

        return lambda_from_native([arg], explode)


class CustomerSupplierPartGroupBy(AggregateComp):
    """Group SupplierInfo pieces by supplier name.

    The value is a nested PC ``Map <String, Vector<int>>`` exactly as in
    the paper, so shuffle pages carry real nested maps.
    """

    key_type = String
    value_type = MapType(String, VectorType(Int32))

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[1])

    def combine(self, a, b):
        merged = dict(a)
        for customer, parts in b.items():
            if customer in merged:
                merged[customer] = list(merged[customer]) + list(parts)
            else:
                merged[customer] = parts
        return merged

    def decode_value(self, stored):
        if isinstance(stored, dict):
            return stored
        return {
            customer: list(parts) for customer, parts in stored.items()
        }


def customers_per_supplier_pc(cluster, database="tpch",
                              set_name="customers"):
    """Run the computation on PC; returns {supplier: {customer: [pids]}}.

    Like the paper, finishes with a count over each supplier's customer
    map (Spark's laziness forced the same action there).
    """
    reader = ObjectReader(database, set_name)
    multi = CustomerMultiSelection().set_input(reader)
    agg = CustomerSupplierPartGroupBy().set_input(multi)
    out_set = "supplier_info_tmp"
    if (database, out_set) in cluster.storage_manager:
        cluster.clear_set(database, out_set)
    writer = Writer(database, out_set).set_input(agg)
    cluster.execute_computations(writer)
    result = cluster.read(database, out_set, as_pairs=True, comp=agg)
    total_customers = sum(len(v) for v in result.values())
    return result, total_customers


def customers_per_supplier_baseline(customers_rdd):
    """The algorithmically equivalent baseline implementation."""
    pieces = customers_rdd.flat_map(
        lambda customer: [
            (supplier_name, {customer.name: part_ids})
            for supplier_name, part_ids
            in customer.supplier_parts().items()
        ]
    )

    def merge(a, b):
        merged = dict(a)
        for name, parts in b.items():
            if name in merged:
                merged[name] = list(merged[name]) + list(parts)
            else:
                merged[name] = parts
        return merged

    result = dict(pieces.reduce_by_key(merge).collect())
    total_customers = sum(len(v) for v in result.values())
    return result, total_customers


# ---------------------------------------------------------------------------
# Top-k closest customer part sets
# ---------------------------------------------------------------------------

class TopJaccard(AggregateComp):
    """Keep the k customers whose part sets best match the query list.

    Values are bounded candidate lists merged pairwise, so (as the paper
    observes should happen) no more than k customers' data ever leaves a
    machine.  Candidate lists shuffle through the row path — their
    payloads are variable-length (sim, custkey, parts) records.
    """

    key_type = None  # row-path shuffle
    value_type = None

    def __init__(self, k, query_parts):
        super().__init__()
        self.k = k
        self.query_set = frozenset(query_parts)

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda customer: 0)

    def get_value_projection(self, arg):
        query_set = self.query_set
        k = self.k

        def candidate(customer):
            parts = customer.part_ids()
            similarity = jaccard(parts, query_set)
            return [(similarity, customer.cust_key, sorted(parts))][:k]

        return lambda_from_native([arg], candidate)

    def combine(self, a, b):
        merged = sorted(a + b, key=lambda c: (-c[0], c[1]))
        return merged[: self.k]


def top_k_jaccard_pc(cluster, k, query_parts, database="tpch",
                     set_name="customers"):
    """Run top-k Jaccard on PC; returns the k best candidates."""
    reader = ObjectReader(database, set_name)
    top = TopJaccard(k, query_parts).set_input(reader)
    out_set = "topk_tmp"
    if (database, out_set) in cluster.storage_manager:
        cluster.clear_set(database, out_set)
    writer = Writer(database, out_set).set_input(top)
    cluster.execute_computations(writer)
    merged = cluster.read(database, out_set, as_pairs=True)
    candidates = merged.get(0, [])
    return sorted(candidates, key=lambda c: (-c[0], c[1]))[:k]


def top_k_jaccard_baseline(customers_rdd, k, query_parts):
    """The algorithmically equivalent baseline implementation."""
    query_set = frozenset(query_parts)

    def candidate(customer):
        parts = customer.part_ids()
        return (jaccard(parts, query_set), customer.cust_key, sorted(parts))

    return customers_rdd.map(candidate).top(
        k, key=lambda c: (c[0], -c[1])
    )


def reference_customers_per_supplier(customers):
    """Driver-side oracle over plain Python customers (for tests)."""
    result = {}
    for customer in customers:
        for supplier, parts in customer.supplier_parts().items():
            result.setdefault(supplier, {}).setdefault(
                customer.name, []
            ).extend(parts)
    return result


def reference_top_k(customers, k, query_parts):
    """Driver-side top-k oracle (for tests)."""
    query_set = frozenset(query_parts)
    candidates = [
        (jaccard(c.part_ids(), query_set), c.cust_key, sorted(c.part_ids()))
        for c in customers
    ]
    return sorted(candidates, key=lambda c: (-c[0], c[1]))[:k]
