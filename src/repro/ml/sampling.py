"""Random-sampling kernels: the GSL stand-in (Section 8.5.1).

Non-collapsed LDA needs Multinomial and Dirichlet sampling.  Two
multinomial implementations are provided on purpose:

* :func:`multinomial_slow` — a generic per-draw CDF walk in pure Python,
  playing the role of the generic ``breeze`` sampler whose replacement
  was the last Spark tuning step of Table 4;
* :func:`multinomial_fast` — the vectorized "hand-coded" sampler both
  the tuned baseline and the PC implementation use.
"""

from __future__ import annotations

import numpy as np


def multinomial_slow(rng, count, probabilities):
    """Draw ``count`` multinomial samples one CDF walk at a time."""
    k = len(probabilities)
    out = np.zeros(k, dtype=np.int64)
    cdf = []
    acc = 0.0
    for p in probabilities:
        acc += p
        cdf.append(acc)
    total = cdf[-1]
    for _draw in range(count):
        u = rng.random() * total
        for index in range(k):
            if u <= cdf[index]:
                out[index] += 1
                break
        else:
            out[k - 1] += 1
    return out


def multinomial_fast(rng, count, probabilities):
    """Vectorized multinomial draw (numpy's native kernel)."""
    probabilities = np.asarray(probabilities, dtype="f8")
    total = probabilities.sum()
    if total <= 0:
        probabilities = np.full(len(probabilities), 1.0 / len(probabilities))
    else:
        probabilities = probabilities / total
    return rng.multinomial(count, probabilities)


def dirichlet(rng, alphas):
    """Sample from a Dirichlet distribution."""
    alphas = np.asarray(alphas, dtype="f8")
    return rng.dirichlet(np.maximum(alphas, 1e-8))


def log_normalize(log_values):
    """The log-space trick: normalize exp(log_values) without underflow."""
    log_values = np.asarray(log_values, dtype="f8")
    peak = log_values.max()
    shifted = np.exp(log_values - peak)
    return shifted / shifted.sum()
