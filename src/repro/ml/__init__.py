"""ML workloads on PlinyCompute: k-means, GMM, LDA (Section 8.5)."""

from repro.ml.gmm import PCGmm, soft_assign_log_space
from repro.ml.kmeans import PCKMeans, assign_chunk
from repro.ml.lda import PCLda, PhiCol, ThetaRow, Triple
from repro.ml.points import PointsChunk, load_points
from repro.ml.sampling import (
    dirichlet,
    log_normalize,
    multinomial_fast,
    multinomial_slow,
)

__all__ = [
    "PCGmm",
    "PCKMeans",
    "PCLda",
    "PhiCol",
    "PointsChunk",
    "ThetaRow",
    "Triple",
    "assign_chunk",
    "dirichlet",
    "load_points",
    "log_normalize",
    "multinomial_fast",
    "multinomial_slow",
    "soft_assign_log_space",
]
