"""Chunked point storage shared by the PC ML implementations.

Points are stored as :class:`PointsChunk` PC objects — each chunk holds a
contiguous batch of points as a row-major matrix on the page, accessed
through a zero-copy numpy view.  Chunking is how a capable PC programmer
lays out dense numeric data (it is the MatrixBlock pattern of Section
8.3.1 applied to ML inputs); the per-chunk views are this reproduction's
``Eigen::Map``.
"""

from __future__ import annotations

import numpy as np

from repro.memory import Float64, Int32, PCObject, VectorType, make_object


class PointsChunk(PCObject):
    """A batch of ``count`` points with ``dims`` features each."""

    fields = [
        ("start_id", Int32),
        ("count", Int32),
        ("dims", Int32),
        ("data", VectorType(Float64)),
    ]

    def get_points(self):
        """A (count, dims) numpy view aliasing the page bytes."""
        return self.data.as_numpy().reshape(self.count, self.dims)


def load_points(cluster, database, set_name, points, chunk_size=256):
    """Chunk a (n, d) numpy array into PointsChunk objects and load it."""
    points = np.asarray(points, dtype="f8")
    n, d = points.shape
    cluster.register_type(PointsChunk)
    cluster.create_database(database)
    cluster.create_set(database, set_name, PointsChunk)
    with cluster.loader(database, set_name) as load:
        for start in range(0, n, chunk_size):
            chunk = points[start:start + chunk_size]
            load.append_built(
                lambda block, _s=start, _c=chunk: make_object(
                    PointsChunk,
                    start_id=_s,
                    count=_c.shape[0],
                    dims=_c.shape[1],
                    data=_c,
                )
            )
    return n, d
