"""Word-based, non-collapsed Gibbs LDA on PlinyCompute (Section 8.5.1).

The fundamental data objects are (docID, wordID, count) triples; each
iteration runs the join-heavy graph of Figure 2: a three-way ``JoinComp``
matches every triple with its document's topic-probability vector
(theta) and its word's per-topic probability column (phi) — the paper's
many-to-one join — samples topic assignments with the GSL stand-in
multinomial, and two ``AggregateComp``s rebuild the doc-topic and
word-topic count matrices.  New theta/phi are drawn from Dirichlet
posteriors in the main program and loaded for the next iteration.

The graph of one iteration (readers, the join, two multi-selections, two
aggregations, two writers, plus the initialization computations) is what
the Figure 2 benchmark renders.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AggregateComp,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    Writer,
    computation_graph,
    lambda_from_member,
    lambda_from_native,
)
from repro.memory import Float64, Int32, Int64, PCObject, VectorType
from repro.ml.sampling import dirichlet, multinomial_fast


class Triple(PCObject):
    """One (document, word, count) occurrence record."""

    fields = [("doc", Int32), ("word", Int32), ("count", Int32)]


class ThetaRow(PCObject):
    """Per-document topic probabilities."""

    fields = [("doc", Int32), ("probs", VectorType(Float64))]


class PhiCol(PCObject):
    """Per-word, per-topic probabilities (one dictionary column)."""

    fields = [("word", Int32), ("probs", VectorType(Float64))]


class SampleTopics(JoinComp):
    """The three-way join: triples x theta (by doc) x phi (by word)."""

    def __init__(self, n_topics, seed):
        super().__init__(arity=3)
        self.n_topics = n_topics
        self.rng = np.random.default_rng(seed)

    def get_selection(self, triple, theta, phi):
        return (
            lambda_from_member(triple, "doc")
            == lambda_from_member(theta, "doc")
        ) & (
            lambda_from_member(triple, "word")
            == lambda_from_member(phi, "word")
        )

    def get_projection(self, triple, theta, phi):
        rng = self.rng

        def sample(t, th, ph):
            probabilities = th.probs.as_numpy() * ph.probs.as_numpy()
            counts = multinomial_fast(rng, t.count, probabilities)
            return (t.doc, t.word, counts)

        return lambda_from_native([triple, theta, phi], sample)


class DocPairs(MultiSelectionComp):
    """(doc, topic-count-vector) pairs from sampled assignments."""

    def get_projection(self, arg):
        return lambda_from_native(
            [arg], lambda t: [(t[0], t[2].astype("f8"))]
        )


class WordPairs(MultiSelectionComp):
    """(word, topic-count-vector) pairs from sampled assignments."""

    def get_projection(self, arg):
        return lambda_from_native(
            [arg], lambda t: [(t[1], t[2].astype("f8"))]
        )


class CountAggregate(AggregateComp):
    """Sums topic-count vectors per key (doc or word)."""

    key_type = Int64
    value_type = VectorType(Float64)

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[1])

    def combine(self, a, b):
        return a + b

    def decode_value(self, stored):
        if isinstance(stored, np.ndarray):
            return stored
        return np.array(stored.as_numpy())


class PCLda:
    """LDA driver bound to one cluster."""

    def __init__(self, cluster, database="lda", n_topics=10, alpha=0.1,
                 beta=0.1, seed=0):
        self.cluster = cluster
        self.database = database
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta
        self.seed = seed
        self.n_docs = 0
        self.dictionary_size = 0
        self._iteration = 0

    # -- data loading --------------------------------------------------------------

    def load(self, triples, n_docs, dictionary_size):
        """Store the corpus triples and the initial model sets."""
        self.n_docs = n_docs
        self.dictionary_size = dictionary_size
        cluster = self.cluster
        for cls in (Triple, ThetaRow, PhiCol):
            cluster.register_type(cls)
        cluster.create_database(self.database)
        cluster.create_set(self.database, "triples", Triple)
        with cluster.loader(self.database, "triples") as load:
            for doc, word, count in triples:
                load.append(Triple, doc=doc, word=word, count=count)
        rng = np.random.default_rng(self.seed)
        theta = {
            doc: dirichlet(rng, np.ones(self.n_topics))
            for doc in range(n_docs)
        }
        weights = rng.random((self.n_topics, dictionary_size)) + 0.1
        weights /= weights.sum(axis=1, keepdims=True)
        phi = {
            word: weights[:, word].copy() for word in range(dictionary_size)
        }
        self._store_model(theta, phi)
        return self

    def _store_model(self, theta, phi):
        cluster = self.cluster
        for name in ("theta", "phi"):
            if (self.database, name) in cluster.storage_manager:
                cluster.clear_set(self.database, name)
            else:
                cluster.create_set(
                    self.database, name,
                    ThetaRow if name == "theta" else PhiCol,
                )
        with cluster.loader(self.database, "theta") as load:
            for doc, probs in theta.items():
                load.append(ThetaRow, doc=doc, probs=np.asarray(probs))
        with cluster.loader(self.database, "phi") as load:
            for word, probs in phi.items():
                load.append(PhiCol, word=word, probs=np.asarray(probs))

    # -- the per-iteration computation graph --------------------------------------------

    def build_iteration_graph(self, seed=None):
        """The Figure 2 graph for one Gibbs iteration; returns writers."""
        join = SampleTopics(
            self.n_topics, self.seed + 1 + (seed or self._iteration)
        )
        join.set_input(0, ObjectReader(self.database, "triples"))
        join.set_input(1, ObjectReader(self.database, "theta"))
        join.set_input(2, ObjectReader(self.database, "phi"))
        doc_agg = CountAggregate().set_input(DocPairs().set_input(join))
        word_agg = CountAggregate().set_input(WordPairs().set_input(join))
        doc_writer = Writer(self.database, "doc_counts").set_input(doc_agg)
        word_writer = Writer(self.database, "word_counts").set_input(word_agg)
        return [doc_writer, word_writer], doc_agg, word_agg

    def iterate(self):
        """One Gibbs sweep; updates theta/phi sets, returns the state."""
        cluster = self.cluster
        for name in ("doc_counts", "word_counts"):
            if (self.database, name) in cluster.storage_manager:
                cluster.clear_set(self.database, name)
        writers, doc_agg, word_agg = self.build_iteration_graph()
        cluster.execute_computations(writers)
        doc_counts = cluster.read(
            self.database, "doc_counts", as_pairs=True, comp=doc_agg
        )
        word_counts = cluster.read(
            self.database, "word_counts", as_pairs=True, comp=word_agg
        )
        rng = np.random.default_rng(self.seed + 7919 * (self._iteration + 1))
        theta = {
            doc: dirichlet(
                rng, self.alpha + doc_counts.get(doc, np.zeros(self.n_topics))
            )
            for doc in range(self.n_docs)
        }
        matrix = np.zeros((self.n_topics, self.dictionary_size))
        for word, counts in word_counts.items():
            matrix[:, int(word)] = counts
        sampled = np.stack([
            dirichlet(rng, self.beta + matrix[topic])
            for topic in range(self.n_topics)
        ])
        phi = {
            word: sampled[:, word].copy()
            for word in range(self.dictionary_size)
        }
        self._store_model(theta, phi)
        self._iteration += 1
        return theta, phi

    def run(self, iterations):
        """Run several sweeps; returns the final (theta, phi)."""
        state = None
        for _iteration in range(iterations):
            state = self.iterate()
        return state

    def computation_count(self):
        """Number of Computation objects in one full iteration graph.

        The paper's Figure 2 counts fifteen Computations including the
        once-only initialization; the per-iteration core here is readers,
        the three-way join, two multi-selections, two aggregations, and
        two writers, plus the model-store loaders standing in for the
        initialization chain.
        """
        writers, _d, _w = self.build_iteration_graph()
        return len(computation_graph(writers))
