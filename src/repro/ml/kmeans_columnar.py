"""k-means over a columnar point set (the vectorized Section 8.5.1 run).

Where :mod:`repro.ml.kmeans` stores points as chunk *objects* and runs
the Lloyd step through per-chunk native lambdas, this variant stores one
point per row in a ``layout="columnar"`` set (one ``f64`` column per
dimension) and expresses the step so every operator lowers onto the
whole-page array kernels:

* the closest-centroid assignment is a ``lambda_from_native`` whose
  declared kernel stacks the coordinate columns and evaluates all
  centroid distances in one einsum-free broadcast;
* the per-centroid (count, per-dimension sum) reduction becomes
  ``reduce = "sum"`` aggregations over numeric key/value columns, which
  the optimizer lowers to :func:`repro.engine.kernels.aggregate_sum`.

Run with ``execute_computations(..., columnar=False)`` the identical
program executes row-at-a-time on the object path — the parity suite
compares the two on dyadic-rational inputs, where both are exact.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AggregateComp,
    ObjectReader,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.errors import PCError
from repro.memory import Float64, Int64
from repro.schema import Schema, f64


def point_schema(dims):
    """The columnar schema of a ``dims``-dimensional point set."""
    return Schema([("x%d" % j, f64) for j in range(dims)])


def load_columnar_points(cluster, database, set_name, points,
                         page_size=None):
    """Create a columnar point set and bulk-load ``points`` (n x d)."""
    points = np.asarray(points, dtype=np.float64)
    schema = point_schema(points.shape[1])
    cluster.create_database(database)
    cluster.create_set(database, set_name, schema=schema,
                       page_size=page_size)
    with cluster.loader(database, set_name) as load:
        load.append_columns(**{
            "x%d" % j: points[:, j] for j in range(points.shape[1])
        })
    return points.shape


def _assignment_lambda(arg, centers):
    """Closest-centroid index as a kernelized native lambda.

    The per-row function and the whole-batch kernel compute the same
    plain squared distances (no norm-bound shortcut), so on exactly
    representable inputs they agree bit-for-bit, ties (strict argmin)
    included.
    """
    centers = np.asarray(centers, dtype=np.float64)
    dims = centers.shape[1]
    names = ["x%d" % j for j in range(dims)]

    def assign_one(p):
        point = np.array([getattr(p, name) for name in names])
        d2 = ((centers - point) ** 2).sum(axis=1)
        return int(np.argmin(d2))

    def assign_kernel(rows):
        points = np.stack([rows.column(name) for name in names], axis=1)
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1)

    return lambda_from_native([arg], assign_one, kernel=assign_kernel)


class AssignedSum(AggregateComp):
    """Sum one coordinate (or count rows) per closest centroid."""

    key_type = Int64
    value_type = Float64
    reduce = "sum"

    def __init__(self, centers, dim=None):
        super().__init__()
        self.centers = np.asarray(centers, dtype=np.float64)
        #: coordinate index to sum; None sums a constant 1 (the count).
        self.dim = dim

    def get_key_projection(self, arg):
        return _assignment_lambda(arg, self.centers)

    def get_value_projection(self, arg):
        if self.dim is None:
            return lambda_from_native(
                [arg], lambda p: 1.0,
                kernel=lambda rows: np.ones(len(rows)),
            )
        return lambda_from_member(arg, "x%d" % self.dim)


class ColumnarKMeans:
    """k-means driver over a columnar point set."""

    def __init__(self, cluster, database="ml", set_name="points_col"):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.n_points = None
        self.dims = None

    def load(self, points, page_size=None):
        self.n_points, self.dims = load_columnar_points(
            self.cluster, self.database, self.set_name, points,
            page_size=page_size,
        )
        return self

    def initialize(self, k, seed=0):
        """Initial centroids sampled from the stored rows."""
        rng = np.random.default_rng(seed)
        rows = self.cluster.read(self.database, self.set_name)
        if not rows:
            raise PCError("no points loaded")
        if len(rows) < k:
            raise PCError("fewer points than centroids")
        chosen = rng.choice(len(rows), size=k, replace=False)
        return np.array([rows[i].as_tuple() for i in chosen])

    def iterate(self, centers, columnar=None):
        """One Lloyd step: a count plus one sum aggregation per dimension.

        ``columnar`` is forwarded to ``execute_computations`` so the
        parity tests can force the object path on the same program.
        """
        centers = np.asarray(centers, dtype=np.float64)
        totals = {}  # dim (or None for counts) -> {centroid: sum}
        for dim in [None] + list(range(self.dims)):
            agg = AssignedSum(centers, dim=dim).set_input(
                ObjectReader(self.database, self.set_name)
            )
            out_set = "kmeans_part_tmp"
            if (self.database, out_set) in self.cluster.storage_manager:
                self.cluster.clear_set(self.database, out_set)
            writer = Writer(self.database, out_set).set_input(agg)
            self.cluster.execute_computations(writer, columnar=columnar)
            totals[dim] = self.cluster.read(
                self.database, out_set, as_pairs=True, comp=agg
            )
        new_centers = centers.copy()
        for j, count in totals[None].items():
            if count > 0:
                new_centers[int(j)] = [
                    totals[dim].get(j, 0.0) / count
                    for dim in range(self.dims)
                ]
        return new_centers

    def train(self, k, iterations, seed=0, columnar=None):
        centers = self.initialize(k, seed=seed)
        history = []
        for _iteration in range(iterations):
            centers = self.iterate(centers, columnar=columnar)
            history.append(centers.copy())
        return centers, history
