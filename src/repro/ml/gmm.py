"""Gaussian mixture EM on PlinyCompute (Section 8.5.1).

One EM iteration is a single ``AggregateComp`` carrying the current
model, just as the paper describes: the aggregation softly assigns each
point to each Gaussian and accumulates per-component sufficient
statistics; the result is sent back to the main program, the model is
updated there, and the next iteration's AggregateComp carries the new
model.

Difference from the baseline (called out in the paper): this
implementation uses the log-space trick to compute soft assignments
without underflow; mllib uses thresholding.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AggregateComp,
    MultiSelectionComp,
    ObjectReader,
    Writer,
    lambda_from_native,
)
from repro.memory import Float64, Int64, VectorType
from repro.ml.points import load_points


def precompute_precisions(covariances):
    """Invert each covariance once per EM step (main-program side)."""
    precisions = []
    for cov in covariances:
        d = cov.shape[0]
        cov = cov + 1e-9 * np.eye(d)
        inv = np.linalg.inv(cov)
        _sign, logdet = np.linalg.slogdet(cov)
        precisions.append((inv, logdet))
    return precisions


def _log_gaussians(points, weights, means, precisions):
    """Per-component log densities, kept in log space throughout."""
    k, d = means.shape
    log_p = np.empty((points.shape[0], k))
    for j in range(k):
        inv, logdet = precisions[j]
        delta = points - means[j]
        mahalanobis = np.einsum("ij,jk,ik->i", delta, inv, delta)
        log_p[:, j] = (
            np.log(max(weights[j], 1e-300))
            - 0.5 * (mahalanobis + logdet + d * np.log(2 * np.pi))
        )
    return log_p


def soft_assign_log_space(points, weights, means, covariances,
                          precisions=None):
    """Responsibilities via the log-space trick (subtract the row max)."""
    if precisions is None:
        precisions = precompute_precisions(np.asarray(covariances))
    log_p = _log_gaussians(
        points, np.asarray(weights), np.asarray(means), precisions
    )
    log_p -= log_p.max(axis=1, keepdims=True)
    resp = np.exp(log_p)
    resp /= resp.sum(axis=1, keepdims=True)
    return resp


class PartialStats(MultiSelectionComp):
    """Per-chunk sufficient statistics for each Gaussian."""

    def __init__(self, weights, means, covariances):
        super().__init__()
        self.model = (
            np.asarray(weights), np.asarray(means), np.asarray(covariances)
        )
        self.precisions = precompute_precisions(self.model[2])

    def get_projection(self, arg):
        weights, means, covariances = self.model
        precisions = self.precisions
        k, d = means.shape

        def partials(chunk):
            points = chunk.get_points()
            resp = soft_assign_log_space(
                points, weights, means, covariances, precisions=precisions
            )
            out = []
            for j in range(k):
                r = resp[:, j]
                flat = np.concatenate((
                    [float(r.sum())],
                    r @ points,
                    ((points * r[:, None]).T @ points).reshape(-1),
                ))
                out.append((j, flat))
            return out

        return lambda_from_native([arg], partials)


class AccumulateStats(AggregateComp):
    """Sums (weight, mean, covariance) statistics per component."""

    key_type = Int64
    value_type = VectorType(Float64)

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[1])

    def combine(self, a, b):
        return a + b

    def decode_value(self, stored):
        if isinstance(stored, np.ndarray):
            return stored
        return np.array(stored.as_numpy())


class PCGmm:
    """GMM EM driver bound to one cluster and one stored point set."""

    def __init__(self, cluster, database="ml", set_name="gmm_points"):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.dims = None

    def load(self, points, chunk_size=256):
        _n, self.dims = load_points(
            self.cluster, self.database, self.set_name, points,
            chunk_size=chunk_size,
        )
        return self

    def initialize(self, k, seed=0):
        """Random initialization matching the baseline's algorithm."""
        chunks = self.cluster.read(self.database, self.set_name)
        sample = chunks[0].deref().get_points()
        rng = np.random.default_rng(seed)
        chosen = rng.choice(
            sample.shape[0], size=min(k, sample.shape[0]), replace=False
        )
        means = sample[chosen].copy()
        d = sample.shape[1]
        cov = np.cov(sample.T) + 1e-3 * np.eye(d)
        return (
            np.full(k, 1.0 / k),
            means,
            np.array([cov.copy() for _ in range(k)]),
        )

    def iterate(self, weights, means, covariances):
        """One EM step through a model-carrying AggregateComp."""
        k, d = np.asarray(means).shape
        reader = ObjectReader(self.database, self.set_name)
        partials = PartialStats(weights, means, covariances)
        partials.set_input(reader)
        agg = AccumulateStats().set_input(partials)
        out_set = "gmm_stats_tmp"
        if (self.database, out_set) in self.cluster.storage_manager:
            self.cluster.clear_set(self.database, out_set)
        writer = Writer(self.database, out_set).set_input(agg)
        self.cluster.execute_computations(writer)
        merged = self.cluster.read(
            self.database, out_set, as_pairs=True, comp=agg
        )

        total = sum(value[0] for value in merged.values())
        new_weights = np.zeros(k)
        new_means = np.zeros((k, d))
        new_covs = np.zeros((k, d, d))
        for j in range(k):
            flat = merged.get(j)
            if flat is None:
                new_weights[j] = 1e-12
                new_means[j] = means[j]
                new_covs[j] = covariances[j]
                continue
            weight_sum = flat[0]
            mean_sum = flat[1:1 + d]
            cov_sum = flat[1 + d:].reshape(d, d)
            new_weights[j] = weight_sum / total
            new_means[j] = mean_sum / weight_sum
            new_covs[j] = (
                cov_sum / weight_sum
                - np.outer(new_means[j], new_means[j])
                + 1e-6 * np.eye(d)
            )
        return new_weights, new_means, new_covs

    def train(self, k, iterations, seed=0):
        """Full EM run; returns (weights, means, covariances)."""
        weights, means, covariances = self.initialize(k, seed=seed)
        for _iteration in range(iterations):
            weights, means, covariances = self.iterate(
                weights, means, covariances
            )
        return weights, means, covariances
