"""k-means on PlinyCompute (Section 8.5.1, Appendix A).

One Lloyd iteration is a single ``AggregateComp``, exactly as in the
paper's Appendix A example: the computation object carries the current
centroids, each data point contributes an ``Avg``-style (count, sum)
value keyed by its closest centroid, and the aggregation result — read
back from the stored Map set — becomes the next model.

Both this and the baseline implementation use the norm lower-bound trick
``||a-b||_2 >= |(||a||_2 - ||b||_2)|`` to skip distance evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AggregateComp,
    MultiSelectionComp,
    ObjectReader,
    Writer,
    lambda_from_native,
)
from repro.errors import PCError
from repro.memory import Float64, Int64, VectorType
from repro.ml.points import load_points


def assign_chunk(points, centers, center_norms):
    """Closest-centroid assignment for a whole chunk.

    The norm bound is applied vectorized: for each centroid, only the
    points whose lower bound beats their current best distance get an
    exact distance evaluation.
    """
    n = points.shape[0]
    point_norms = np.linalg.norm(points, axis=1)
    best_dist = np.full(n, np.inf)
    best_index = np.zeros(n, dtype=np.int64)
    for j, center in enumerate(centers):
        bound = point_norms - center_norms[j]
        candidates = (bound * bound) < best_dist
        if not candidates.any():
            continue
        delta = points[candidates] - center
        dist = np.einsum("ij,ij->i", delta, delta)
        improved = dist < best_dist[candidates]
        indices = np.flatnonzero(candidates)[improved]
        best_dist[indices] = dist[improved]
        best_index[indices] = j
    return best_index, best_dist


class PartialCentroids(MultiSelectionComp):
    """Per-chunk partial (centroid, count+sum) contributions."""

    def __init__(self, centers):
        super().__init__()
        self.centers = np.asarray(centers)
        self.center_norms = np.linalg.norm(self.centers, axis=1)

    def get_projection(self, arg):
        centers = self.centers
        norms = self.center_norms

        def partials(chunk):
            points = chunk.get_points()
            assignments, _dists = assign_chunk(points, centers, norms)
            out = []
            for j in np.unique(assignments):
                mask = assignments == j
                value = np.concatenate((
                    [float(mask.sum())], points[mask].sum(axis=0)
                ))
                out.append((int(j), value))
            return out

        return lambda_from_native([arg], partials)


class GetNewCentroids(AggregateComp):
    """The Appendix A aggregation: combine (count, sum) per centroid."""

    key_type = Int64
    value_type = VectorType(Float64)

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[1])

    def combine(self, a, b):
        return a + b

    def decode_value(self, stored):
        if isinstance(stored, np.ndarray):
            return stored
        return np.array(stored.as_numpy())


class PCKMeans:
    """k-means driver bound to one cluster and one stored point set."""

    def __init__(self, cluster, database="ml", set_name="points"):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.n_points = None
        self.dims = None

    def load(self, points, chunk_size=256):
        """Chunk and store the input points."""
        self.n_points, self.dims = load_points(
            self.cluster, self.database, self.set_name, points,
            chunk_size=chunk_size,
        )
        return self

    def initialize(self, k, seed=0):
        """Random initial centroids drawn from stored chunks."""
        rng = np.random.default_rng(seed)
        chunks = self.cluster.read(self.database, self.set_name)
        if not chunks:
            raise PCError("no points loaded")
        sample = chunks[0].deref().get_points()
        if sample.shape[0] < k:
            raise PCError("first chunk smaller than k; use larger chunks")
        chosen = rng.choice(sample.shape[0], size=k, replace=False)
        return sample[chosen].copy()

    def iterate(self, centers):
        """One Lloyd step: run the aggregation, read the new centroids."""
        reader = ObjectReader(self.database, self.set_name)
        partials = PartialCentroids(centers).set_input(reader)
        agg = GetNewCentroids().set_input(partials)
        out_set = "centroids_tmp"
        if (self.database, out_set) in self.cluster.storage_manager:
            self.cluster.clear_set(self.database, out_set)
        writer = Writer(self.database, out_set).set_input(agg)
        self.cluster.execute_computations(writer)
        merged = self.cluster.read(
            self.database, out_set, as_pairs=True, comp=agg
        )
        new_centers = np.asarray(centers).copy()
        for j, value in merged.items():
            count, total = value[0], value[1:]
            if count > 0:
                new_centers[j] = total / count
        return new_centers

    def train(self, k, iterations, seed=0):
        """Full run; returns (centers, history)."""
        centers = self.initialize(k, seed=seed)
        history = []
        for _iteration in range(iterations):
            centers = self.iterate(centers)
            history.append(centers.copy())
        return centers, history
