"""Catalog subsystem: cluster metadata and dynamic type distribution."""

from repro.catalog.catalog import (
    CatalogJournal,
    CatalogManager,
    LocalCatalog,
    PageRecord,
    SetMetadata,
    SharedLibrary,
)

__all__ = [
    "CatalogJournal",
    "CatalogManager",
    "LocalCatalog",
    "PageRecord",
    "SetMetadata",
    "SharedLibrary",
]
