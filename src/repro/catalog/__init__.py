"""Catalog subsystem: cluster metadata and dynamic type distribution."""

from repro.catalog.catalog import (
    CatalogManager,
    LocalCatalog,
    SetMetadata,
    SharedLibrary,
)

__all__ = ["CatalogManager", "LocalCatalog", "SetMetadata", "SharedLibrary"]
