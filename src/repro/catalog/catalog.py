"""The PC catalog: cluster metadata and dynamic type distribution.

The master node's *catalog manager* (Section 2, Appendix D.1) serves two
kinds of metadata:

* the authoritative mapping between type codes and PC object types, plus
  the "shared libraries" implementing them;
* database / set metadata for the distributed storage subsystem.

The paper ships compiled ``.so`` files: a user registers a class, the
catalog stores the library, and any worker process that dereferences a
handle with an unknown type code fetches the library, ``dlopen``s it, and
patches the object's vtable pointer (Section 6.3).  Here a
:class:`SharedLibrary` wraps the Python class objects; "loading" one into
a worker installs its descriptors into the worker's local
:class:`~repro.memory.typecodes.TypeRegistry` under the master-assigned
codes, which is exactly the observable behaviour of the ``.so`` protocol.
"""

from __future__ import annotations

import threading

from repro.errors import CatalogError, UnknownTypeCodeError
from repro.memory.objects import PCObject, as_descriptor
from repro.memory.typecodes import TypeRegistry


class SharedLibrary:
    """The stand-in for a compiled ``.so`` holding one or more PC types."""

    def __init__(self, name, descriptors):
        self.name = name
        #: list of (type_name, descriptor) pairs the library provides.
        self.descriptors = list(descriptors)

    def __repr__(self):
        return "<SharedLibrary %s: %s>" % (
            self.name,
            ", ".join(name for name, _d in self.descriptors),
        )


class SetMetadata:
    """Catalog record for one stored set."""

    def __init__(self, database, name, type_name, partitions):
        self.database = database
        self.name = name
        self.type_name = type_name
        #: worker ids holding partitions of the set.
        self.partitions = list(partitions)

    @property
    def qualified_name(self):
        return "%s.%s" % (self.database, self.name)


class CatalogManager:
    """The master catalog: authoritative type codes and set metadata."""

    def __init__(self):
        self.registry = TypeRegistry()
        self._libraries = {}  # type code -> SharedLibrary
        self._databases = {}  # db name -> {set name -> SetMetadata}
        self._lock = threading.Lock()
        self.library_requests = 0

    # -- type registration -----------------------------------------------------

    def register_type(self, cls_or_descriptor, library_name=None):
        """Register a PC type cluster-wide; returns its type code.

        Mirrors the paper's requirement that "all classes deriving from
        PC's Object base class be registered with the PC catalog server
        before they are loaded into the distributed storage subsystem".
        """
        descriptor = _to_descriptor(cls_or_descriptor)
        code = self._register_closure(descriptor, library_name)
        return code

    def _register_closure(self, descriptor, library_name=None):
        """Register ``descriptor`` and every type its layout depends on.

        A compiled ``.so`` carries the template instantiations a class
        uses, so shipping ``Customer`` must also make ``vector<order>``
        and friends resolvable on every worker.
        """
        code = descriptor.type_code(self.registry)
        if code & 0x80000000:  # simple types need no library
            return code
        with self._lock:
            known = code in self._libraries
            if not known:
                name = library_name or ("lib%s.so" % descriptor.name)
                self._libraries[code] = SharedLibrary(
                    name, [(descriptor.name, descriptor)]
                )
        if not known:
            for dependent in descriptor.dependents():
                self._register_closure(dependent)
        return code

    def library_for_code(self, code):
        """Serve the shared library implementing ``code`` (worker fetch)."""
        with self._lock:
            self.library_requests += 1
            library = self._libraries.get(code)
        if library is None:
            raise UnknownTypeCodeError(code)
        return library

    def code_for_type(self, cls_or_descriptor):
        """Type code previously assigned to a registered type, or None."""
        descriptor = _to_descriptor(cls_or_descriptor)
        return self.registry.code_for_name(descriptor.name)

    # -- database / set metadata -------------------------------------------------

    def create_database(self, name):
        """Create a database namespace; idempotent."""
        with self._lock:
            self._databases.setdefault(name, {})

    def create_set(self, database, name, type_name, partitions):
        """Record a new set partitioned over ``partitions`` (worker ids)."""
        with self._lock:
            if database not in self._databases:
                raise CatalogError("database %r does not exist" % database)
            sets = self._databases[database]
            if name in sets:
                raise CatalogError(
                    "set %r already exists in database %r" % (name, database)
                )
            meta = SetMetadata(database, name, type_name, partitions)
            sets[name] = meta
            return meta

    def drop_set(self, database, name):
        """Remove a set's metadata."""
        with self._lock:
            self._databases.get(database, {}).pop(name, None)

    def set_metadata(self, database, name):
        """Metadata for one set, or raise."""
        with self._lock:
            try:
                return self._databases[database][name]
            except KeyError:
                raise CatalogError(
                    "unknown set %s.%s" % (database, name)
                ) from None

    def list_sets(self, database=None):
        """All set metadata records, optionally restricted to one database."""
        with self._lock:
            if database is not None:
                return list(self._databases.get(database, {}).values())
            return [
                meta
                for sets in self._databases.values()
                for meta in sets.values()
            ]


class LocalCatalog:
    """A worker's catalog cache with the dynamic-library fetch path.

    The local registry resolves most lookups; a miss triggers a simulated
    ``.so`` fetch from the master catalog, after which the type is
    installed locally under the master's code (``getVTablePtr`` + lookup
    table insertion in the paper's terms).
    """

    def __init__(self, master):
        self.master = master
        self.registry = TypeRegistry(
            miss_handler=self._fetch_library,
            register_delegate=self._register_with_master,
        )
        self.fetches = 0

    def _register_with_master(self, name, descriptor):
        """Forward a brand-new local type to the master for a global code."""
        return self.master.register_type(descriptor)

    def _fetch_library(self, registry, code):
        library = self.master.library_for_code(code)
        self.fetches += 1
        for type_name, descriptor in library.descriptors:
            master_code = self.master.registry.code_for_name(type_name)
            registry.register(type_name, descriptor, code=master_code)

    def preload(self, cls_or_descriptor):
        """Eagerly install a type (what deploying code to a worker does)."""
        descriptor = _to_descriptor(cls_or_descriptor)
        code = self.master.registry.code_for_name(descriptor.name)
        if code is None:
            raise CatalogError(
                "type %r is not registered with the master catalog"
                % descriptor.name
            )
        self.registry.register(descriptor.name, descriptor, code=code)
        return code


def _to_descriptor(cls_or_descriptor):
    if isinstance(cls_or_descriptor, type) and issubclass(
        cls_or_descriptor, PCObject
    ):
        return cls_or_descriptor.pc_descriptor
    return as_descriptor(cls_or_descriptor)
