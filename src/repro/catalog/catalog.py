"""The PC catalog: cluster metadata and dynamic type distribution.

The master node's *catalog manager* (Section 2, Appendix D.1) serves two
kinds of metadata:

* the authoritative mapping between type codes and PC object types, plus
  the "shared libraries" implementing them;
* database / set metadata for the distributed storage subsystem.

The paper ships compiled ``.so`` files: a user registers a class, the
catalog stores the library, and any worker process that dereferences a
handle with an unknown type code fetches the library, ``dlopen``s it, and
patches the object's vtable pointer (Section 6.3).  Here a
:class:`SharedLibrary` wraps the Python class objects; "loading" one into
a worker installs its descriptors into the worker's local
:class:`~repro.memory.typecodes.TypeRegistry` under the master-assigned
codes, which is exactly the observable behaviour of the ``.so`` protocol.
"""

from __future__ import annotations

import json
import os
import threading

from repro.errors import CatalogError, UnknownTypeCodeError
from repro.memory.objects import PCObject, as_descriptor
from repro.memory.typecodes import TypeRegistry


class SharedLibrary:
    """The stand-in for a compiled ``.so`` holding one or more PC types."""

    def __init__(self, name, descriptors):
        self.name = name
        #: list of (type_name, descriptor) pairs the library provides.
        self.descriptors = list(descriptors)

    def __repr__(self):
        return "<SharedLibrary %s: %s>" % (
            self.name,
            ", ".join(name for name, _d in self.descriptors),
        )


class PageRecord:
    """The catalog's authoritative record of one stored page.

    ``replicas`` is the ordered list of ``[worker_id, local_page_id]``
    copies; the first *live* entry serves reads.  ``primary`` remembers
    the worker the page was originally placed on, so a read served by any
    other worker counts as a failover read even after the replica list
    has been healed.  ``checksum`` is the CRC32 stamped when the page was
    sealed — the integrity reference every copy is verified against.
    """

    __slots__ = ("uid", "replicas", "checksum", "count", "primary")

    def __init__(self, uid, replicas, checksum, count, primary):
        self.uid = uid
        self.replicas = [list(r) for r in replicas]
        self.checksum = checksum
        self.count = count
        self.primary = primary

    def workers(self):
        return [worker_id for worker_id, _pid in self.replicas]

    def to_record(self):
        return {
            "uid": self.uid,
            "replicas": [list(r) for r in self.replicas],
            "checksum": self.checksum,
            "count": self.count,
            "primary": self.primary,
        }


class SetMetadata:
    """Catalog record for one stored set."""

    def __init__(self, database, name, type_name, partitions,
                 replication=1, page_size=None, layout="row", schema=None):
        self.database = database
        self.name = name
        self.type_name = type_name
        #: worker ids holding partitions of the set.
        self.partitions = list(partitions)
        #: copies kept of every page (1 = no redundancy).
        self.replication = replication
        self.page_size = page_size
        #: physical page layout: "row" (object pages) or "columnar"
        #: (struct-of-arrays pages; requires ``schema``).
        self.layout = layout
        #: the :class:`repro.schema.Schema` of a columnar set, else None.
        self.schema = schema
        #: page uid -> :class:`PageRecord`, in load order (dicts preserve
        #: insertion order, which fixes the scan order of the set).
        self.pages = {}
        self._page_seq = 0

    @property
    def qualified_name(self):
        return "%s.%s" % (self.database, self.name)

    def next_page_uid(self):
        uid = "p%06d" % self._page_seq
        self._page_seq += 1
        return uid

    def note_replayed_uid(self, uid):
        """Keep the uid sequence monotonic across a journal replay."""
        try:
            seq = int(uid.lstrip("p"), 10)
        except ValueError:
            return
        self._page_seq = max(self._page_seq, seq + 1)


class CatalogJournal:
    """Write-ahead journal of DDL and replica-map mutations.

    One JSON record per line, appended and flushed *before* the in-memory
    catalog mutation it describes, so a master crash between the two
    leaves the journal ahead of (never behind) the catalog —
    :meth:`CatalogManager.replay_journal` then reconstructs a state that
    includes every acknowledged mutation.
    """

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.records_written = 0

    def append(self, record):
        with open(self.path, "a") as f:
            f.write(json.dumps(record, sort_keys=True))
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        self.records_written += 1

    def entries(self):
        """All journal records, oldest first ([] for a fresh journal)."""
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


class CatalogManager:
    """The master catalog: authoritative type codes and set metadata."""

    def __init__(self, journal=None):
        self.registry = TypeRegistry()
        self._libraries = {}  # type code -> SharedLibrary
        self._databases = {}  # db name -> {set name -> SetMetadata}
        self._lock = threading.Lock()
        self.library_requests = 0
        #: optional :class:`CatalogJournal` making DDL crash-consistent.
        self.journal = journal
        self._replaying = False

    def _journal(self, record):
        """Append a WAL record (no-op without a journal or during replay)."""
        if self.journal is not None and not self._replaying:
            self.journal.append(record)

    # -- type registration -----------------------------------------------------

    def register_type(self, cls_or_descriptor, library_name=None):
        """Register a PC type cluster-wide; returns its type code.

        Mirrors the paper's requirement that "all classes deriving from
        PC's Object base class be registered with the PC catalog server
        before they are loaded into the distributed storage subsystem".
        """
        descriptor = _to_descriptor(cls_or_descriptor)
        code = self._register_closure(descriptor, library_name)
        return code

    def _register_closure(self, descriptor, library_name=None):
        """Register ``descriptor`` and every type its layout depends on.

        A compiled ``.so`` carries the template instantiations a class
        uses, so shipping ``Customer`` must also make ``vector<order>``
        and friends resolvable on every worker.
        """
        code = descriptor.type_code(self.registry)
        if code & 0x80000000:  # simple types need no library
            return code
        with self._lock:
            known = code in self._libraries
            if not known:
                name = library_name or ("lib%s.so" % descriptor.name)
                self._libraries[code] = SharedLibrary(
                    name, [(descriptor.name, descriptor)]
                )
        if not known:
            for dependent in descriptor.dependents():
                self._register_closure(dependent)
        return code

    def library_for_code(self, code):
        """Serve the shared library implementing ``code`` (worker fetch)."""
        with self._lock:
            self.library_requests += 1
            library = self._libraries.get(code)
        if library is None:
            raise UnknownTypeCodeError(code)
        return library

    def code_for_type(self, cls_or_descriptor):
        """Type code previously assigned to a registered type, or None."""
        descriptor = _to_descriptor(cls_or_descriptor)
        return self.registry.code_for_name(descriptor.name)

    # -- database / set metadata -------------------------------------------------

    def create_database(self, name):
        """Create a database namespace; idempotent."""
        with self._lock:
            if name not in self._databases:
                self._journal({"op": "create_database", "db": name})
                self._databases[name] = {}

    def create_set(self, database, name, type_name, partitions,
                   replication=1, page_size=None, layout="row", schema=None):
        """Record a new set partitioned over ``partitions`` (worker ids)."""
        if layout not in ("row", "columnar"):
            raise CatalogError(
                "unknown layout %r (expected 'row' or 'columnar')"
                % (layout,)
            )
        if layout == "columnar" and schema is None:
            raise CatalogError(
                "columnar layout requires a schema for set %s.%s"
                % (database, name)
            )
        with self._lock:
            if database not in self._databases:
                raise CatalogError("database %r does not exist" % database)
            sets = self._databases[database]
            if name in sets:
                raise CatalogError(
                    "set %r already exists in database %r" % (name, database)
                )
            self._journal({
                "op": "create_set", "db": database, "set": name,
                "type": type_name, "partitions": list(partitions),
                "replication": replication, "page_size": page_size,
                "layout": layout,
                "schema": schema.to_dict() if schema is not None else None,
            })
            meta = SetMetadata(database, name, type_name, partitions,
                               replication=replication, page_size=page_size,
                               layout=layout, schema=schema)
            sets[name] = meta
            return meta

    def drop_set(self, database, name):
        """Remove a set's metadata."""
        with self._lock:
            if name in self._databases.get(database, {}):
                self._journal({"op": "drop_set", "db": database, "set": name})
            self._databases.get(database, {}).pop(name, None)

    # -- replica-map bookkeeping ---------------------------------------------------

    def record_page(self, database, name, replicas, checksum, count,
                    primary=None, uid=None):
        """Record one newly stored page and its replica placement.

        Returns the page's :class:`PageRecord`.  ``replicas`` is the
        ordered ``(worker_id, local_page_id)`` placement; ``checksum`` is
        the CRC32 of the sealed bytes; ``count`` the objects on the page.
        """
        with self._lock:
            meta = self._set_metadata_locked(database, name)
            if uid is None:
                uid = meta.next_page_uid()
            else:
                meta.note_replayed_uid(uid)
            if primary is None:
                primary = replicas[0][0]
            record = PageRecord(uid, replicas, checksum, count, primary)
            self._journal({
                "op": "record_page", "db": database, "set": name,
                **record.to_record(),
            })
            meta.pages[uid] = record
            return record

    def update_page_replicas(self, database, name, uid, replicas):
        """Replace a page's replica list (quarantine, heal, re-replicate)."""
        with self._lock:
            meta = self._set_metadata_locked(database, name)
            record = meta.pages[uid]
            self._journal({
                "op": "update_page", "db": database, "set": name,
                "uid": uid, "replicas": [list(r) for r in replicas],
            })
            record.replicas = [list(r) for r in replicas]
            return record

    def clear_pages(self, database, name):
        """Forget every page record of a set (the set was cleared)."""
        with self._lock:
            meta = self._set_metadata_locked(database, name)
            if meta.pages:
                self._journal({
                    "op": "clear_pages", "db": database, "set": name,
                })
            meta.pages = {}

    def set_partitions(self, database, name, partitions):
        """Replace a set's partition worker list (decommission/kill)."""
        with self._lock:
            meta = self._set_metadata_locked(database, name)
            self._journal({
                "op": "set_partitions", "db": database, "set": name,
                "partitions": list(partitions),
            })
            meta.partitions = list(partitions)

    def _set_metadata_locked(self, database, name):
        try:
            return self._databases[database][name]
        except KeyError:
            raise CatalogError(
                "unknown set %s.%s" % (database, name)
            ) from None

    # -- crash recovery ------------------------------------------------------------

    def replay_journal(self):
        """Rebuild all DDL and replica-map state from the journal.

        Simulates the master restart of a crash-consistent catalog: the
        in-memory database/set records are discarded and reconstructed
        record-by-record from the write-ahead journal.  The type registry
        is untouched — the paper's catalog stores its shared libraries
        durably, and replaying DDL must not orphan registered type codes.
        Returns the number of journal records applied.
        """
        if self.journal is None:
            raise CatalogError("catalog has no journal to replay")
        records = self.journal.entries()
        with self._lock:
            self._databases = {}
        self._replaying = True
        try:
            for record in records:
                self._apply_journal_record(record)
        finally:
            self._replaying = False
        return len(records)

    def _apply_journal_record(self, record):
        op = record["op"]
        if op == "create_database":
            self.create_database(record["db"])
        elif op == "create_set":
            from repro.schema import Schema

            self.create_set(
                record["db"], record["set"], record["type"],
                record["partitions"],
                replication=record.get("replication", 1),
                page_size=record.get("page_size"),
                layout=record.get("layout", "row"),
                schema=Schema.from_dict(record.get("schema")),
            )
        elif op == "drop_set":
            self.drop_set(record["db"], record["set"])
        elif op == "record_page":
            self.record_page(
                record["db"], record["set"], record["replicas"],
                record["checksum"], record["count"],
                primary=record.get("primary"), uid=record["uid"],
            )
        elif op == "update_page":
            self.update_page_replicas(
                record["db"], record["set"], record["uid"],
                record["replicas"],
            )
        elif op == "clear_pages":
            self.clear_pages(record["db"], record["set"])
        elif op == "set_partitions":
            self.set_partitions(
                record["db"], record["set"], record["partitions"]
            )
        else:
            raise CatalogError("unknown journal record %r" % (op,))

    def set_metadata(self, database, name):
        """Metadata for one set, or raise."""
        with self._lock:
            try:
                return self._databases[database][name]
            except KeyError:
                raise CatalogError(
                    "unknown set %s.%s" % (database, name)
                ) from None

    def list_sets(self, database=None):
        """All set metadata records, optionally restricted to one database."""
        with self._lock:
            if database is not None:
                return list(self._databases.get(database, {}).values())
            return [
                meta
                for sets in self._databases.values()
                for meta in sets.values()
            ]


class LocalCatalog:
    """A worker's catalog cache with the dynamic-library fetch path.

    The local registry resolves most lookups; a miss triggers a simulated
    ``.so`` fetch from the master catalog, after which the type is
    installed locally under the master's code (``getVTablePtr`` + lookup
    table insertion in the paper's terms).
    """

    def __init__(self, master):
        self.master = master
        self.registry = TypeRegistry(
            miss_handler=self._fetch_library,
            register_delegate=self._register_with_master,
        )
        self.fetches = 0

    def _register_with_master(self, name, descriptor):
        """Forward a brand-new local type to the master for a global code."""
        return self.master.register_type(descriptor)

    def _fetch_library(self, registry, code):
        library = self.master.library_for_code(code)
        self.fetches += 1
        for type_name, descriptor in library.descriptors:
            master_code = self.master.registry.code_for_name(type_name)
            registry.register(type_name, descriptor, code=master_code)

    def preload(self, cls_or_descriptor):
        """Eagerly install a type (what deploying code to a worker does)."""
        descriptor = _to_descriptor(cls_or_descriptor)
        code = self.master.registry.code_for_name(descriptor.name)
        if code is None:
            raise CatalogError(
                "type %r is not registered with the master catalog"
                % descriptor.name
            )
        self.registry.register(descriptor.name, descriptor, code=code)
        return code


def _to_descriptor(cls_or_descriptor):
    if isinstance(cls_or_descriptor, type) and issubclass(
        cls_or_descriptor, PCObject
    ):
        return cls_or_descriptor.pc_descriptor
    return as_descriptor(cls_or_descriptor)
