"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

A small, generic worklist fixpoint: an analysis supplies the lattice
(``initial``/``join``) and the per-statement transfer functions, the
engine iterates block in-states to a fixed point.  States must be
plain comparable values (the rules here use dicts of frozensets).

The one non-textbook feature is the *split transfer*: every basic
block built by :func:`repro.analysis.cfg.build_cfg` has at most one
statement that can raise, and it is always the last one.  Exception
edges out of a block therefore get their own transfer
(:meth:`ForwardAnalysis.transfer_raise`) applied to the state *before*
the raising statement's normal effect.  That is what lets a resource
rule model ``page = pool.pin(i)`` precisely: if ``pin`` itself raises,
nothing was acquired and the exception edge must not report a leak;
if a later call raises, the acquisition is live on that edge.

:class:`ResourceAnalysis` is the reaching-state abstraction shared by
the PC007/PC008 rules: each tracked resource key maps to the *set* of
statuses it may have on some path ("acquired" / "released" /
"escaped"), joined by union.  A key whose status set still contains
"acquired" at a function exit may leak on some path.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.cfg import EDGE_EXCEPT

#: resource statuses for :class:`ResourceAnalysis` states
ACQUIRED = "acquired"
RELEASED = "released"
ESCAPED = "escaped"


class ForwardAnalysis:
    """Base class: subclasses define the lattice and transfers."""

    def initial(self):
        """The state entering the function."""
        raise NotImplementedError

    def join(self, left, right):
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, stmt, state):
        """State after ``stmt`` completes normally."""
        raise NotImplementedError

    def transfer_raise(self, stmt, state):
        """State on the exception edge when ``stmt`` raises.

        ``state`` is the in-state of the statement (its own normal
        effect has *not* been applied).  The default assumes the
        statement's effect happened before the raise.
        """
        return self.transfer(stmt, state)


class FlowResult:
    """Fixpoint states: block in-states plus the two exit in-states."""

    __slots__ = ("in_states", "exit_state", "raise_state")

    def __init__(self, in_states, exit_state, raise_state):
        self.in_states = in_states
        self.exit_state = exit_state
        self.raise_state = raise_state


def run_forward(cfg, analysis, max_iterations=10000):
    """Iterate ``analysis`` over ``cfg`` to a fixed point.

    Returns a :class:`FlowResult`.  ``max_iterations`` bounds total
    block visits as a safety net — the lattices used here are finite,
    so hitting it would be an engine bug, reported loudly rather than
    looping.
    """
    in_states = {cfg.entry: analysis.initial()}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}
    visits = 0
    while worklist:
        visits += 1
        if visits > max_iterations:
            raise RuntimeError(
                "dataflow did not converge after %d block visits"
                % max_iterations
            )
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.blocks[block_id]
        state = in_states[block_id]
        # Only the last statement of a block may raise (by CFG
        # construction), so the exception out-state is the pre-state
        # of the last statement put through transfer_raise.
        for stmt in block.statements[:-1]:
            state = analysis.transfer(stmt, state)
        if block.statements:
            last = block.statements[-1]
            normal_out = analysis.transfer(last, state)
            raise_out = analysis.transfer_raise(last, state)
        else:
            normal_out = raise_out = state
        for target, kind in block.edges:
            out = raise_out if kind == EDGE_EXCEPT else normal_out
            old = in_states.get(target)
            new = out if old is None else analysis.join(old, out)
            if old is None or new != old:
                in_states[target] = new
                if target not in queued:
                    worklist.append(target)
                    queued.add(target)
    return FlowResult(
        in_states,
        in_states.get(cfg.exit),
        in_states.get(cfg.raises),
    )


def replay_block(cfg, analysis, result, block_id, visit):
    """Re-run transfers through one block, calling ``visit`` per stmt.

    ``visit(stmt, state_before)`` sees the state *entering* each
    statement — how rules localize a finding (e.g. PC009's
    write-after-seal) to the exact statement where it occurs.  Blocks
    the fixpoint never reached are skipped.
    """
    state = result.in_states.get(block_id)
    if state is None:
        return
    for stmt in cfg.blocks[block_id].statements:
        visit(stmt, state)
        state = analysis.transfer(stmt, state)


# -- the shared resource abstraction ------------------------------------------


class ResourceAnalysis(ForwardAnalysis):
    """Reaching statuses for tracked resources.

    The three spec callbacks map one statement to the resource keys it
    affects; keys are opaque hashables chosen by the rule (PC007 uses
    ``(family, receiver_text, arg_text)``, PC008 uses bound names).

    * ``acquires(stmt)`` — keys this statement acquires;
    * ``releases(stmt)`` — keys it releases;
    * ``escapes(stmt)`` — keys whose ownership it transfers away
      (returned, stored into longer-lived state, handed to a callee).

    A state maps key -> frozenset of statuses; a key absent from the
    state has not been touched on any path reaching that point.
    """

    def __init__(self, acquires, releases, escapes=None):
        self._acquires = acquires
        self._releases = releases
        self._escapes = escapes or (lambda stmt: ())

    def initial(self):
        return {}

    def join(self, left, right):
        if left == right:
            return left
        merged = dict(left)
        for key, statuses in right.items():
            existing = merged.get(key)
            merged[key] = statuses if existing is None \
                else existing | statuses
        return merged

    def _apply(self, stmt, state, with_acquires):
        updates = {}
        for key in self._releases(stmt):
            updates[key] = frozenset((RELEASED,))
        for key in self._escapes(stmt):
            updates[key] = frozenset((ESCAPED,))
        if with_acquires:
            for key in self._acquires(stmt):
                updates[key] = frozenset((ACQUIRED,))
        if not updates:
            return state
        merged = dict(state)
        merged.update(updates)
        return merged

    def transfer(self, stmt, state):
        return self._apply(stmt, state, with_acquires=True)

    def transfer_raise(self, stmt, state):
        # If the statement raises, optimistically assume its release/
        # escape happened (a failing ``unpin`` should not read as a
        # still-held pin) but its acquisition did not (a failing
        # ``pin`` acquired nothing).  Both choices avoid reporting
        # paths that cannot actually leak.
        return self._apply(stmt, state, with_acquires=False)

    @staticmethod
    def leaked(state, key):
        """True when ``key`` may still be held in ``state``."""
        if state is None:
            return False
        statuses = state.get(key)
        return statuses is not None and ACQUIRED in statuses \
            and ESCAPED not in statuses
