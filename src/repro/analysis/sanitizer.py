"""PCSan runtime sanitizer: poisoning, generations, shadow refcounts.

The object model's invariants (no dangling handles, refcounts only
through :meth:`AllocationBlock.retain`/``release``, pages unpinned when a
job ends) are cheap to *state* and easy to violate silently.  This module
is the opt-in enforcement layer:

* **Poisoned frees.**  ``free_object`` fills the freed payload with
  ``0xDD``; when the allocator later reuses the chunk it verifies the
  poison survived, so any wild write into freed space becomes a recorded
  ``poison_violation`` instead of silent heap corruption.
* **Generation counters.**  Every free bumps a per-offset generation;
  handles stamp the generation they were created under and ``deref``
  raises :class:`~repro.errors.DanglingHandleError` when they disagree —
  catching the classic use-after-free where the slot was *reallocated*
  and the on-page header looks perfectly healthy again.
* **Retired blocks.**  When the buffer pool frees a page outright, the
  page's block shadow is retired; handles that outlived the page raise
  on deref instead of reading a stale snapshot.
* **Shadow refcounts.**  Counted retains/releases are mirrored into a
  Python-side table and cross-checked against the on-page header, so a
  raw ``write_refcount`` poke surfaces as a ``refcount_mismatch``.
* **Pin-leak detection.**  The cluster snapshots buffer-pool pins when a
  job starts and diffs them when it ends; pins still held are reported.
* **Seal-time leak check.**  Sealing (``to_bytes``) a managed block that
  holds live refcounted objects but never had a root recorded reports
  the orphaned objects — they would be unreachable on the shipped page.

Everything is surfaced twice: as ``pc_san_*`` counters (with ``san.*``
trace mirrors) through the :mod:`repro.obs` metrics layer, and as a
structured :class:`SanitizerReport` of findings.  Only genuine
use-after-free derefs raise; every other diagnostic is recorded, so a
sanitized run of a healthy workload behaves identically to a plain one.

The sanitizer is **off by default and installs zero wrappers when off**:
blocks created while no sanitizer is active carry ``_san = None`` and
every hook site is a single ``is not None`` test.  Enable it with the
``PC_SANITIZE=1`` environment variable, ``PCCluster(..., sanitize=True)``,
or :func:`enable` / :func:`sanitize_scope`.
"""

from __future__ import annotations

import os

from repro.errors import DanglingHandleError

#: Byte written over freed payloads (0xDD, the classic "dead" fill).
POISON_BYTE = 0xDD

#: Freed chunks keep their first 24 bytes intact: the 8-byte tombstone
#: (refcount + type code, needed for dangling-handle detection) plus the
#: 16-byte freelist record that may follow it.
POISON_SKIP = 24


class SanitizerFinding:
    """One recorded diagnostic (not necessarily fatal)."""

    __slots__ = ("kind", "message", "block_id", "offset", "page_id")

    def __init__(self, kind, message, block_id=None, offset=None,
                 page_id=None):
        self.kind = kind
        self.message = message
        self.block_id = block_id
        self.offset = offset
        self.page_id = page_id

    def to_dict(self):
        entry = {"kind": self.kind, "message": self.message}
        if self.block_id is not None:
            entry["block_id"] = self.block_id
        if self.offset is not None:
            entry["offset"] = self.offset
        if self.page_id is not None:
            entry["page_id"] = self.page_id
        return entry

    def __repr__(self):
        return "<SanitizerFinding %s: %s>" % (self.kind, self.message)


class SanitizerReport:
    """Structured result of a sanitized run: findings plus tallies."""

    def __init__(self):
        self.findings = []

    def add(self, finding):
        self.findings.append(finding)

    def by_kind(self, kind):
        return [f for f in self.findings if f.kind == kind]

    def counts(self):
        tally = {}
        for finding in self.findings:
            tally[finding.kind] = tally.get(finding.kind, 0) + 1
        return tally

    def to_dict(self):
        return {
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def __len__(self):
        return len(self.findings)

    def __bool__(self):
        # A report is always truthy (it exists); emptiness is len() == 0.
        return True

    def __repr__(self):
        return "<SanitizerReport %d finding(s) %r>" % (
            len(self.findings), self.counts(),
        )


class _BlockShadow:
    """Per-block sanitizer state: generations, poison map, shadow counts.

    One instance hangs off ``AllocationBlock._san`` for every block
    created while the sanitizer is active.  The hooks are written to be
    branch-cheap: the block calls them only after testing ``_san is not
    None``, and each hook does dict work proportional to the operation.
    """

    __slots__ = ("san", "block", "generations", "refcounts", "live",
                 "poisoned", "retired", "seal_reported")

    def __init__(self, san, block):
        self.san = san
        self.block = block
        self.seal_reported = False
        #: offset -> times the object at this offset has been freed
        self.generations = {}
        #: offset -> expected on-page refcount (counted objects only)
        self.refcounts = {}
        #: offset -> type code of the live object allocated there
        self.live = {}
        #: offset -> (start, end) byte range expected to hold poison
        self.poisoned = {}
        #: set to a reason string when the owning page was freed
        self.retired = None

    # -- allocator hooks ---------------------------------------------------

    def generation_of(self, offset):
        return self.generations.get(offset, 0)

    def on_alloc(self, offset, type_code, refcount):
        poisoned = self.poisoned.pop(offset, None)
        if poisoned is not None:
            start, end = poisoned
            buf = self.block.buf  # pcsan: disable=PC002
            if any(buf[i] != POISON_BYTE  # pcsan: disable=PC002
                   for i in range(start, end)):
                self.san.record(
                    "poison_violation",
                    "freed chunk at offset %d of block %d was written "
                    "before reallocation (poison damaged)"
                    % (offset, self.block.block_id),
                    block_id=self.block.block_id, offset=offset,
                )
        self.live[offset] = type_code
        if refcount >= 0:
            self.refcounts[offset] = refcount
        else:
            self.refcounts.pop(offset, None)

    def on_free(self, offset, total):
        buf = self.block.buf  # pcsan: disable=PC002
        start = offset + POISON_SKIP
        end = offset + total
        if end > start:
            # the poison write *is* the sanitizer's raw byte poke
            buf[start:end] = (  # pcsan: disable=PC002
                bytes([POISON_BYTE]) * (end - start)
            )
            self.poisoned[offset] = (start, end)
        self.generations[offset] = self.generations.get(offset, 0) + 1
        self.refcounts.pop(offset, None)
        self.live.pop(offset, None)
        self.san.c_poisoned_frees.inc()

    # -- refcount cross-checking -------------------------------------------

    def on_refcount(self, offset, observed, new):
        """Called around every *counted* retain/release."""
        expected = self.refcounts.get(offset)
        if expected is not None and expected != observed:
            self.san.record(
                "refcount_mismatch",
                "on-page refcount %d at offset %d of block %d does not "
                "match the shadow count %d (raw header write?)"
                % (observed, offset, self.block.block_id, expected),
                block_id=self.block.block_id, offset=offset,
            )
        self.refcounts[offset] = new

    # -- handle validation --------------------------------------------------

    def on_deref(self, offset, generation, refcount):
        if self.retired is not None:
            self.san.c_dangling_derefs.inc()
            raise DanglingHandleError(
                "handle into retired block %d (%s)"
                % (self.block.block_id, self.retired)
            )
        if generation is not None and \
                self.generations.get(offset, 0) != generation:
            self.san.c_dangling_derefs.inc()
            raise DanglingHandleError(
                "stale handle: offset %d of block %d was freed (and "
                "possibly reallocated) after the handle was created"
                % (offset, self.block.block_id)
            )
        if refcount >= 0:
            expected = self.refcounts.get(offset)
            if expected is not None and expected != refcount:
                self.san.record(
                    "refcount_mismatch",
                    "deref observed on-page refcount %d at offset %d of "
                    "block %d, shadow expected %d"
                    % (refcount, offset, self.block.block_id, expected),
                    block_id=self.block.block_id, offset=offset,
                )

    # -- lifecycle ----------------------------------------------------------

    def retire(self, reason):
        self.retired = reason

    def on_seal(self):
        """Seal-time leak check: live counted objects but no root."""
        block = self.block
        if self.seal_reported or not block.managed or not self.refcounts:
            return
        root_offset, _code = block.root()
        if root_offset is not None:
            return
        leaked = sorted(
            offset for offset, count in self.refcounts.items() if count > 0
        )
        if not leaked:
            return
        self.seal_reported = True
        self.san.c_leaked_objects.inc(len(leaked))
        self.san.record(
            "leaked_objects",
            "block %d sealed with %d live object(s) at offset(s) %s but "
            "no root handle — they are unreachable on the shipped page"
            % (block.block_id, len(leaked),
               ", ".join(map(str, leaked[:8]))),
            block_id=block.block_id,
        )


class Sanitizer:
    """The process-wide sanitizer: counters, report, and block watching."""

    def __init__(self, metrics=None):
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self.report = SanitizerReport()
        self.c_blocks_watched = metrics.counter(
            "pc_san_blocks_watched_total",
            help="Allocation blocks created under the sanitizer",
            trace="san.blocks_watched",
        )
        self.c_poisoned_frees = metrics.counter(
            "pc_san_poisoned_frees_total",
            help="Freed objects whose payload was poisoned with 0xDD",
            trace="san.poisoned_frees",
        )
        self.c_poison_violations = metrics.counter(
            "pc_san_poison_violations_total",
            help="Freed chunks found scribbled on before reallocation",
            trace="san.poison_violations",
        )
        self.c_dangling_derefs = metrics.counter(
            "pc_san_dangling_derefs_total",
            help="Use-after-free derefs caught via generations/retirement",
            trace="san.dangling_derefs",
        )
        self.c_refcount_mismatches = metrics.counter(
            "pc_san_refcount_mismatches_total",
            help="Shadow refcount disagreements with on-page headers",
            trace="san.refcount_mismatches",
        )
        self.c_pin_leaks = metrics.counter(
            "pc_san_pin_leaks_total",
            help="Buffer-pool pins still held when their job ended",
            trace="san.pin_leaks",
        )
        self.c_leaked_objects = metrics.counter(
            "pc_san_leaked_objects_total",
            help="Live objects sealed into a block with no root handle",
            trace="san.leaked_objects",
        )

    # -- recording ----------------------------------------------------------

    _FINDING_COUNTERS = {
        "poison_violation": "c_poison_violations",
        "refcount_mismatch": "c_refcount_mismatches",
        "pin_leak": "c_pin_leaks",
    }

    def record(self, kind, message, **where):
        counter_name = self._FINDING_COUNTERS.get(kind)
        if counter_name is not None:
            getattr(self, counter_name).inc()
        self.report.add(SanitizerFinding(kind, message, **where))

    # -- block watching -------------------------------------------------------

    def watch_block(self, block):
        """Attach (and return) a shadow for a freshly created block."""
        self.c_blocks_watched.inc()
        return _BlockShadow(self, block)

    # -- buffer-pool pin accounting ------------------------------------------

    def snapshot_pins(self, pools):
        """``{(pool_index, page_id): pin_count}`` across ``pools``."""
        held = {}
        for index, pool in enumerate(pools):
            for page_id, pins in pool.pinned_pages().items():
                held[(index, page_id)] = pins
        return held

    def check_pins(self, pools, baseline):
        """Diff current pins against ``baseline``; report what leaked.

        Returns the pin-leak findings recorded by this call.
        """
        found = []
        for index, pool in enumerate(pools):
            for page_id, pins in pool.pinned_pages().items():
                before = baseline.get((index, page_id), 0)
                if pins > before:
                    finding = SanitizerFinding(
                        "pin_leak",
                        "page %d of pool %d ended the job with %d pin(s) "
                        "acquired during it still held"
                        % (page_id, index, pins - before),
                        page_id=page_id,
                    )
                    self.c_pin_leaks.inc(pins - before)
                    self.report.add(finding)
                    found.append(finding)
        return found


# ---------------------------------------------------------------------------
# Global on/off switch
# ---------------------------------------------------------------------------

_TRUTHY = ("1", "true", "yes", "on")

#: ``san`` is the active sanitizer (or None); ``initialized`` blocks the
#: one-time PC_SANITIZE environment check from re-running after an
#: explicit enable()/disable().
_state = {"san": None, "initialized": False}


def env_enabled():
    """Whether ``PC_SANITIZE`` asks for sanitizing."""
    return os.environ.get("PC_SANITIZE", "").strip().lower() in _TRUTHY


def current_sanitizer():
    """The active :class:`Sanitizer`, or None when sanitizing is off.

    The first call consults ``PC_SANITIZE``; afterwards only
    :func:`enable` / :func:`disable` change the answer.
    """
    if not _state["initialized"]:
        _state["initialized"] = True
        if env_enabled():
            _state["san"] = Sanitizer()
    return _state["san"]


def enable(metrics=None):
    """Install (and return) a new global sanitizer.

    ``metrics`` may be a :class:`~repro.obs.MetricsRegistry` so the
    ``pc_san_*`` counters land next to the caller's other metrics (this
    is what ``PCCluster(sanitize=True)`` does); by default the sanitizer
    keeps a private registry.
    """
    san = Sanitizer(metrics=metrics)
    _state["san"] = san
    _state["initialized"] = True
    return san


def disable():
    """Turn the sanitizer off (blocks created later are unwatched)."""
    _state["san"] = None
    _state["initialized"] = True


class sanitize_scope:
    """Context manager enabling the sanitizer for a ``with`` block.

    Mostly for tests: restores the previous global state on exit and
    exposes the scoped sanitizer as the ``as`` target.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        self.sanitizer = None
        self._previous = None

    def __enter__(self):
        self._previous = (_state["san"], _state["initialized"])
        self.sanitizer = enable(metrics=self.metrics)
        return self.sanitizer

    def __exit__(self, exc_type, exc, tb):
        _state["san"], _state["initialized"] = self._previous
        return False
