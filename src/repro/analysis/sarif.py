"""SARIF 2.1.0 output for PCSan findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard code-scanning tools emit so CI surfaces (GitHub code scanning,
IDE problem panes) can ingest findings without bespoke parsers.  The
CI lint job runs ``python -m repro.analysis lint --format sarif`` and
uploads the result with ``github/codeql-action/upload-sarif``, putting
PC rule hits on the PR's Security tab with file/line anchors.

Only the slice of the (large) SARIF schema this tool produces is
modeled: one run, one driver, its rule catalog, and per-finding
results with a single physical location each.  :func:`validate_sarif`
checks exactly that slice — it is the contract the emitter is tested
against, independent of any external schema file.
"""

from __future__ import annotations

import json

from repro.analysis.lint import iter_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: pcsan severity is uniform: every finding is a rule violation the
#: build gates on, which SARIF spells "error".
_LEVEL = "error"


def to_sarif(findings, tool_version="1.0.0"):
    """Build the SARIF 2.1.0 document (a dict) for ``findings``."""
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _LEVEL},
        }
        for code, name, summary in iter_rules()
    ]
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for finding in findings:
        region = {
            "startLine": finding.line,
            "startColumn": finding.col + 1,  # SARIF columns are 1-based
        }
        if finding.end_line > finding.line:
            region["endLine"] = finding.end_line
        result = {
            "ruleId": finding.code,
            "level": _LEVEL,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": region,
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pcsan",
                        "informationUri":
                            "https://github.com/plinycompute/plinycompute",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def format_sarif(findings, tool_version="1.0.0"):
    """The SARIF document as a JSON string (what ``--format sarif`` prints)."""
    return json.dumps(to_sarif(findings, tool_version=tool_version), indent=2)


def validate_sarif(document):
    """Check ``document`` against the SARIF 2.1.0 slice this tool emits.

    Returns the list of problems found (empty means valid).  Kept
    dependency-free on purpose: the full OASIS schema needs a network
    fetch, and the emitter only ever produces this subset anyway.
    """
    problems = []

    def need(obj, key, types, where):
        value = obj.get(key)
        if not isinstance(value, types):
            problems.append("%s.%s missing or not %s" % (
                where, key,
                getattr(types, "__name__", "/".join(
                    t.__name__ for t in types
                ) if isinstance(types, tuple) else str(types)),
            ))
            return None
        return value

    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("version") != SARIF_VERSION:
        problems.append("version is not %r" % SARIF_VERSION)
    runs = need(document, "runs", list, "document")
    for run_index, run in enumerate(runs or []):
        where = "runs[%d]" % run_index
        if not isinstance(run, dict):
            problems.append("%s is not an object" % where)
            continue
        tool = need(run, "tool", dict, where) or {}
        driver = need(tool, "driver", dict, where + ".tool") or {}
        need(driver, "name", str, where + ".tool.driver")
        for rule_index, rule in enumerate(driver.get("rules") or []):
            rwhere = "%s.tool.driver.rules[%d]" % (where, rule_index)
            if isinstance(rule, dict):
                need(rule, "id", str, rwhere)
            else:
                problems.append("%s is not an object" % rwhere)
        results = need(run, "results", list, where)
        for result_index, result in enumerate(results or []):
            rwhere = "%s.results[%d]" % (where, result_index)
            if not isinstance(result, dict):
                problems.append("%s is not an object" % rwhere)
                continue
            need(result, "ruleId", str, rwhere)
            message = need(result, "message", dict, rwhere) or {}
            need(message, "text", str, rwhere + ".message")
            for loc_index, location in enumerate(
                result.get("locations") or []
            ):
                lwhere = "%s.locations[%d]" % (rwhere, loc_index)
                if not isinstance(location, dict):
                    problems.append("%s is not an object" % lwhere)
                    continue
                physical = need(
                    location, "physicalLocation", dict, lwhere
                ) or {}
                artifact = need(
                    physical, "artifactLocation", dict,
                    lwhere + ".physicalLocation",
                ) or {}
                need(
                    artifact, "uri", str,
                    lwhere + ".physicalLocation.artifactLocation",
                )
                region = physical.get("region")
                if region is not None:
                    line = region.get("startLine")
                    if not isinstance(line, int) or line < 1:
                        problems.append(
                            "%s region.startLine is not a positive int"
                            % lwhere
                        )
    return problems
