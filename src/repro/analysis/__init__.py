"""PCSan: static lint + runtime sanitizer for the PC object model.

PlinyCompute's headline guarantee is memory safety *by construction*:
in-place objects, offset-based handles, and deep-copy-on-assign make
dangling cross-block handles impossible.  A Python reproduction enforces
those rules only by convention — nothing stops code from stashing a
:class:`~repro.memory.handle.Handle` past its block's lifetime, poking
``block.buf`` directly, or handing the TCAP optimizer an impure native
lambda.  This package turns the conventions into machine-checked
invariants:

* :mod:`repro.analysis.lint` — an AST lint pass (``python -m
  repro.analysis lint src``) with PC-specific rules PC001–PC009 that
  ruff cannot express (handle escapes, raw ``buf`` access, impure
  native lambdas, counters missing their trace mirror, swallowed
  exceptions in cluster hot paths — plus the path-sensitive
  :mod:`repro.analysis.flowrules`, which run a forward dataflow
  fixpoint over the :mod:`repro.analysis.cfg` control-flow graph to
  catch pin/shm leaks on *some* path and writes after ``seal()``);
* :mod:`repro.analysis.sanitizer` — an opt-in runtime sanitizer
  (``PC_SANITIZE=1`` or ``PCCluster(..., sanitize=True)``) that poisons
  freed regions, stamps generation counters to catch stale handles,
  shadow-checks refcounts, and reports pin leaks and sealed-block
  object leaks through the :mod:`repro.obs` metrics/trace layer.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.lint import (
    Finding,
    apply_baseline,
    iter_rules,
    load_baseline,
    run_lint,
    span_of,
    write_baseline,
)
from repro.analysis.sarif import format_sarif, to_sarif, validate_sarif
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerFinding,
    SanitizerReport,
    current_sanitizer,
    disable,
    enable,
    sanitize_scope,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "Finding",
    "ForwardAnalysis",
    "Sanitizer",
    "SanitizerFinding",
    "SanitizerReport",
    "apply_baseline",
    "build_cfg",
    "current_sanitizer",
    "disable",
    "enable",
    "format_sarif",
    "iter_rules",
    "load_baseline",
    "run_forward",
    "run_lint",
    "sanitize_scope",
    "span_of",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]
