"""AST lint rules for PC-specific invariants (PC001–PC009).

ruff and friends check Python; these rules check *PlinyCompute*.  Each
rule encodes one discipline the simulated object model or the cluster
layer relies on but cannot enforce at runtime without cost:

========  ==============================================================
PC001     ``Handle`` escape from its managing ``AllocationBlock`` scope
          (stored into instance/module state, or returned from inside a
          ``with use_allocation_block(...)`` body).
PC002     Raw ``block.buf`` byte access outside ``repro/memory/`` —
          on-page bytes are :mod:`repro.memory.layout`'s territory.
PC003     Impure lambda passed to ``lambda_from_native`` — I/O,
          nondeterminism, or closure mutation breaks the purity the
          TCAP optimizer assumes when it reorders terms.
PC004     Metrics counter in a mirrored family (``pc_pool_*``,
          ``pc_net_*``, ``pc_repl_*``, ``pc_faults_*``, ``pc_san_*``)
          declared without its ``trace=`` mirror — the single-
          declaration rule the obs layer established.
PC005     Exception-swallowing ``except`` in ``repro/cluster/*`` hot
          paths (body is only ``pass``/``continue``/``break``/bare
          ``return``) — silent failures in the scheduler/network layer
          masquerade as slow or wrong answers.
PC006     Row-path handle access (``.deref()`` / ``make_object*`` /
          ``.facade()``) inside a columnar kernel scope — the kernel
          library and any ``lambda_from_native(kernel=...)`` body must
          stay whole-batch array code; a per-row deref there silently
          serializes the hot loop it exists to vectorize.
PC007     ``pin``/``retain`` without its ``unpin``/``release`` on some
          path to function exit, including exception edges (flow-
          sensitive; see :mod:`repro.analysis.flowrules`).
PC008     ``SharedMemory``/``ShmRegistry`` created but not closed,
          unlinked, or handed off on every path (flow-sensitive).
PC009     Write to a page payload after ``seal()``/``to_bytes()`` on
          any path (flow-sensitive).
========  ==============================================================

A finding is silenced by a trailing ``# pcsan: disable=PCnnn`` comment
on any line of the reported statement — multi-line calls and
parenthesized continuations suppress on whichever line carries the
comment (comma-separate to silence several codes).  Run ``python -m
repro.analysis lint src`` to lint the repo.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re

# -- findings & suppressions --------------------------------------------------


class Finding:
    """One rule violation at a specific source location.

    ``line`` is the anchor the report points at; ``end_line`` extends
    to the statement's last physical line so suppression comments work
    anywhere inside a multi-line statement.  ``snippet`` (the stripped
    anchor line, filled in by :func:`lint_source`) makes baseline
    fingerprints survive unrelated edits above the finding.
    """

    __slots__ = ("code", "message", "path", "line", "col", "end_line",
                 "snippet")

    def __init__(self, code, message, path, line, col=0, end_line=None):
        self.code = code
        self.message = message
        self.path = path
        self.line = line
        self.col = col
        self.end_line = end_line if end_line is not None else line
        self.snippet = ""

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def fingerprint(self):
        """Location-independent identity used by ``--baseline``."""
        text = "%s|%s|%s" % (
            self.code, self.path.replace(os.sep, "/"), self.snippet,
        )
        return hashlib.sha1(text.encode("utf-8")).hexdigest()

    def to_dict(self):
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
        }

    def __repr__(self):
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.code, self.message,
        )


_SUPPRESS_RE = re.compile(r"#\s*pcsan:\s*disable=([A-Z0-9,\s]+)")


def suppressions_of(source):
    """``{line_number: {codes}}`` for every ``# pcsan: disable=`` comment."""
    out = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        if codes:
            out[lineno] = codes
    return out


# -- rule registry ------------------------------------------------------------

_RULES = []


def rule(code, name):
    """Register a checker ``fn(tree, path, source) -> iterable[Finding]``."""
    def wrap(fn):
        _RULES.append((code, name, fn))
        return fn
    return wrap


def iter_rules():
    """Yield ``(code, name, summary)`` for every registered rule."""
    for code, name, fn in _RULES:
        summary = (fn.__doc__ or "").strip().splitlines()[0]
        yield code, name, summary


def _path_parts(path):
    return set(os.path.normpath(path).split(os.sep))


def _root_name(node):
    """The leftmost ``Name`` of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_name(node):
    """Bare name of a call target: ``f(...)`` or ``mod.f(...)`` -> ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def span_of(node):
    """``(first_line, last_line)`` of a node, decorators included.

    ``ast`` anchors a decorated ``def`` at the ``def`` line; for
    suppression purposes the decorator lines are part of the same
    statement.
    """
    first = node.lineno
    for decorator in getattr(node, "decorator_list", ()):
        first = min(first, decorator.lineno)
    return first, getattr(node, "end_lineno", None) or node.lineno


# -- PC001: handle escape -----------------------------------------------------

_MAKERS = {"make_object", "make_object_on"}
_BLOCK_SCOPES = {"use_allocation_block", "makeObjectAllocatorBlock"}


def _is_maker_call(node):
    return isinstance(node, ast.Call) and _call_name(node) in _MAKERS


@rule("PC001", "handle-escape")
def check_handle_escape(tree, path, source):
    """Handle stored or returned past its AllocationBlock's scope."""
    findings = []
    # (a) Handles parked in long-lived state: instance attributes or
    # module globals.  A Handle is only meaningful while its block is
    # alive and resident; stashing one is the Python spelling of the
    # dangling cross-block pointer the paper designs away.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not _is_maker_call(node.value):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                findings.append(Finding(
                    "PC001",
                    "handle from %s() stored into instance state; it "
                    "outlives its allocation block" % _call_name(node.value),
                    path, node.lineno, node.col_offset,
                    end_line=span_of(node)[1],
                ))
    for node in tree.body:
        if isinstance(node, ast.Assign) and _is_maker_call(node.value):
            findings.append(Finding(
                "PC001",
                "handle from %s() bound at module level; it outlives "
                "its allocation block" % _call_name(node.value),
                path, node.lineno, node.col_offset,
                end_line=span_of(node)[1],
            ))
    # (b) Handles returned from inside a `with use_allocation_block(...)`
    # body: the block's scope ends at the `with`, the handle escapes it.
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        if not any(
            isinstance(item.context_expr, ast.Call)
            and _call_name(item.context_expr) in _BLOCK_SCOPES
            for item in node.items
        ):
            continue
        handle_names = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _is_maker_call(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        handle_names.add(target.id)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            escapes = (
                _is_maker_call(sub.value)
                or (isinstance(sub.value, ast.Name)
                    and sub.value.id in handle_names)
            )
            if escapes:
                findings.append(Finding(
                    "PC001",
                    "handle returned from inside its allocation-block "
                    "scope; the block is gone when the caller derefs",
                    path, sub.lineno, sub.col_offset,
                    end_line=span_of(sub)[1],
                ))
    return findings


# -- PC002: raw buf access ----------------------------------------------------


def _is_buf_access(node):
    """``x.buf`` or ``getattr(x, "buf")``."""
    if isinstance(node, ast.Attribute) and node.attr == "buf":
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "getattr"
        and len(node.args) >= 2
        and isinstance(node.args[1], ast.Constant)
        and node.args[1].value == "buf"
    )


def _buf_aliases(tree):
    """Local names bound directly to a buffer access.

    Covers plain assignment (``buf = block.buf``) and tuple unpacking
    (``a, b = page.buf, x`` — ``a`` is the alias); anything wrapped in
    another expression is not a *direct* alias and stays the direct
    finding's problem.
    """
    aliases = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            pairs = []
            if isinstance(target, ast.Name):
                pairs.append((target, node.value))
            elif isinstance(target, ast.Tuple) \
                    and isinstance(node.value, ast.Tuple) \
                    and len(target.elts) == len(node.value.elts):
                pairs.extend(zip(target.elts, node.value.elts))
            for name, value in pairs:
                if isinstance(name, ast.Name) and _is_buf_access(value):
                    aliases.add(name.id)
    return aliases


@rule("PC002", "raw-buf-access")
def check_raw_buf_access(tree, path, source):
    """Raw ``block.buf`` byte access outside the memory layer.

    Any ``.buf`` attribute access counts, not just a direct subscript —
    aliasing the buffer into a local (``buf = block.buf``) is the same
    escape with one more step, as are ``getattr(block, "buf")`` and
    subscripts through a name the buffer was unpacked into.
    """
    if "memory" in _path_parts(path):
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "buf":
            findings.append(Finding(
                "PC002",
                "raw access to block.buf; go through "
                "repro.memory.layout instead",
                path, node.lineno, node.col_offset,
                end_line=getattr(node, "end_lineno", None),
            ))
        elif isinstance(node, ast.Call) and _is_buf_access(node):
            findings.append(Finding(
                "PC002",
                "raw access to block.buf via getattr(); go through "
                "repro.memory.layout instead",
                path, node.lineno, node.col_offset,
                end_line=getattr(node, "end_lineno", None),
            ))
    aliases = _buf_aliases(tree)
    if aliases:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases):
                findings.append(Finding(
                    "PC002",
                    "raw bytes via %r, an alias of block.buf; go "
                    "through repro.memory.layout instead"
                    % node.value.id,
                    path, node.lineno, node.col_offset,
                    end_line=getattr(node, "end_lineno", None),
                ))
    return findings


# -- PC003: impure native lambda ---------------------------------------------

_IMPURE_BUILTINS = {
    "print", "open", "input", "eval", "exec", "exit", "__import__",
}
_IMPURE_MODULES = {
    "random", "time", "os", "sys", "socket", "datetime", "subprocess", "io",
}
_MUTATORS = {
    "append", "extend", "insert", "pop", "remove", "clear", "update",
    "setdefault", "add", "discard", "write", "writelines",
}


def _lambda_impurity(node):
    """Why a lambda body is impure, or None if it looks pure."""
    params = {a.arg for a in (
        node.args.args + node.args.posonlyargs + node.args.kwonlyargs
    )}
    if node.args.vararg is not None:
        params.add(node.args.vararg.arg)
    if node.args.kwarg is not None:
        params.add(node.args.kwarg.arg)
    for sub in ast.walk(node.body):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name) and func.id in _IMPURE_BUILTINS:
            return "calls %s()" % func.id
        if isinstance(func, ast.Attribute):
            root = _root_name(func.value)
            if root in _IMPURE_MODULES:
                return "calls %s.%s()" % (root, func.attr)
            if func.attr in _MUTATORS and root is not None \
                    and root not in params:
                return "mutates closed-over %r via .%s()" % (root, func.attr)
    return None


@rule("PC003", "impure-native-lambda")
def check_impure_native_lambda(tree, path, source):
    """Impure lambda handed to ``lambda_from_native``."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "lambda_from_native":
            continue
        candidates = list(node.args)
        candidates.extend(
            kw.value for kw in node.keywords if kw.arg == "fn"
        )
        for arg in candidates:
            if not isinstance(arg, ast.Lambda):
                continue
            why = _lambda_impurity(arg)
            if why is not None:
                findings.append(Finding(
                    "PC003",
                    "impure native lambda (%s); the TCAP optimizer "
                    "assumes term purity when it reorders" % why,
                    path, arg.lineno, arg.col_offset,
                    end_line=span_of(arg)[1],
                ))
    return findings


# -- PC004: counter without trace mirror -------------------------------------

_MIRRORED_PREFIXES = (
    "pc_pool_", "pc_net_", "pc_repl_", "pc_faults_", "pc_san_", "pc_sup_",
    "pc_trace_",
)


@rule("PC004", "counter-missing-trace")
def check_counter_missing_trace(tree, path, source):
    """Mirrored-family counter declared without ``trace=``."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "counter"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue
        name = first.value
        if not name.startswith(_MIRRORED_PREFIXES):
            continue
        if any(kw.arg == "trace" for kw in node.keywords):
            continue
        findings.append(Finding(
            "PC004",
            "counter %r declared without its trace= mirror; its family "
            "publishes both views from one declaration" % name,
            path, node.lineno, node.col_offset,
            end_line=span_of(node)[1],
        ))
    return findings


# -- PC005: swallowed exceptions in cluster hot paths ------------------------


def _is_trivial_stmt(stmt):
    if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
        return True
    if isinstance(stmt, ast.Return):
        return stmt.value is None or (
            isinstance(stmt.value, ast.Constant) and stmt.value.value is None
        )
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # docstring or `...`
    return False


@rule("PC005", "swallowed-exception")
def check_swallowed_exception(tree, path, source):
    """Exception-swallowing ``except`` in a cluster hot path."""
    if "cluster" not in _path_parts(path):
        return []
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.body and all(_is_trivial_stmt(s) for s in node.body):
            named = ""
            if isinstance(node.type, ast.Name):
                named = " %s" % node.type.id
            findings.append(Finding(
                "PC005",
                "except%s block swallows the error (body is only "
                "pass/continue/break/return); count it, log it, or "
                "let it propagate" % named,
                path, node.lineno, node.col_offset,
                # the header only (a parenthesized exception tuple may
                # wrap) — a comment inside the body must not suppress
                end_line=node.type.end_lineno
                if node.type is not None else None,
            ))
    return findings


# -- PC006: row-path access inside columnar kernels ---------------------------

_ROW_PATH_CALLS = {"deref", "make_object", "make_object_on", "facade"}


def _kernel_scopes(tree, path):
    """AST scopes that must stay whole-batch array code.

    The columnar kernel library (``repro/engine/kernels.py``) counts
    wholesale; elsewhere, every ``kernel=`` argument of a
    ``lambda_from_native`` call counts — inline lambdas directly, named
    functions via their module-level (or nested) definition.
    """
    scopes = []
    if os.path.basename(path) == "kernels.py" \
            and "engine" in _path_parts(path):
        scopes.append(tree)
        return scopes
    defs = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) \
                or _call_name(node) != "lambda_from_native":
            continue
        for keyword in node.keywords:
            if keyword.arg != "kernel":
                continue
            value = keyword.value
            if isinstance(value, ast.Lambda):
                scopes.append(value)
            elif isinstance(value, ast.Name) and value.id in defs:
                scopes.append(defs[value.id])
    return scopes


@rule("PC006", "row-path-in-columnar-kernel")
def check_row_path_in_kernel(tree, path, source):
    """Row-path handle deref inside a columnar kernel scope."""
    findings = []
    seen = set()
    for scope in _kernel_scopes(tree, path):
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_name(sub)
            if name not in _ROW_PATH_CALLS:
                continue
            key = (sub.lineno, sub.col_offset)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "PC006",
                "row-path access %s() inside a columnar kernel; kernels "
                "run whole-batch over array views, and a per-row deref "
                "serializes the loop they vectorize" % name,
                path, sub.lineno, sub.col_offset,
                end_line=span_of(sub)[1],
            ))
    return findings


# -- driver -------------------------------------------------------------------


def _iter_py_files(paths):
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _is_suppressed(finding, suppressed):
    """A disable comment anywhere in the statement's span silences it."""
    last = max(finding.end_line, finding.line)
    for lineno in range(finding.line, last + 1):
        if finding.code in suppressed.get(lineno, ()):
            return True
    return False


def lint_source(source, path, select=None):
    """Run the registered rules over one module's source text."""
    tree = ast.parse(source, filename=path)
    suppressed = suppressions_of(source)
    lines = source.splitlines()
    findings = []
    for code, _name, fn in _RULES:
        if select is not None and code not in select:
            continue
        for finding in fn(tree, path, source):
            if _is_suppressed(finding, suppressed):
                continue
            if 1 <= finding.line <= len(lines):
                finding.snippet = lines[finding.line - 1].strip()
            findings.append(finding)
    return findings


def run_lint(paths, select=None):
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings = []
    for path in _iter_py_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            findings.extend(lint_source(source, path, select=select))
        except SyntaxError as exc:
            findings.append(Finding(
                "PC000", "syntax error: %s" % exc.msg, path,
                exc.lineno or 1, (exc.offset or 1) - 1,
            ))
    findings.sort(key=Finding.sort_key)
    return findings


def format_text(findings):
    lines = [repr(f) for f in findings]
    lines.append(
        "%d finding%s" % (len(findings), "" if len(findings) == 1 else "s")
    )
    return "\n".join(lines)


def format_json(findings):
    return json.dumps(
        {"findings": [f.to_dict() for f in findings],
         "count": len(findings)},
        indent=2, sort_keys=True,
    )


# -- baselines ----------------------------------------------------------------


def write_baseline(findings, path):
    """Snapshot ``findings`` so a later run can gate on *new* ones.

    The snapshot stores content fingerprints (rule code + file +
    stripped source line), not line numbers, so edits elsewhere in a
    file do not invalidate it.
    """
    payload = {
        "version": 1,
        "fingerprints": sorted(f.fingerprint() for f in findings),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise ValueError(
            "unsupported baseline version %r in %s"
            % (payload.get("version"), path)
        )
    return list(payload.get("fingerprints", ()))


def apply_baseline(findings, fingerprints):
    """Drop findings already recorded in the baseline (multiset-wise).

    Each baseline entry absolves at most one finding, so a *second*
    occurrence of an identical line is still reported.
    """
    budget = {}
    for fingerprint in fingerprints:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    fresh = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            continue
        fresh.append(finding)
    return fresh


# The flow-sensitive rules (PC007–PC009) live in their own module on
# top of the CFG/dataflow engine; importing it registers them.  The
# import sits at the bottom because flowrules imports Finding/rule
# from here.
from repro.analysis import flowrules as _flowrules  # noqa: E402,F401
