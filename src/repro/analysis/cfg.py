"""Intra-procedural control-flow graphs over Python ASTs.

PCSan's flow-sensitive rules (PC007–PC009) need to reason about *paths*
— a pin released on the happy path but leaked when a call between
``pin`` and ``unpin`` raises is invisible to single-pass AST matching.
:func:`build_cfg` turns one function body into a graph of
:class:`BasicBlock` nodes with branch, loop, ``try``/``except``/
``finally``, ``with``, and exception edges; :mod:`repro.analysis.
dataflow` runs worklist fixpoints over it.

Design choices, tuned for a practical linter rather than a sound
verifier:

* **Exception edges come only from statements that can visibly raise**
  — ones containing a call, a ``raise``, or an ``assert``.  Attribute
  and subscript access between an acquire and a release therefore does
  not manufacture a leak path; calls do.  Each such statement ends its
  basic block, so the raising statement is always the *last* statement
  of its block and the dataflow engine can give its exception edge a
  different transfer than its fall-through edge.
* **``finally`` bodies are built once** and act as a join point: every
  way of leaving the ``try`` (fall-through, handled or unhandled
  exception, ``return``/``break``/``continue``) routes through the
  ``finally`` entry, and its exit fans out to all recorded
  continuations.  That merges states that a path-sensitive engine
  would keep apart — a deliberate over-approximation that can only
  *suppress* findings, never invent them.
* **Nested ``def``/``class`` bodies are opaque**: the definition
  statement occupies a block like any other, but control never enters
  the nested body — each function gets its own CFG.

Unreachable statements (after ``return``/``raise``/``break``) still
land in a block of their own so that every statement of the function is
covered by exactly one block; the dead block simply has no in-edges.
"""

from __future__ import annotations

import ast

#: edge kinds; "except" edges are taken when the source block's last
#: statement raises, every other kind is a normal-completion edge.
EDGE_NORMAL = "normal"
EDGE_TRUE = "true"
EDGE_FALSE = "false"
EDGE_LOOP = "loop"
EDGE_EXCEPT = "except"


class BasicBlock:
    """A straight-line run of statements with labelled out-edges."""

    __slots__ = ("block_id", "statements", "edges")

    def __init__(self, block_id):
        self.block_id = block_id
        self.statements = []
        #: list of ``(target_block_id, kind)`` pairs
        self.edges = []

    def successors(self):
        return [target for target, _kind in self.edges]

    def __repr__(self):
        return "<block %d: %d stmts -> %s>" % (
            self.block_id, len(self.statements),
            sorted(set(self.successors())),
        )


class CFG:
    """Blocks plus three distinguished nodes: entry, exit, raise-exit.

    ``exit`` collects normal function completion (fall-through and
    ``return``); ``raises`` collects exceptions that escape the
    function.  Both are empty sentinel blocks.
    """

    def __init__(self):
        self.blocks = {}
        self._next_id = 0
        self.entry = self.new_block().block_id
        self.exit = self.new_block().block_id
        self.raises = self.new_block().block_id

    def new_block(self):
        block = BasicBlock(self._next_id)
        self._next_id += 1
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, source, target, kind=EDGE_NORMAL):
        self.blocks[source].edges.append((target, kind))

    def predecessors(self):
        """``{block_id: [(pred_id, kind)]}`` over all edges."""
        preds = {block_id: [] for block_id in self.blocks}
        for block in self.blocks.values():
            for target, kind in block.edges:
                preds[target].append((block.block_id, kind))
        return preds

    def reachable(self):
        """Block ids reachable from the entry block."""
        seen = set()
        stack = [self.entry]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(self.blocks[block_id].successors())
        return seen

    def statements(self):
        """Every statement recorded in any block (reachable or not)."""
        out = []
        for block_id in sorted(self.blocks):
            out.extend(self.blocks[block_id].statements)
        return out


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def _contains_call(node):
    """True when evaluating ``node`` may invoke arbitrary code.

    Calls inside nested function/class/lambda bodies are definitions,
    not invocations, and do not count.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(current, _SCOPE_NODES):
            continue
        if isinstance(current, (ast.Call, ast.Raise, ast.Await)):
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def may_raise(stmt):
    """True when ``stmt`` gets an exception edge in the CFG."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return False
    return _contains_call(stmt)


class _FinallyFrame:
    """One active ``finally`` clause while its ``try``/handlers build.

    Control that leaves the protected region records its real target
    here and jumps to ``entry`` instead; once the ``finally`` body is
    built, its exit fans out to every recorded target.
    """

    __slots__ = ("entry", "targets")

    def __init__(self, entry):
        self.entry = entry
        self.targets = set()


class _Builder:
    def __init__(self, cfg):
        self.cfg = cfg
        #: stack of (continue_target, break_target, finally_depth)
        self.loops = []
        #: stack of exception-target block ids (innermost last)
        self.handlers = []
        self.finallies = []

    # -- routing helpers ----------------------------------------------------

    def exc_target(self):
        if self.handlers:
            return self.handlers[-1]
        return self.cfg.raises

    def _jump(self, source, target, min_finally_depth=0):
        """Edge ``source -> target``, routed through an open ``finally``.

        ``min_finally_depth`` is the finally-stack depth at which the
        target lives; frames above it sit between the jump and the
        target and must run first.  Only the innermost intervening
        frame is entered — its exit fans out, over-approximating
        nested-``finally`` ordering.
        """
        if len(self.finallies) > min_finally_depth:
            frame = self.finallies[-1]
            frame.targets.add(target)
            self.cfg.add_edge(source, frame.entry)
        else:
            self.cfg.add_edge(source, target)

    # -- statement dispatch -------------------------------------------------

    def build(self, stmts, current):
        """Append ``stmts`` starting at block ``current``.

        Returns the block open after the last statement, or None when
        control cannot fall through (the suite ended in ``return``/
        ``raise``/``break``/``continue`` on every path).
        """
        for stmt in stmts:
            if current is None:
                # Dead code: park it in an unreachable block so every
                # statement still belongs to exactly one block.
                current = self.cfg.new_block().block_id
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt, current):
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Return):
            self._append(stmt, current)
            self._jump(current, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            self._append(stmt, current)
            self.cfg.add_edge(current, self.exc_target(), EDGE_EXCEPT)
            return None
        if isinstance(stmt, ast.Break):
            self._append(stmt, current)
            _cont, brk, depth = self.loops[-1] if self.loops else \
                (None, self.cfg.exit, 0)
            self._jump(current, brk, depth)
            return None
        if isinstance(stmt, ast.Continue):
            self._append(stmt, current)
            cont, _brk, depth = self.loops[-1] if self.loops else \
                (self.cfg.exit, None, 0)
            self._jump(current, cont, depth)
            return None
        # Simple statement (incl. nested def/class definitions).
        self._append(stmt, current)
        if may_raise(stmt):
            self.cfg.add_edge(current, self.exc_target(), EDGE_EXCEPT)
            after = self.cfg.new_block()
            self.cfg.add_edge(current, after.block_id)
            return after.block_id
        return current

    def _append(self, stmt, block_id):
        self.cfg.blocks[block_id].statements.append(stmt)

    # -- compound statements ------------------------------------------------

    def _if(self, stmt, current):
        self._append(stmt, current)
        if _contains_call(stmt.test):
            self.cfg.add_edge(current, self.exc_target(), EDGE_EXCEPT)
        after = self.cfg.new_block().block_id
        then_entry = self.cfg.new_block().block_id
        self.cfg.add_edge(current, then_entry, EDGE_TRUE)
        then_end = self.build(stmt.body, then_entry)
        if then_end is not None:
            self.cfg.add_edge(then_end, after)
        if stmt.orelse:
            else_entry = self.cfg.new_block().block_id
            self.cfg.add_edge(current, else_entry, EDGE_FALSE)
            else_end = self.build(stmt.orelse, else_entry)
            if else_end is not None:
                self.cfg.add_edge(else_end, after)
        else:
            self.cfg.add_edge(current, after, EDGE_FALSE)
        return after

    def _loop(self, stmt, current):
        header = self.cfg.new_block()
        header.statements.append(stmt)
        self.cfg.add_edge(current, header.block_id)
        guard = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _contains_call(guard):
            self.cfg.add_edge(header.block_id, self.exc_target(),
                              EDGE_EXCEPT)
        after = self.cfg.new_block().block_id
        body_entry = self.cfg.new_block().block_id
        self.cfg.add_edge(header.block_id, body_entry, EDGE_TRUE)
        self.loops.append((header.block_id, after, len(self.finallies)))
        body_end = self.build(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, header.block_id, EDGE_LOOP)
        if stmt.orelse:
            else_entry = self.cfg.new_block().block_id
            self.cfg.add_edge(header.block_id, else_entry, EDGE_FALSE)
            else_end = self.build(stmt.orelse, else_entry)
            if else_end is not None:
                self.cfg.add_edge(else_end, after)
        else:
            self.cfg.add_edge(header.block_id, after, EDGE_FALSE)
        return after

    def _with(self, stmt, current):
        self._append(stmt, current)
        if any(_contains_call(item.context_expr) for item in stmt.items):
            self.cfg.add_edge(current, self.exc_target(), EDGE_EXCEPT)
        body_entry = self.cfg.new_block().block_id
        self.cfg.add_edge(current, body_entry)
        body_end = self.build(stmt.body, body_entry)
        if body_end is None:
            return None
        after = self.cfg.new_block().block_id
        self.cfg.add_edge(body_end, after)
        return after

    def _try(self, stmt, current):
        after = self.cfg.new_block().block_id
        frame = None
        if stmt.finalbody:
            frame = _FinallyFrame(self.cfg.new_block().block_id)
            self.finallies.append(frame)

        # Exceptions in the protected body dispatch to the handlers.
        dispatch = self.cfg.new_block().block_id
        body_entry = self.cfg.new_block().block_id
        self.cfg.add_edge(current, body_entry)
        self.handlers.append(dispatch)
        body_end = self.build(stmt.body, body_entry)
        self.handlers.pop()
        if body_end is not None and stmt.orelse:
            body_end = self.build(stmt.orelse, body_end)
        if body_end is not None:
            self._jump(body_end, after, len(self.finallies) - 1
                       if frame else len(self.finallies))

        # One entry block per handler; the dispatch block fans out to
        # all of them plus the propagate-outward edge (the raised type
        # is not tracked, so every handler is a may-target).  With a
        # ``finally`` present, both the unmatched-exception path and any
        # exception raised inside a handler run the finally body first.
        outer = self.cfg.raises if not self.handlers else self.handlers[-1]
        if frame is not None:
            frame.targets.add(outer)
            handler_exc = frame.entry
            self.cfg.add_edge(dispatch, frame.entry)
        else:
            handler_exc = outer
            self.cfg.add_edge(dispatch, outer)
        for handler in stmt.handlers:
            handler_entry = self.cfg.new_block().block_id
            self.cfg.add_edge(dispatch, handler_entry)
            self.handlers.append(handler_exc)
            handler_end = self.build(handler.body, handler_entry)
            self.handlers.pop()
            if handler_end is not None:
                self._jump(handler_end, after, len(self.finallies) - 1
                           if frame else len(self.finallies))

        if frame is not None:
            self.finallies.pop()
            fin_end = self.build(stmt.finalbody, frame.entry)
            if fin_end is not None:
                for target in sorted(frame.targets):
                    self.cfg.add_edge(fin_end, target)
        return after


def build_cfg(node):
    """Build the CFG of one function (or module) body.

    ``node`` is an ``ast.FunctionDef``/``AsyncFunctionDef`` (the usual
    case) or any node with a ``body`` list of statements.
    """
    cfg = CFG()
    builder = _Builder(cfg)
    end = builder.build(list(node.body), cfg.entry)
    if end is not None:
        cfg.add_edge(end, cfg.exit)
    return cfg
