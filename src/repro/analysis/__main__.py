"""CLI for the PC analysis tools.

``python -m repro.analysis lint [PATH ...]`` lints the given paths
(default ``src``) with rules PC001–PC009 and exits non-zero when any
finding survives suppression and the baseline.  ``--format sarif``
emits SARIF 2.1.0 for CI code-scanning upload; ``--write-baseline``
snapshots the current findings so ``--baseline`` can gate on *new*
findings only.  ``python -m repro.analysis verify PLAN.tcap``
statically type-checks a textual TCAP plan, and ``rules`` lists the
rule catalog.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import (
    apply_baseline,
    format_json,
    format_text,
    iter_rules,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.sarif import format_sarif


def _emit(report, output):
    if output is None:
        print(report)
    else:
        with open(output, "w") as handle:
            handle.write(report + "\n")


def _lint(args, parser):
    select = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
    findings = run_lint(args.paths, select=select)
    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print("baseline of %d finding%s written to %s" % (
            len(findings), "" if len(findings) == 1 else "s",
            args.write_baseline,
        ))
        return 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            parser.error("cannot read baseline %s: %s"
                         % (args.baseline, error))
        findings = apply_baseline(findings, known)
    if args.format == "json":
        _emit(format_json(findings), args.output)
    elif args.format == "sarif":
        _emit(format_sarif(findings), args.output)
    elif findings:
        _emit(format_text(findings), args.output)
    else:
        _emit("0 findings", args.output)
    return 1 if findings else 0


def _verify(args):
    from repro.errors import PlanTypeError, TcapError
    from repro.tcap.parser import parse_tcap
    from repro.tcap.verify import verify_program

    try:
        with open(args.plan) as handle:
            text = handle.read()
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    try:
        program = parse_tcap(text)
        types = verify_program(program)
    except PlanTypeError as error:
        print("plan type error: %s" % error, file=sys.stderr)
        return 1
    except TcapError as error:
        print("tcap error: %s" % error, file=sys.stderr)
        return 1
    print("OK: %d statements, %d vector lists, %d columns typed" % (
        len(program), len(types.env), types.columns_typed(),
    ))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="PC-specific static analysis (PCSan lint, plan verify).",
    )
    sub = parser.add_subparsers(dest="command")

    lint_parser = sub.add_parser("lint", help="run rules PC001-PC009")
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint_parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline snapshot",
    )
    lint_parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write a baseline snapshot of current findings and exit 0",
    )

    verify_parser = sub.add_parser(
        "verify", help="statically type-check a textual TCAP plan",
    )
    verify_parser.add_argument("plan", help="path to a .tcap plan file")

    sub.add_parser("rules", help="list the rule catalog")

    args = parser.parse_args(argv)
    if args.command == "rules":
        for code, name, summary in iter_rules():
            print("%s  %-24s %s" % (code, name, summary))
        return 0
    if args.command == "verify":
        return _verify(args)
    if args.command != "lint":
        parser.print_help()
        return 2
    return _lint(args, parser)


if __name__ == "__main__":
    sys.exit(main())
