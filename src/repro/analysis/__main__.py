"""CLI for the PC analysis tools.

``python -m repro.analysis lint [PATH ...]`` lints the given paths
(default ``src``) with rules PC001–PC005 and exits non-zero when any
finding survives suppression.  ``python -m repro.analysis rules`` lists
the rule catalog.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import format_json, format_text, iter_rules, run_lint


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="PC-specific static analysis (PCSan lint).",
    )
    sub = parser.add_subparsers(dest="command")

    lint_parser = sub.add_parser("lint", help="run rules PC001-PC005")
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )

    sub.add_parser("rules", help="list the rule catalog")

    args = parser.parse_args(argv)
    if args.command == "rules":
        for code, name, summary in iter_rules():
            print("%s  %-24s %s" % (code, name, summary))
        return 0
    if args.command != "lint":
        parser.print_help()
        return 2

    select = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
    findings = run_lint(args.paths, select=select)
    if args.format == "json":
        print(format_json(findings))
    elif findings:
        print(format_text(findings))
    else:
        print("0 findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
