"""Flow-sensitive PCSan rules (PC007–PC009) on the CFG engine.

These rules run a forward dataflow (:mod:`repro.analysis.dataflow`)
over each function's CFG (:mod:`repro.analysis.cfg`) instead of
pattern-matching the AST, so they see *paths*: an early ``return``
that skips an ``unpin``, a call that can raise between a
``SharedMemory`` create and its ``unlink``, a branch that writes a
page after another branch sealed it.

========  ==============================================================
PC007     ``pin``/``retain`` without the matching ``unpin``/``release``
          on some path to function exit — including exception edges
          (the bug class PR 1 fixed by hand in ``BufferPool._reload``).
          Only functions that *do* release the same resource on some
          path are checked: a function that never releases transfers
          ownership to its caller by design (``pin`` itself, builders
          returning pinned pages), and the sanitizer's runtime
          pin-leak check owns that contract.
PC008     ``SharedMemory``/``ShmRegistry`` created but neither closed,
          unlinked, nor handed off on every path — the fd-leak class
          the shm graveyard sweep papers over at runtime.
PC009     Write to a page payload (``set_root``/``write*``/subscript
          store) after ``seal()``/``to_bytes()`` on any path — a
          cross-process torn-read hazard once the bytes shipped over
          the shm transport.
========  ==============================================================

All three report at the statement that proves the bug (the
acquisition for PC007/PC008, the late write for PC009) and carry the
statement's full line span so multi-line statements suppress cleanly.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    ACQUIRED,
    ResourceAnalysis,
    replay_block,
    run_forward,
)
from repro.analysis.lint import Finding, _path_parts, rule

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def _functions(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _local_stmts(func):
    """Every statement of ``func`` itself, in source order.

    Nested function/class/lambda bodies are separate scopes and are
    not descended into.
    """
    for stmt in func.body:
        yield from _stmt_and_children(stmt)


def _stmt_and_children(stmt):
    yield stmt
    if isinstance(stmt, _SCOPE_NODES):
        return
    for field in ("body", "orelse", "finalbody"):
        for child in getattr(stmt, field, ()):
            yield from _stmt_and_children(child)
    for handler in getattr(stmt, "handlers", ()):
        for child in handler.body:
            yield from _stmt_and_children(child)


def _stmt_expressions(stmt):
    """The expressions a CFG node for ``stmt`` actually evaluates.

    Compound statements occupy a CFG block only for their header; their
    suites live in other blocks, so scanning the whole node would
    credit the header with its body's effects.
    """
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, _SCOPE_NODES) or isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _expr_nodes(stmt):
    for expr in _stmt_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, _SCOPE_NODES):
                # don't look inside lambdas defined in the statement
                continue
            yield node


def _text(node):
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return ast.dump(node)


def _method_call(node, names):
    """``(receiver_node, first_arg_node|None)`` for ``recv.name(...)``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in names):
        return node.func.value, (node.args[0] if node.args else None)
    return None


def _names_loaded(expr):
    """Bare names read by ``expr``, shallow containers included."""
    found = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            found.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Dict):
            stack.extend(v for v in node.values if v is not None)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
    return found


def _chain_texts(node):
    """Source texts of every prefix of an attribute/subscript chain.

    ``block.buf[off]`` yields ``{"block", "block.buf"}`` — how PC009
    matches a subscript store back to the sealed receiver it goes
    through.
    """
    texts = set()
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
        texts.add(_text(node))
    return texts


def _finding(code, message, path, node):
    return Finding(code, message, path, node.lineno, node.col_offset,
                   end_line=getattr(node, "end_lineno", None))


class _ResourceOps:
    """Per-statement acquire/release/escape keys for one function."""

    def __init__(self):
        self.acquires = {}  # id(stmt) -> [(key, stmt)]
        self.releases = {}  # id(stmt) -> [key]
        self.escapes = {}   # id(stmt) -> [key]
        self.acquire_nodes = {}   # key -> first acquiring stmt
        self.released_keys = set()

    def add(self, table, stmt, key):
        table.setdefault(id(stmt), []).append(key)

    def analysis(self):
        return ResourceAnalysis(
            acquires=lambda s: [k for k in self.acquires.get(id(s), ())],
            releases=lambda s: self.releases.get(id(s), ()),
            escapes=lambda s: self.escapes.get(id(s), ()),
        )


def _leak_findings(code, func, ops, path, describe):
    """Run the fixpoint and report keys still held at either exit."""
    if not ops.acquire_nodes:
        return []
    cfg = build_cfg(func)
    analysis = ops.analysis()
    result = run_forward(cfg, analysis)
    findings = []
    for key, node in sorted(
        ops.acquire_nodes.items(), key=lambda kv: kv[1].lineno
    ):
        on_exit = ResourceAnalysis.leaked(result.exit_state, key)
        on_raise = ResourceAnalysis.leaked(result.raise_state, key)
        if not on_exit and not on_raise:
            continue
        if on_exit and on_raise:
            where = "on some path to function exit (including an " \
                    "exception path)"
        elif on_raise:
            where = "when an exception unwinds past it"
        else:
            where = "on some path to function exit"
        findings.append(_finding(
            code, describe(key, where), path, node,
        ))
    return findings


# -- PC007: pin/retain without release on some path ---------------------------

_PAIRS = {"pin": "unpin", "retain": "release"}
_RELEASE_OF = {"unpin": "pin", "release": "retain"}


def _pair_key(family, recv, arg):
    return (family, _text(recv), "" if arg is None else _text(arg))


@rule("PC007", "pin-leak-on-path")
def check_pin_leak(tree, path, source):
    """``pin``/``retain`` unreleased on some path to function exit."""
    if "memory" in _path_parts(path):
        # The object-model internals own refcounts structurally
        # (deep-copy walks retain per slot); pairing is not their
        # contract, the sanitizer's shadow refcounts are.
        return []
    findings = []
    for func in _functions(tree):
        ops = _ResourceOps()
        bound = {}  # local name -> key it holds
        stmts = list(_local_stmts(func))
        # Pass 1: acquisitions (and the names they are bound to).
        for stmt in stmts:
            with_items = []
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                with_items = [item.context_expr for item in stmt.items]
            for node in _expr_nodes(stmt):
                acq = _method_call(node, _PAIRS)
                if acq is None:
                    continue
                key = _pair_key(node.func.attr, acq[0], acq[1])
                ops.add(ops.acquires, stmt, key)
                ops.acquire_nodes.setdefault(key, stmt)
                if node in with_items:
                    # ``with pool.pin(i) as page`` — the context
                    # manager owns the release.
                    ops.add(ops.escapes, stmt, key)
                elif (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.value is node):
                    bound[stmt.targets[0].id] = key
        # Pass 2: releases and ownership transfers (needs the full
        # ``bound`` map, so it cannot share pass 1's loop).
        for stmt in stmts:
            for node in _expr_nodes(stmt):
                rel = _method_call(node, _RELEASE_OF)
                if rel is not None:
                    key = _pair_key(
                        _RELEASE_OF[node.func.attr], rel[0], rel[1],
                    )
                    ops.add(ops.releases, stmt, key)
                    ops.released_keys.add(key)
            # Ownership transfer: the object the acquisition returned
            # is handed to the caller or parked in longer-lived state.
            if isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
                getattr(stmt, "value", None), (ast.Name, ast.Tuple,
                                               ast.Yield, ast.YieldFrom)
            ):
                value = stmt.value
                if isinstance(value, (ast.Yield, ast.YieldFrom)):
                    value = value.value
                if value is not None:
                    for name in _names_loaded(value) & set(bound):
                        ops.add(ops.escapes, stmt, bound[name])
            elif isinstance(stmt, ast.Assign) and any(
                not isinstance(t, ast.Name) for t in stmt.targets
            ):
                for name in _names_loaded(stmt.value) & set(bound):
                    ops.add(ops.escapes, stmt, bound[name])
        # Inconsistency heuristic: only keys this function releases on
        # some path are its responsibility to release on all of them.
        ops.acquire_nodes = {
            key: node for key, node in ops.acquire_nodes.items()
            if key in ops.released_keys
        }
        findings.extend(_leak_findings(
            "PC007", func, ops, path,
            lambda key, where: (
                "%s.%s(%s) has no matching %s.%s(%s) %s; release it in "
                "a finally (or hand ownership off explicitly)" % (
                    key[1], key[0], key[2],
                    key[1], _PAIRS[key[0]], key[2], where,
                )
            ),
        ))
    return findings


# -- PC008: shm segment/registry leak -----------------------------------------

_SHM_CTORS = {"SharedMemory", "ShmRegistry"}
_SHM_CLOSERS = {"close", "unlink"}


def _shm_ctor(node):
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    return name if name in _SHM_CTORS else None


@rule("PC008", "shm-leak-on-path")
def check_shm_leak(tree, path, source):
    """Shared-memory handle not closed/unlinked on every path."""
    findings = []
    for func in _functions(tree):
        ops = _ResourceOps()
        bound = {}
        stmts = list(_local_stmts(func))
        # Pass 1: creations (and the names they are bound to).
        for stmt in stmts:
            with_items = [
                item.context_expr for item in stmt.items
            ] if isinstance(stmt, (ast.With, ast.AsyncWith)) else []
            for node in _expr_nodes(stmt):
                ctor = _shm_ctor(node)
                if ctor is None:
                    continue
                if node in with_items:
                    continue  # the with-block closes it
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.value is node):
                    key = ("shm", stmt.targets[0].id)
                    bound[stmt.targets[0].id] = key
                elif isinstance(stmt, ast.Expr) and stmt.value is node:
                    # Created and dropped on the floor — nothing can
                    # ever close this one.
                    key = ("shm", "<%s@%d>" % (ctor, node.lineno))
                else:
                    # Stored into an attribute/container or passed
                    # straight to a callee: the owner is elsewhere.
                    continue
                ops.add(ops.acquires, stmt, key)
                ops.acquire_nodes.setdefault(key, stmt)
        if not ops.acquire_nodes:
            continue
        # Pass 2: closes and ownership transfers.
        for stmt in stmts:
            for node in _expr_nodes(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SHM_CLOSERS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in bound):
                    ops.add(ops.releases, stmt,
                            bound[node.func.value.id])
                    continue
                # Handing the segment to any callee (directly or inside
                # a container literal) transfers ownership: graveyard
                # registration, attachment lists, _disown().
                if isinstance(node, ast.Call) and _shm_ctor(node) is None:
                    passed = set()
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        passed |= _names_loaded(arg)
                    for name in passed & set(bound):
                        ops.add(ops.escapes, stmt, bound[name])
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                for name in _names_loaded(stmt.value) & set(bound):
                    ops.add(ops.escapes, stmt, bound[name])
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ) and stmt.value.value is not None:
                for name in _names_loaded(stmt.value.value) & set(bound):
                    ops.add(ops.escapes, stmt, bound[name])
            elif isinstance(stmt, ast.Assign) and any(
                not isinstance(t, ast.Name) for t in stmt.targets
            ):
                for name in _names_loaded(stmt.value) & set(bound):
                    ops.add(ops.escapes, stmt, bound[name])
        findings.extend(_leak_findings(
            "PC008", func, ops, path,
            lambda key, where: (
                "shared-memory handle %r is neither closed, unlinked, "
                "nor handed off %s; the fd (and possibly the segment) "
                "leaks" % (key[1], where)
            ),
        ))
    return findings


# -- PC009: write after seal --------------------------------------------------

_SEALERS = {"seal", "to_bytes"}


def _is_write_call(node, sealed_texts):
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return None
    attr = node.func.attr
    if attr != "set_root" and not attr.startswith("write"):
        return None
    recv = _text(node.func.value)
    if recv in sealed_texts:
        return recv
    return None


@rule("PC009", "write-after-seal")
def check_write_after_seal(tree, path, source):
    """Page payload written after ``seal()``/``to_bytes()``."""
    if "memory" in _path_parts(path):
        # seal()/to_bytes() themselves live here, as do the layout
        # writers they are built from.
        return []
    findings = []
    for func in _functions(tree):
        # Pass 1: which receivers get sealed anywhere in the function.
        seal_stmts = {}   # id(stmt) -> [receiver text]
        sealed_texts = set()
        stmts = list(_local_stmts(func))
        for stmt in stmts:
            for node in _expr_nodes(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SEALERS):
                    recv = _text(node.func.value)
                    seal_stmts.setdefault(id(stmt), []).append(recv)
                    sealed_texts.add(recv)
        if not sealed_texts:
            continue
        # Pass 2: rebinding the receiver makes it a fresh, unsealed
        # object again.
        reset_stmts = {}  # id(stmt) -> [receiver text]
        for stmt in stmts:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                targets = [stmt.target]
            for target in targets:
                for text in {_text(target)} | _names_loaded(target):
                    if text in sealed_texts:
                        reset_stmts.setdefault(id(stmt), []).append(text)
        analysis = ResourceAnalysis(
            acquires=lambda s: seal_stmts.get(id(s), ()),
            releases=lambda s: reset_stmts.get(id(s), ()),
        )
        cfg = build_cfg(func)
        result = run_forward(cfg, analysis)
        reported = set()

        def visit(stmt, state, _path=path, _out=findings,
                  _sealed=sealed_texts, _seen=reported):
            writes = []
            for node in _expr_nodes(stmt):
                recv = _is_write_call(node, _sealed)
                if recv is not None:
                    writes.append((recv, node))
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                stores = stmt.targets if isinstance(
                    stmt, ast.Assign
                ) else [stmt.target]
                for store in stores:
                    if isinstance(store, ast.Subscript):
                        for text in _chain_texts(store) & _sealed:
                            writes.append((text, store))
            for text, where in writes:
                statuses = state.get(text)
                if statuses is None or ACQUIRED not in statuses:
                    continue
                key = (text, where.lineno, where.col_offset)
                if key in _seen:
                    continue
                _seen.add(key)
                _out.append(_finding(
                    "PC009",
                    "write to %r after seal()/to_bytes(); readers "
                    "in other processes may see the torn page"
                    % text, _path, where,
                ))

        for block_id in cfg.reachable():
            replay_block(cfg, analysis, result, block_id, visit)
    return findings
