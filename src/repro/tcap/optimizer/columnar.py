"""Columnar-eligibility marking: lower pure subgraphs onto array kernels.

:func:`mark_columnar` is an annotation pass, not a rewrite rule: it walks
the program once in statement order, tracking which vector lists still
carry array-typed columns, and stamps ``info["columnar"] = "1"`` on every
statement the kernel library (:mod:`repro.engine.kernels`) can execute
whole-batch.  The first ineligible statement on a chain is the *fallback
boundary*: its output vector list leaves the tracked set, the engine
reifies the batch there, and everything downstream runs on the ordinary
object path.

Eligibility rules:

* ``SCAN`` of a set stored with ``layout="columnar"`` (the schema comes
  from the catalog via the ``layout_of`` callback);
* ``APPLY`` of *transparent* terms over tracked columns — attribute
  access naming a schema column, identity (self), constants,
  comparisons, arithmetic, boolean connectives — plus
  ``nativeLambda`` terms that declared a
  whole-batch kernel (``lambda_from_native(kernel=...)``; the kernel
  must satisfy the PCSan PC003 purity discipline);
* ``FILTER`` whose mask column is array-typed;
* ``AGGREGATE`` whose computation declares ``reduce = "sum"`` over
  numeric key/value columns.

``HASH``/``JOIN``/``FLATTEN``, method calls, and un-kernelized native
lambdas are opaque to the array engine and always start a fallback
boundary.
"""

from __future__ import annotations

from repro.tcap.ir import AggregateStmt, ApplyStmt, FilterStmt, ScanStmt

#: APPLY info types executable as ufuncs over numeric columns.
_NUMERIC_KINDS = (
    "comparison", "equalityCheck", "arithmetic", "bool_and", "bool_or",
)

#: the numeric-column tag; rows columns are tagged with their schema names
_NUM = "num"


def _is_rows(tag):
    return isinstance(tag, frozenset)


def _mark(statement):
    statement.info["columnar"] = "1"


def mark_columnar(program, layout_of):
    """Annotate ``program`` in place; returns the number of marked stmts.

    ``layout_of(database, set_name)`` returns the set's
    :class:`repro.schema.Schema` when it is stored columnar, else None.
    """
    marked = 0
    col_tags = {}  # vlist name -> {column name -> _NUM | frozenset(schema)}
    for statement in program.statements:
        if isinstance(statement, ScanStmt):
            schema = layout_of(statement.database, statement.set_name)
            if schema is not None:
                _mark(statement)
                marked += 1
                col_tags[statement.output] = {
                    statement.column: frozenset(schema.names())
                }
            continue
        if isinstance(statement, ApplyStmt):
            tags = col_tags.get(statement.input_name)
            if tags is None:
                continue
            out_tag = _apply_output_tag(program, statement, tags)
            if out_tag is None:
                continue  # fallback boundary: output vlist untracked
            _mark(statement)
            marked += 1
            out_tags = {
                name: tags[name] for name in statement.copy_columns
            }
            out_tags[statement.new_column] = out_tag
            col_tags[statement.output] = out_tags
            continue
        if isinstance(statement, FilterStmt):
            tags = col_tags.get(statement.input_name)
            if tags is None or tags.get(statement.bool_column) != _NUM:
                continue
            _mark(statement)
            marked += 1
            col_tags[statement.output] = {
                name: tags[name] for name in statement.copy_columns
            }
            continue
        if isinstance(statement, AggregateStmt):
            tags = col_tags.get(statement.input_name)
            comp = program.computations.get(statement.computation)
            if (
                tags is not None
                and tags.get(statement.key_column) == _NUM
                and tags.get(statement.value_column) == _NUM
                and getattr(comp, "reduce", None) == "sum"
            ):
                _mark(statement)
                marked += 1
            # grouped results materialize as plain lists either way, so
            # the aggregate's output is never tracked downstream.
            continue
        # HASH / JOIN / FLATTEN / OUTPUT and anything unknown: opaque.
    return marked


def _apply_output_tag(program, statement, tags):
    """The produced column's tag when the APPLY is eligible, else None."""
    info = statement.info
    kind = info.get("type")
    inputs = [tags.get(name) for name in statement.apply_columns]
    if kind == "attAccess":
        if len(inputs) == 1 and _is_rows(inputs[0]) \
                and info.get("attName") in inputs[0]:
            return _NUM
        return None
    if kind == "self":
        # Identity: the produced column is whatever came in (rows or num).
        if len(inputs) == 1 and inputs[0] is not None:
            return inputs[0]
        return None
    if kind == "constant":
        if isinstance(info.get("value"), (bool, int, float)):
            return _NUM
        return None
    if kind in _NUMERIC_KINDS:
        if len(inputs) == 2 and all(tag == _NUM for tag in inputs):
            return _NUM
        return None
    if kind == "bool_not":
        if len(inputs) == 1 and inputs[0] == _NUM:
            return _NUM
        return None
    if kind == "nativeLambda":
        has_kernel = (statement.computation, statement.stage) in \
            getattr(program, "kernels", {})
        if info.get("kernelized") == "1" and has_kernel \
                and all(tag is not None for tag in inputs):
            return _NUM
        return None
    return None
