"""The TCAP optimizer: fire rewrite rules to a fixpoint (Section 7).

The paper's optimizer is a Prolog rule base whose transformations fire
iteratively until the plan cannot be improved further; :func:`optimize`
is the Python equivalent.
"""

from __future__ import annotations

from repro.errors import TcapError
from repro.tcap.optimizer.columnar import mark_columnar
from repro.tcap.optimizer.rules import (
    DEFAULT_RULES,
    eliminate_dead_columns,
    eliminate_dead_statements,
    eliminate_redundant_applies,
    push_filter_below_join,
    split_and_filter,
)

__all__ = [
    "DEFAULT_RULES",
    "eliminate_dead_columns",
    "eliminate_dead_statements",
    "eliminate_redundant_applies",
    "mark_columnar",
    "optimize",
    "push_filter_below_join",
    "split_and_filter",
]


def optimize(program, rules=None, max_iterations=200):
    """Apply ``rules`` repeatedly until none fires; returns the program.

    The program is rewritten in place (statement objects are mutated or
    replaced); the rewritten program is re-validated after every firing so
    a buggy rule fails fast instead of producing a silently-wrong plan.
    """
    rules = DEFAULT_RULES if rules is None else rules
    for _iteration in range(max_iterations):
        fired = False
        for rule in rules:
            if rule(program):
                program.validate()
                fired = True
                break
        if not fired:
            return program
    raise TcapError(
        "optimizer did not reach a fixpoint in %d iterations" % max_iterations
    )
