"""Rule-based TCAP optimizations (Section 7).

The paper implements these in Prolog as transformations fired iteratively
until the plan stops improving; here each rule is a function taking a
:class:`~repro.tcap.ir.TcapProgram` and returning True when it changed the
program.  The rewriter in :mod:`repro.tcap.optimizer` runs the rule list
to a fixpoint.

Implemented rules, in firing order:

1. ``split_and_filter`` — normalize ``FILTER`` over an ``&&`` column into
   two cascaded filters, so conjuncts can be pushed independently.
2. ``eliminate_redundant_applies`` — the paper's redundant-method-call
   rule: two APPLYs of the same (pure) ``methodCall``/``attAccess`` over
   the same data column, one an ancestor of the other, collapse into one;
   the computed column is carried through the intervening statements.
3. ``push_filter_below_join`` — the paper's selection pushdown: a filter
   whose predicate reads columns from only one side of an upstream join
   moves below that join input (before its HASH), shrinking join inputs.
4. ``eliminate_dead_columns`` — drop copied columns no downstream
   statement reads.
5. ``eliminate_dead_statements`` — drop statements whose outputs nothing
   consumes.
"""

from __future__ import annotations

import itertools

from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
    _columns_consumed,
)

_fresh = itertools.count(1)


def _fresh_name(prefix):
    return "%s_opt%d" % (prefix, next(_fresh))


# ---------------------------------------------------------------------------
# Program-shape helpers
# ---------------------------------------------------------------------------

def _producers(program):
    """Map vlist name -> producing statement."""
    return {
        s.output: s
        for s in program.statements
        if not isinstance(s, OutputStmt)
    }

def _consumers(program):
    """Map vlist name -> list of consuming statements."""
    consumers = {}
    for statement in program.statements:
        for name in statement.input_names():
            consumers.setdefault(name, []).append(statement)
    return consumers


def _column_creators(program):
    """Map column name -> the statement that first creates it."""
    creators = {}
    for statement in program.statements:
        if isinstance(statement, ScanStmt):
            creators.setdefault(statement.column, statement)
        elif isinstance(statement, (ApplyStmt, HashStmt, FlattenStmt)):
            creators.setdefault(statement.new_column, statement)
        elif isinstance(statement, AggregateStmt):
            creators.setdefault("key", statement)
            creators.setdefault("val", statement)
    return creators


def _rename_inputs(statement, old_vlist, new_vlist, col_map=None):
    """Point ``statement`` at ``new_vlist`` instead of ``old_vlist``."""
    col_map = col_map or {}

    def rename_col(c):
        return col_map.get(c, c)

    if isinstance(statement, ApplyStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.apply_columns = [rename_col(c) for c in statement.apply_columns]
        statement.copy_columns = [rename_col(c) for c in statement.copy_columns]
    elif isinstance(statement, FilterStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.bool_column = rename_col(statement.bool_column)
        statement.copy_columns = [rename_col(c) for c in statement.copy_columns]
    elif isinstance(statement, HashStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.key_column = rename_col(statement.key_column)
        statement.copy_columns = [rename_col(c) for c in statement.copy_columns]
    elif isinstance(statement, FlattenStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.seq_column = rename_col(statement.seq_column)
        statement.copy_columns = [rename_col(c) for c in statement.copy_columns]
    elif isinstance(statement, JoinStmt):
        if statement.left_input == old_vlist:
            statement.left_input = new_vlist
        if statement.right_input == old_vlist:
            statement.right_input = new_vlist
        statement.left_hash = rename_col(statement.left_hash)
        statement.right_hash = rename_col(statement.right_hash)
        statement.left_columns = [rename_col(c) for c in statement.left_columns]
        statement.right_columns = [rename_col(c) for c in statement.right_columns]
    elif isinstance(statement, AggregateStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.key_column = rename_col(statement.key_column)
        statement.value_column = rename_col(statement.value_column)
    elif isinstance(statement, OutputStmt):
        if statement.input_name == old_vlist:
            statement.input_name = new_vlist
        statement.column = rename_col(statement.column)


# ---------------------------------------------------------------------------
# Rule 1: split && filters
# ---------------------------------------------------------------------------

def split_and_filter(program):
    """Turn ``FILTER(b1 && b2)`` into ``FILTER(b1); FILTER(b2)``."""
    consumers = _consumers(program)
    for index, statement in enumerate(program.statements):
        if not isinstance(statement, FilterStmt):
            continue
        producer = None
        for candidate in program.statements:
            if (
                isinstance(candidate, ApplyStmt)
                and candidate.output == statement.input_name
            ):
                producer = candidate
                break
        if producer is None or producer.info.get("type") != "bool_and":
            continue
        if len(producer.apply_columns) != 2:
            continue
        # Only safe when the && column and the && vlist feed this filter
        # exclusively.
        if len(consumers.get(producer.output, [])) != 1:
            continue
        left_col, right_col = producer.apply_columns
        mid_vlist = _fresh_name("Flt")
        carried = [c for c in producer.copy_columns if c != left_col]
        if right_col not in carried:
            carried.append(right_col)
        first = FilterStmt(
            mid_vlist, producer.input_name, left_col, carried,
            statement.computation, info={"pushed": "split"},
        )
        second = FilterStmt(
            statement.output, mid_vlist, right_col,
            list(statement.copy_columns),
            statement.computation, info=dict(statement.info),
        )
        position = program.statements.index(producer)
        program.statements[position] = first
        program.statements[index] = second
        return True
    return False


# ---------------------------------------------------------------------------
# Rule 2: redundant methodCall / attAccess elimination
# ---------------------------------------------------------------------------

def _path_between(program, ancestor_vlist, descendant_vlist):
    """Statements on the unique producer chain ancestor -> descendant.

    Returns None when no such chain exists or it crosses an AGGREGATE
    (values cannot be carried through an aggregation).
    """
    producers = _producers(program)
    path = []
    current = descendant_vlist
    while current != ancestor_vlist:
        statement = producers.get(current)
        if statement is None or isinstance(statement, (ScanStmt, AggregateStmt)):
            return None
        path.append(statement)
        if isinstance(statement, JoinStmt):
            # Follow whichever side leads to the ancestor.
            for side in (statement.left_input, statement.right_input):
                if _reaches(producers, side, ancestor_vlist):
                    current = side
                    break
            else:
                return None
        else:
            current = statement.input_names()[0]
    path.reverse()
    return path


def _reaches(producers, vlist, target):
    while True:
        if vlist == target:
            return True
        statement = producers.get(vlist)
        if statement is None or not statement.input_names():
            return False
        if isinstance(statement, JoinStmt):
            return _reaches(producers, statement.left_input, target) or \
                _reaches(producers, statement.right_input, target)
        vlist = statement.input_names()[0]


def _carry_column(path, column, on_side_of=None):
    """Add ``column`` to the copied columns of every statement on ``path``."""
    for statement in path:
        if isinstance(statement, JoinStmt):
            if column not in statement.left_columns and \
                    column not in statement.right_columns:
                if on_side_of == "right":
                    statement.right_columns.append(column)
                else:
                    statement.left_columns.append(column)
        elif isinstance(statement, (ApplyStmt, FilterStmt, HashStmt,
                                    FlattenStmt)):
            if column not in statement.output_columns():
                statement.copy_columns.append(column)


def eliminate_redundant_applies(program):
    """Collapse a repeated pure methodCall/attAccess (Section 7, rule 1)."""
    applies = [
        s for s in program.statements
        if isinstance(s, ApplyStmt)
        and s.info.get("type") in ("methodCall", "attAccess")
    ]
    for first, second in itertools.combinations(applies, 2):
        if first.computation != second.computation:
            continue
        if first.info != second.info:
            continue
        if first.apply_columns != second.apply_columns:
            continue
        path = _path_between(program, first.output, second.input_name)
        if path is None:
            continue
        # The first APPLY's result must survive along the whole path; find
        # which join side carries it when the path crosses a join.
        producers = _producers(program)
        side = None
        for statement in path:
            if isinstance(statement, JoinStmt):
                side = "left" if _reaches(
                    producers, statement.left_input, first.output
                ) else "right"
        _carry_column(path, first.new_column, on_side_of=side)
        # Drop the second APPLY: its consumers read from its input vlist
        # and see the first APPLY's column instead.
        program.statements.remove(second)
        col_map = {second.new_column: first.new_column}
        for statement in program.statements:
            _rename_inputs(statement, second.output, second.input_name, col_map)
        return True
    return False


# ---------------------------------------------------------------------------
# Rule 3: push filters below joins
# ---------------------------------------------------------------------------

def _apply_closure(program, bool_column, stop_at_join):
    """The APPLY statements transitively computing ``bool_column``.

    Returns ``(closure_statements, base_columns)`` where base columns are
    the columns read from outside the closure, or None when the closure
    leaves APPLY territory (e.g. a HASH or FLATTEN column).
    """
    creators = _column_creators(program)
    closure = []
    base = set()
    pending = [bool_column]
    seen = set()
    while pending:
        column = pending.pop()
        if column in seen:
            continue
        seen.add(column)
        creator = creators.get(column)
        if creator is None:
            return None
        if isinstance(creator, (ScanStmt,)):
            base.add(column)
            continue
        if not isinstance(creator, ApplyStmt):
            return None
        position_creator = program.statements.index(creator)
        if position_creator < stop_at_join:
            # Created before the join: it is a base column carried through.
            base.add(column)
            continue
        closure.append(creator)
        if creator.info.get("type") == "constant":
            # A constant APPLY's input column is only a row-count
            # reference, not a data dependency; it rebinds freely.
            continue
        pending.extend(creator.apply_columns)
    return closure, base


def push_filter_below_join(program):
    """Move a one-sided post-join filter below the join (Section 7, rule 2)."""
    producers = _producers(program)
    for filt in [s for s in program.statements if isinstance(s, FilterStmt)]:
        if filt.info.get("pushed") == "below-join":
            continue
        # Find the nearest JOIN above the filter along the producer chain.
        join = None
        current = filt.input_name
        while True:
            statement = producers.get(current)
            if statement is None or isinstance(statement, ScanStmt):
                break
            if isinstance(statement, JoinStmt):
                join = statement
                break
            if isinstance(statement, (AggregateStmt, FlattenStmt)):
                break
            current = statement.input_names()[0]
        if join is None:
            continue
        join_position = program.statements.index(join)
        result = _apply_closure(program, filt.bool_column, join_position)
        if result is None:
            continue
        closure, base = result
        if not closure:
            continue
        sides = []
        if base and base <= set(join.left_columns):
            sides.append("left")
        if base and base <= set(join.right_columns):
            sides.append("right")
        if not sides:
            continue
        side = sides[0]
        # Do not push a predicate that rechecks the join key equality
        # itself: its base columns appear on one side only because the key
        # column was copied, but removing it would change semantics if it
        # reads both sides.  (A strictly one-sided predicate reads columns
        # carried from one input, which is exactly the paper's condition.)
        hash_stmt = producers.get(
            join.left_input if side == "left" else join.right_input
        )
        if not isinstance(hash_stmt, HashStmt):
            continue
        source_vlist = hash_stmt.input_name
        source_stmt = producers.get(source_vlist)
        if source_stmt is None:
            continue
        source_columns = source_stmt.output_columns()
        if not base <= set(source_columns):
            continue

        # Clone the closure (in original program order) onto the pre-hash
        # vlist, then filter, then re-point the HASH at the filtered list.
        ordered = [s for s in program.statements if s in closure]
        insert_at = program.statements.index(hash_stmt)
        current_vlist = source_vlist
        current_columns = list(source_columns)
        col_map = {}
        new_statements = []
        for original in ordered:
            new_col = _fresh_name(original.new_column)
            out_vlist = _fresh_name(original.output)
            stage = original.stage + "_pushed%d" % next(_fresh)
            if original.info.get("type") == "constant":
                inputs = [current_columns[0]]
            else:
                inputs = [col_map.get(c, c) for c in original.apply_columns]
            cloned = ApplyStmt(
                out_vlist, current_vlist, inputs,
                list(current_columns), new_col,
                original.computation, stage, info=dict(original.info),
            )
            program.stages[(original.computation, stage)] = program.stages[
                (original.computation, original.stage)
            ]
            new_statements.append(cloned)
            col_map[original.new_column] = new_col
            current_vlist = out_vlist
            current_columns = cloned.output_columns()
        pushed_filter = FilterStmt(
            _fresh_name("Flt"), current_vlist,
            col_map[filt.bool_column], list(source_columns),
            filt.computation, info={"pushed": "below-join"},
        )
        new_statements.append(pushed_filter)
        program.statements[insert_at:insert_at] = new_statements
        hash_stmt.input_name = pushed_filter.output

        # Remove the original filter: consumers read its input directly.
        program.statements.remove(filt)
        for statement in program.statements:
            _rename_inputs(statement, filt.output, filt.input_name)
        return True
    return False


# ---------------------------------------------------------------------------
# Rules 4-5: dead code
# ---------------------------------------------------------------------------

def eliminate_dead_columns(program):
    """Drop copied columns nothing downstream reads."""
    needed = {}  # vlist -> set of columns read by consumers
    for statement in program.statements:
        for vlist, columns in _columns_consumed(statement).items():
            needed.setdefault(vlist, set()).update(columns)
    changed = False
    for statement in program.statements:
        keep = needed.get(statement.output, set())
        if isinstance(statement, (ApplyStmt, HashStmt, FlattenStmt,
                                  FilterStmt)):
            before = list(statement.copy_columns)
            statement.copy_columns = [c for c in before if c in keep]
            changed |= statement.copy_columns != before
        elif isinstance(statement, JoinStmt):
            before = (list(statement.left_columns),
                      list(statement.right_columns))
            statement.left_columns = [
                c for c in statement.left_columns if c in keep
            ]
            statement.right_columns = [
                c for c in statement.right_columns if c in keep
            ]
            changed |= (statement.left_columns,
                        statement.right_columns) != before
    return changed


def eliminate_dead_statements(program):
    """Drop statements whose output nothing consumes."""
    consumed = set()
    for statement in program.statements:
        consumed.update(statement.input_names())
    changed = False
    for statement in list(program.statements):
        if isinstance(statement, OutputStmt):
            continue
        if statement.output not in consumed:
            program.statements.remove(statement)
            changed = True
    return changed


def eliminate_noop_applies(program):
    """Remove APPLYs whose computed column nothing downstream reads.

    Dead-column pruning drops the column from *copies* but the stage would
    still execute — and a pushed-down ``getSalary`` filter must not leave
    a vestigial post-join ``getSalary`` call running.  Such an APPLY is
    deleted and its consumers rewired to its input vector list.
    """
    needed = {}
    for statement in program.statements:
        for vlist, columns in _columns_consumed(statement).items():
            needed.setdefault(vlist, set()).update(columns)
    for statement in list(program.statements):
        if not isinstance(statement, ApplyStmt):
            continue
        used = needed.get(statement.output, set())
        if statement.new_column in used:
            continue
        program.statements.remove(statement)
        for other in program.statements:
            _rename_inputs(other, statement.output, statement.input_name)
        return True
    return False


DEFAULT_RULES = [
    split_and_filter,
    eliminate_redundant_applies,
    push_filter_below_join,
    eliminate_dead_columns,
    eliminate_noop_applies,
    eliminate_dead_statements,
]
