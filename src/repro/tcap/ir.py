"""The TCAP intermediate language (Sections 5.2 and 7).

TCAP (pronounced "tee-cap") is the functional, domain-specific language PC
compiles every computation graph into.  A TCAP program is a DAG of small,
atomic operations over *vector lists* — named bundles of equal-length
columns.  Each statement consumes one (or two, for JOIN) vector lists and
produces a new one, shallow-copying the columns it keeps and appending any
columns it computes.

The statement forms follow the paper's concrete syntax, e.g.::

    WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup),
        'Join_2212', 'att_acc_1',
        [('type', 'attAccess'), ('attName', 'deptName')]);

plus SCAN / HASH / JOIN / FLATTEN / AGGREGATE / OUTPUT forms for the ends
of pipelines.  The key-value ``info`` map on each statement is
informational only at execution time but drives the rule-based optimizer
(redundant-call elimination matches on ``methodName``, pushdown matches on
conjunct structure, ...).
"""

from __future__ import annotations

from repro.errors import TcapError


def _cols(names):
    return "(" + ",".join(names) + ")"


def _info_text(info):
    return "[" + ", ".join(
        "('%s', '%s')" % (key, value) for key, value in info.items()
    ) + "]"


class Statement:
    """Base class for TCAP statements."""

    #: statement keyword in the concrete syntax
    op = "?"

    def __init__(self, output, computation, info=None):
        self.output = output
        self.computation = computation
        self.info = dict(info or {})

    def output_columns(self):
        """Names of the columns in the produced vector list."""
        raise NotImplementedError

    def input_names(self):
        """Names of the vector lists this statement consumes."""
        raise NotImplementedError

    def to_text(self):
        raise NotImplementedError

    def __repr__(self):
        return self.to_text()


class ScanStmt(Statement):
    """``Out(col) <= SCAN('db', 'set', 'Comp')`` — read a stored set."""

    op = "SCAN"

    def __init__(self, output, column, database, set_name, computation,
                 info=None):
        super().__init__(output, computation, info)
        self.column = column
        self.database = database
        self.set_name = set_name

    def output_columns(self):
        return [self.column]

    def input_names(self):
        return []

    def to_text(self):
        return "%s%s <= SCAN('%s', '%s', '%s');" % (
            self.output, _cols([self.column]), self.database, self.set_name,
            self.computation,
        )


class ApplyStmt(Statement):
    """The paper's five-tuple APPLY: run one compiled stage over columns.

    ``new_column`` is appended to the shallow-copied ``copy_columns``.
    """

    op = "APPLY"

    def __init__(self, output, input_name, apply_columns, copy_columns,
                 new_column, computation, stage, info=None):
        super().__init__(output, computation, info)
        self.input_name = input_name
        self.apply_columns = list(apply_columns)
        self.copy_columns = list(copy_columns)
        self.new_column = new_column
        self.stage = stage

    def output_columns(self):
        return self.copy_columns + [self.new_column]

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "%s%s <= APPLY(%s%s, %s%s, '%s', '%s', %s);" % (
            self.output, _cols(self.output_columns()),
            self.input_name, _cols(self.apply_columns),
            self.input_name, _cols(self.copy_columns),
            self.computation, self.stage, _info_text(self.info),
        )


class FilterStmt(Statement):
    """Keep the rows whose boolean column is true."""

    op = "FILTER"

    def __init__(self, output, input_name, bool_column, copy_columns,
                 computation, info=None):
        super().__init__(output, computation, info)
        self.input_name = input_name
        self.bool_column = bool_column
        self.copy_columns = list(copy_columns)

    def output_columns(self):
        return list(self.copy_columns)

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "%s%s <= FILTER(%s(%s), %s%s, '%s', %s);" % (
            self.output, _cols(self.output_columns()),
            self.input_name, self.bool_column,
            self.input_name, _cols(self.copy_columns),
            self.computation, _info_text(self.info),
        )


class HashStmt(Statement):
    """Compute the hash of a key column (prelude to JOIN partitioning)."""

    op = "HASH"

    def __init__(self, output, input_name, key_column, copy_columns,
                 new_column, computation, info=None):
        super().__init__(output, computation, info)
        self.input_name = input_name
        self.key_column = key_column
        self.copy_columns = list(copy_columns)
        self.new_column = new_column

    def output_columns(self):
        return self.copy_columns + [self.new_column]

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "%s%s <= HASH(%s(%s), %s%s, '%s', %s);" % (
            self.output, _cols(self.output_columns()),
            self.input_name, self.key_column,
            self.input_name, _cols(self.copy_columns),
            self.computation, _info_text(self.info),
        )


class JoinStmt(Statement):
    """Hash join of two vector lists on their hash columns.

    The physical choice between a broadcast join and a full hash-partition
    join is *not* encoded here — the physical planner decides from set
    statistics (Section 8.3.2's two-gigabyte rule), keeping TCAP fully
    declarative.
    """

    op = "JOIN"

    def __init__(self, output, left_input, left_hash, left_columns,
                 right_input, right_hash, right_columns, computation,
                 info=None):
        super().__init__(output, computation, info)
        self.left_input = left_input
        self.left_hash = left_hash
        self.left_columns = list(left_columns)
        self.right_input = right_input
        self.right_hash = right_hash
        self.right_columns = list(right_columns)

    def output_columns(self):
        return self.left_columns + self.right_columns

    def input_names(self):
        return [self.left_input, self.right_input]

    def to_text(self):
        return "%s%s <= JOIN(%s(%s), %s%s, %s(%s), %s%s, '%s', %s);" % (
            self.output, _cols(self.output_columns()),
            self.left_input, self.left_hash,
            self.left_input, _cols(self.left_columns),
            self.right_input, self.right_hash,
            self.right_input, _cols(self.right_columns),
            self.computation, _info_text(self.info),
        )


class FlattenStmt(Statement):
    """Expand a column of sequences into one row per element.

    This is how MultiSelectionComp's set-valued projection reaches TCAP;
    copied columns are replicated for every produced element.
    """

    op = "FLATTEN"

    def __init__(self, output, input_name, seq_column, copy_columns,
                 new_column, computation, info=None):
        super().__init__(output, computation, info)
        self.input_name = input_name
        self.seq_column = seq_column
        self.copy_columns = list(copy_columns)
        self.new_column = new_column

    def output_columns(self):
        return self.copy_columns + [self.new_column]

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "%s%s <= FLATTEN(%s(%s), %s%s, '%s', %s);" % (
            self.output, _cols(self.output_columns()),
            self.input_name, self.seq_column,
            self.input_name, _cols(self.copy_columns),
            self.computation, _info_text(self.info),
        )


class AggregateStmt(Statement):
    """Grouped aggregation of a value column by a key column."""

    op = "AGGREGATE"

    def __init__(self, output, input_name, key_column, value_column,
                 computation, info=None):
        super().__init__(output, computation, info)
        self.input_name = input_name
        self.key_column = key_column
        self.value_column = value_column

    def output_columns(self):
        return ["key", "val"]

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "%s(key,val) <= AGGREGATE(%s(%s), %s(%s), '%s', %s);" % (
            self.output,
            self.input_name, self.key_column,
            self.input_name, self.value_column,
            self.computation, _info_text(self.info),
        )


class OutputStmt(Statement):
    """Write a column of objects (or aggregate pairs) to a stored set."""

    op = "OUTPUT"

    def __init__(self, input_name, column, database, set_name, computation,
                 info=None):
        super().__init__("OUT_" + computation, computation, info)
        self.input_name = input_name
        self.column = column
        self.database = database
        self.set_name = set_name

    def output_columns(self):
        return []

    def input_names(self):
        return [self.input_name]

    def to_text(self):
        return "OUTPUT(%s(%s), '%s', '%s', '%s');" % (
            self.input_name, self.column, self.database, self.set_name,
            self.computation,
        )


class TcapProgram:
    """A TCAP program: ordered statements plus the compiled stage library.

    ``stages`` maps ``(computation_name, stage_name)`` to the vectorized
    callable implementing that pipeline stage (the compiled code the
    paper's template metaprogramming produces).  ``computations`` maps
    computation names back to the originating Computation objects so the
    engine can reach aggregation ``combine`` hooks and reader/writer
    endpoints.
    """

    def __init__(self, statements=None, stages=None, computations=None,
                 kernels=None):
        self.statements = list(statements or [])
        self.stages = dict(stages or {})
        self.computations = dict(computations or {})
        #: ``(computation_name, stage_name)`` -> whole-batch kernel for
        #: stages whose lambda term carries a columnar implementation
        #: (see ``lambda_from_native(kernel=...)``).
        self.kernels = dict(kernels or {})

    def append(self, statement):
        self.statements.append(statement)
        return statement

    def producer_of(self, vlist_name):
        """The statement producing ``vlist_name``."""
        for statement in self.statements:
            if statement.output == vlist_name and not isinstance(
                statement, OutputStmt
            ):
                return statement
        raise TcapError("no producer for vector list %r" % vlist_name)

    def consumers_of(self, vlist_name):
        """All statements consuming ``vlist_name``."""
        return [
            statement
            for statement in self.statements
            if vlist_name in statement.input_names()
        ]

    def stage_fn(self, computation, stage):
        """The compiled stage callable registered for an APPLY."""
        try:
            return self.stages[(computation, stage)]
        except KeyError:
            raise TcapError(
                "no compiled stage %s.%s (text-only TCAP programs cannot "
                "be executed)" % (computation, stage)
            ) from None

    def to_text(self):
        """Render the program in the paper's concrete syntax."""
        return "\n".join(statement.to_text() for statement in self.statements)

    def validate(self):
        """Check that every consumed vector list and column exists."""
        produced = {}
        for statement in self.statements:
            for input_name in statement.input_names():
                if input_name not in produced:
                    raise TcapError(
                        "%s consumes %r before it is produced"
                        % (statement.op, input_name)
                    )
            needed = _columns_consumed(statement)
            for input_name, columns in needed.items():
                missing = set(columns) - set(produced[input_name])
                if missing:
                    raise TcapError(
                        "%s consumes missing columns %s of %r"
                        % (statement.op, sorted(missing), input_name)
                    )
            if not isinstance(statement, OutputStmt):
                produced[statement.output] = statement.output_columns()
        return True

    def __len__(self):
        return len(self.statements)

    def __repr__(self):
        return "<TcapProgram %d statements>" % len(self.statements)


def _columns_consumed(statement):
    """Map input vector-list name -> columns the statement reads."""
    if isinstance(statement, ScanStmt):
        return {}
    if isinstance(statement, ApplyStmt):
        return {
            statement.input_name:
                statement.apply_columns + statement.copy_columns
        }
    if isinstance(statement, FilterStmt):
        return {
            statement.input_name:
                [statement.bool_column] + statement.copy_columns
        }
    if isinstance(statement, HashStmt):
        return {
            statement.input_name:
                [statement.key_column] + statement.copy_columns
        }
    if isinstance(statement, FlattenStmt):
        return {
            statement.input_name:
                [statement.seq_column] + statement.copy_columns
        }
    if isinstance(statement, JoinStmt):
        consumed = {
            statement.left_input:
                [statement.left_hash] + statement.left_columns
        }
        right = [statement.right_hash] + statement.right_columns
        if statement.right_input in consumed:
            consumed[statement.right_input] += right
        else:
            consumed[statement.right_input] = right
        return consumed
    if isinstance(statement, AggregateStmt):
        return {
            statement.input_name:
                [statement.key_column, statement.value_column]
        }
    if isinstance(statement, OutputStmt):
        return {statement.input_name: [statement.column]}
    raise TcapError("unknown statement type %r" % type(statement).__name__)
