"""The TCAP compiler: computation graphs + lambda terms -> TCAP programs.

PC's TCAP compiler calls the user-supplied lambda term construction
functions once per Computation (never per datum!) and flattens the
returned term trees into a DAG of atomic TCAP operations (Section 5).
Each lambda node becomes one APPLY whose compiled stage function is the
node's specialized executor — the Python analogue of the pipeline stages
C++ template metaprogramming generates (Section 5.3).

Joins compile naively, exactly as the paper describes (Section 7): key
extraction + HASH + JOIN, with *every* selection conjunct (re)checked
after the join.  Making the plan good is the optimizer's job — selection
pushdown, redundant-call elimination and dead-column pruning live in
:mod:`repro.tcap.optimizer`.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.errors import TcapError
from repro.core.computation import (
    AggregateComp,
    Computation,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    SelectionComp,
    Writer,
    computation_graph,
)
from repro.core.lambdas import Arg
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
    TcapProgram,
)

_STAGE_SLUGS = {
    "attAccess": "att_acc",
    "methodCall": "method_call",
    "nativeLambda": "native_lambda",
    "constant": "const",
    "self": "self",
}

_COLUMN_PREFIXES = {
    "attAccess": "att",
    "methodCall": "mt",
    "nativeLambda": "nat",
    "constant": "cn",
    "==": "bl",
    "!=": "bl",
    "<": "bl",
    "<=": "bl",
    ">": "bl",
    ">=": "bl",
    "&&": "bl",
    "||": "bl",
    "!": "bl",
    "+": "ar",
    "-": "ar",
    "*": "ar",
    "/": "ar",
}


class TcapCompiler:
    """Compiles a graph of Computations into a :class:`TcapProgram`."""

    def __init__(self):
        self.program = TcapProgram()
        self._vlist_counter = itertools.count(1)
        self._col_counters = defaultdict(itertools.count)
        self._stage_counters = defaultdict(itertools.count)

    # -- public entry point ---------------------------------------------------------

    def compile(self, sinks):
        """Compile all computations feeding ``sinks`` (usually Writers)."""
        if isinstance(sinks, Computation):
            sinks = [sinks]
        outputs = {}  # computation name -> (vlist, column)
        for comp in computation_graph(sinks):
            self.program.computations[comp.name] = comp
            if isinstance(comp, ObjectReader):
                outputs[comp.name] = self._compile_scan(comp)
            elif isinstance(comp, Writer):
                self._compile_output(comp, outputs)
            elif isinstance(comp, JoinComp):
                outputs[comp.name] = self._compile_join(comp, outputs)
            elif isinstance(comp, MultiSelectionComp):
                outputs[comp.name] = self._compile_multi_selection(
                    comp, outputs
                )
            elif isinstance(comp, AggregateComp):
                outputs[comp.name] = self._compile_aggregate(comp, outputs)
            elif isinstance(comp, SelectionComp):
                outputs[comp.name] = self._compile_selection(comp, outputs)
            else:
                raise TcapError(
                    "cannot compile computation type %r"
                    % type(comp).__name__
                )
        self.program.validate()
        return self.program

    # -- naming helpers ----------------------------------------------------------------

    def _new_vlist(self, comp):
        return "%s_v%d" % (comp.name, next(self._vlist_counter))

    def _new_col(self, prefix):
        return "%s%d" % (prefix, next(self._col_counters[prefix]))

    def _new_stage(self, comp, slug):
        return "%s_%d" % (slug, next(self._stage_counters[comp.name]) + 1)

    def _register_stage(self, comp, stage_name, fn):
        self.program.stages[(comp.name, stage_name)] = fn

    # -- lambda term flattening -----------------------------------------------------------

    def _emit_term(self, comp, term, vlist, columns, arg_cols):
        """Flatten ``term`` into APPLY statements.

        ``arg_cols`` maps input index -> column holding that input's
        objects.  Returns ``(vlist, columns, result_column)``.  Shared
        sub-terms (the same LambdaTerm object appearing twice) compile
        once.
        """
        done = {}  # term_id -> column

        for node in term.walk():
            if node.term_id in done:
                continue
            if node.kind == "self":
                done[node.term_id] = arg_cols[node.arg_indices[0]]
                continue
            if node.arg_indices:
                inputs = [arg_cols[i] for i in node.arg_indices]
            else:
                inputs = [done[child.term_id] for child in node.children]
            executor = node.executor()
            if node.kind == "constant":
                value = node.info["value"]
                reference = columns[0]
                inputs = [reference]

                def executor(col, _value=value):
                    return [_value] * len(col)

            new_col = self._new_col(_COLUMN_PREFIXES.get(node.kind, "c"))
            stage = self._new_stage(
                comp, _STAGE_SLUGS.get(node.kind, node.kind)
            )
            out_vlist = self._new_vlist(comp)
            statement = ApplyStmt(
                out_vlist, vlist, inputs, list(columns), new_col,
                comp.name, stage, info=dict(node.info),
            )
            self.program.append(statement)
            self._register_stage(comp, stage, executor)
            if getattr(node, "kernel", None) is not None:
                self.program.kernels[(comp.name, stage)] = node.kernel
            vlist = out_vlist
            columns = statement.output_columns()
            done[node.term_id] = new_col

        return vlist, columns, done[term.term_id]

    def _emit_filter(self, comp, vlist, columns, bool_col, keep_columns):
        out_vlist = self._new_vlist(comp)
        statement = FilterStmt(
            out_vlist, vlist, bool_col, list(keep_columns), comp.name
        )
        self.program.append(statement)
        return out_vlist, statement.output_columns()

    # -- per-computation compilation ----------------------------------------------------------

    def _compile_scan(self, comp):
        column = self._new_col("in")
        vlist = self._new_vlist(comp)
        self.program.append(
            ScanStmt(vlist, column, comp.database, comp.set_name, comp.name)
        )
        return vlist, column

    def _compile_output(self, comp, outputs):
        upstream = comp.upstream()[0]
        vlist, column = outputs[upstream.name]
        self.program.append(
            OutputStmt(vlist, column, comp.database, comp.set_name, comp.name)
        )

    def _input_of(self, comp, outputs, index=0):
        upstream = comp.upstream()[index]
        return outputs[upstream.name]

    def _compile_selection(self, comp, outputs):
        vlist, column = self._input_of(comp, outputs)
        arg_cols = {0: column}
        columns = [column]
        selection = comp.get_selection(Arg(0))
        vlist, columns, bool_col = self._emit_term(
            comp, selection, vlist, columns, arg_cols
        )
        vlist, columns = self._emit_filter(
            comp, vlist, columns, bool_col, [column]
        )
        projection = comp.get_projection(Arg(0))
        vlist, columns, out_col = self._emit_term(
            comp, projection, vlist, columns, arg_cols
        )
        return vlist, out_col

    def _compile_multi_selection(self, comp, outputs):
        vlist, column = self._input_of(comp, outputs)
        arg_cols = {0: column}
        columns = [column]
        selection = comp.get_selection(Arg(0))
        vlist, columns, bool_col = self._emit_term(
            comp, selection, vlist, columns, arg_cols
        )
        vlist, columns = self._emit_filter(
            comp, vlist, columns, bool_col, [column]
        )
        projection = comp.get_projection(Arg(0))
        vlist, columns, seq_col = self._emit_term(
            comp, projection, vlist, columns, arg_cols
        )
        out_col = self._new_col("fl")
        out_vlist = self._new_vlist(comp)
        self.program.append(
            FlattenStmt(
                out_vlist, vlist, seq_col, [], out_col, comp.name,
                info={"type": "flatten"},
            )
        )
        return out_vlist, out_col

    def _compile_aggregate(self, comp, outputs):
        vlist, column = self._input_of(comp, outputs)
        arg_cols = {0: column}
        columns = [column]
        key_term = comp.get_key_projection(Arg(0))
        vlist, columns, key_col = self._emit_term(
            comp, key_term, vlist, columns, arg_cols
        )
        value_term = comp.get_value_projection(Arg(0))
        vlist, columns, val_col = self._emit_term(
            comp, value_term, vlist, columns, arg_cols
        )
        out_vlist = self._new_vlist(comp)
        self.program.append(
            AggregateStmt(
                out_vlist, vlist, key_col, val_col, comp.name,
                info={"type": "aggregate"},
            )
        )
        # Downstream consumers see (key, value) pairs as their objects.
        pair_col = self._new_col("pair")
        pair_vlist = self._new_vlist(comp)
        stage = self._new_stage(comp, "pair_up")
        self.program.append(
            ApplyStmt(
                pair_vlist, out_vlist, ["key", "val"], [], pair_col,
                comp.name, stage, info={"type": "pairUp"},
            )
        )
        self._register_stage(
            comp, stage, lambda keys, vals: list(zip(keys, vals))
        )
        return pair_vlist, pair_col

    def _compile_join(self, comp, outputs):
        arity = comp.arity
        args = [Arg(i) for i in range(arity)]
        selection = comp.get_selection(*args)
        conjuncts = list(selection.conjuncts())

        equality_links = []  # (i, j, term_i, term_j, conjunct)
        residual = []
        for conjunct in conjuncts:
            if conjunct.is_equality and len(conjunct.children) == 2:
                left, right = conjunct.children
                left_deps = left.depends_on()
                right_deps = right.depends_on()
                if (
                    len(left_deps) == 1
                    and len(right_deps) == 1
                    and left_deps != right_deps
                ):
                    (i,) = left_deps
                    (j,) = right_deps
                    equality_links.append((i, j, left, right, conjunct))
                    continue
            residual.append(conjunct)

        input_locs = [
            self._input_of(comp, outputs, index) for index in range(arity)
        ]
        # Self-joins: if the same upstream feeds two input slots, alias the
        # later slot through an identity APPLY so column names stay unique.
        seen_cols = set()
        for index, (in_vlist, in_col) in enumerate(input_locs):
            if in_col in seen_cols:
                alias_col = self._new_col("al")
                alias_vlist = self._new_vlist(comp)
                stage = self._new_stage(comp, "self")
                self.program.append(
                    ApplyStmt(
                        alias_vlist, in_vlist, [in_col], [], alias_col,
                        comp.name, stage, info={"type": "self"},
                    )
                )
                self._register_stage(comp, stage, lambda col: list(col))
                input_locs[index] = (alias_vlist, alias_col)
                in_col = alias_col
            seen_cols.add(in_col)

        # Left-deep join order over the inputs as given; the logical
        # optimizer is free to improve on it later.
        joined = {0}
        vlist, first_col = input_locs[0]
        columns = [first_col]
        arg_cols = {0: first_col}
        remaining = list(range(1, arity))
        # Track used links by identity: lambda terms overload ==, so tuple
        # membership tests would misfire.
        used_link_ids = set()

        while remaining:
            pick = None
            for position, j in enumerate(remaining):
                for link in equality_links:
                    if id(link) in used_link_ids:
                        continue
                    i_dep, j_dep = link[0], link[1]
                    if (i_dep in joined and j_dep == j) or (
                        j_dep in joined and i_dep == j
                    ):
                        pick = (position, j, link)
                        break
                if pick:
                    break
            if pick is None:
                # No equality links this input: cartesian join on a
                # constant key.
                position, j = 0, remaining[0]
                link = None
            else:
                position, j, link = pick
            remaining.pop(position)

            right_vlist, right_col = input_locs[j]
            right_columns = [right_col]
            right_args = {j: right_col}

            if link is not None:
                used_link_ids.add(id(link))
                i_dep, j_dep, left_term, right_term, conjunct = link
                if i_dep in joined:
                    probe_term, build_term = left_term, right_term
                else:
                    probe_term, build_term = right_term, left_term
                vlist, columns, left_key = self._emit_term(
                    comp, probe_term, vlist, columns, arg_cols
                )
                right_vlist, right_columns, right_key = self._emit_term(
                    comp, build_term, right_vlist, right_columns, right_args
                )
                # Equality over hashed keys is rechecked post-join, so a
                # hash collision can never leak a bogus tuple (Section 7).
                residual.append(conjunct)
            else:
                left_key = self._new_col("cn")
                vlist, columns = self._emit_constant_key(
                    comp, vlist, columns, left_key
                )
                right_key = self._new_col("cn")
                right_vlist, right_columns = self._emit_constant_key(
                    comp, right_vlist, right_columns, right_key
                )

            vlist, columns = self._emit_hash_join(
                comp, vlist, columns, left_key,
                right_vlist, right_columns, right_key,
            )
            joined.add(j)
            arg_cols[j] = right_col

        # Equality links that did not serve as a hash key are ordinary
        # post-join predicates.
        for link in equality_links:
            if id(link) not in used_link_ids:
                residual.append(link[4])

        # All conjuncts (including key equalities) checked after the join;
        # the optimizer pushes what it can below the join.
        if residual:
            bool_cols = []
            for conjunct in residual:
                vlist, columns, bool_col = self._emit_term(
                    comp, conjunct, vlist, columns, arg_cols
                )
                bool_cols.append(bool_col)
            combined = bool_cols[0]
            for bool_col in bool_cols[1:]:
                new_col = self._new_col("bl")
                stage = self._new_stage(comp, "&&")
                out_vlist = self._new_vlist(comp)
                statement = ApplyStmt(
                    out_vlist, vlist, [combined, bool_col], list(columns),
                    new_col, comp.name, stage, info={"type": "bool_and"},
                )
                self.program.append(statement)
                self._register_stage(
                    comp, stage,
                    lambda a, b: [bool(x) and bool(y) for x, y in zip(a, b)],
                )
                vlist = out_vlist
                columns = statement.output_columns()
                combined = new_col
            keep = [arg_cols[i] for i in range(arity)]
            vlist, columns = self._emit_filter(
                comp, vlist, columns, combined, keep
            )

        projection = comp.get_projection(*args)
        vlist, columns, out_col = self._emit_term(
            comp, projection, vlist, columns, arg_cols
        )
        return vlist, out_col

    def _emit_constant_key(self, comp, vlist, columns, new_col):
        stage = self._new_stage(comp, "const")
        out_vlist = self._new_vlist(comp)
        statement = ApplyStmt(
            out_vlist, vlist, [columns[0]], list(columns), new_col,
            comp.name, stage, info={"type": "constant", "value": 0},
        )
        self.program.append(statement)
        self._register_stage(comp, stage, lambda col: [0] * len(col))
        return out_vlist, statement.output_columns()

    def _emit_hash_join(self, comp, left_vlist, left_columns, left_key,
                        right_vlist, right_columns, right_key):
        left_hash = self._new_col("hash")
        hashed_left = self._new_vlist(comp)
        self.program.append(
            HashStmt(
                hashed_left, left_vlist, left_key, list(left_columns),
                left_hash, comp.name, info={"type": "hashLeft"},
            )
        )
        right_hash = self._new_col("hash")
        hashed_right = self._new_vlist(comp)
        self.program.append(
            HashStmt(
                hashed_right, right_vlist, right_key, list(right_columns),
                right_hash, comp.name, info={"type": "hashRight"},
            )
        )
        out_vlist = self._new_vlist(comp)
        statement = JoinStmt(
            out_vlist,
            hashed_left, left_hash, list(left_columns),
            hashed_right, right_hash, list(right_columns),
            comp.name, info={"type": "hashJoin"},
        )
        self.program.append(statement)
        return out_vlist, statement.output_columns()


def compile_computations(sinks):
    """Convenience wrapper: compile ``sinks`` into a TcapProgram."""
    return TcapCompiler().compile(sinks)
