"""Static type verification of compiled TCAP plans.

A TCAP program that names a column its scan's schema does not have, or
compares a whole row batch against a number, compiles fine and then
dies mid-job inside a worker — after pages were pinned, partial sink
output written, and (on the process transport) real OS processes did
real work.  :func:`verify_program` runs at submit time instead: it
propagates column *types* through every statement against the catalog
and raises :class:`repro.errors.PlanTypeError` before the scheduler
ships anything.

Column types form a tiny lattice, written here as tagged tuples:

``("rows", names, schema_or_cls)``
    elements are structured rows — a columnar scan's facades (the
    frozenset of schema column names) or objects of a registered
    ``PCObject`` class (checked through its ``pc_accessors``);
``("num", dtype)``   numeric scalars (``dtype`` may be None);
``("bool", None)``   booleans (comparison/connective outputs);
``("pair", None)``   aggregation key/value pairs (``pairUp``);
``("obj", cls)``     objects of a known class without accessors;
``("any", None)``    statically unknown — checks pass it through.

Three families of checks:

* **structural** — every consumed vector list is produced before use,
  consumed columns exist, no vector list is produced twice, a join's
  output columns do not collide;
* **type propagation** — ``attAccess`` names a real column/accessor,
  ``methodCall`` a real method, comparisons/arithmetic/connectives and
  filter masks are not applied to whole row batches, a ``sum``
  aggregate's value column is summable;
* **kernel-eligibility consistency** — every statement
  :func:`repro.tcap.optimizer.columnar.mark_columnar` stamped
  ``columnar`` must still be eligible under the same rules (the check
  reuses the optimizer's own ``_apply_output_tag``), so a plan edited
  after marking cannot smuggle a row-path term into a kernel stage.

The checks are deliberately one-sided: the verifier only rejects what
it can *prove* inconsistent, and types it cannot resolve (unknown
classes, native lambdas) degrade to ``any`` rather than to errors —
an un-verifiable plan must run exactly as it did before this module
existed.
"""

from __future__ import annotations

from repro.errors import CatalogError, PlanTypeError
from repro.memory.types import NUMPY_DTYPES
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
    _columns_consumed,
)
from repro.tcap.optimizer.columnar import _NUM, _apply_output_tag

ROWS = "rows"
NUM = "num"
BOOL = "bool"
PAIR = "pair"
OBJ = "obj"
ANY = "any"

_ANY = (ANY, None)
_BOOL = (BOOL, None)
_PAIR = (PAIR, None)

#: APPLY kinds taking exactly two operands, none of which may be a
#: whole row batch.
_BINARY_KINDS = {
    "comparison", "equalityCheck", "arithmetic", "bool_and", "bool_or",
}


def _kind(ctype):
    return ctype[0]


def _is_rows(ctype):
    return ctype[0] == ROWS


def _class_for(type_name, registry):
    """The registered class behind ``type_name``, or None."""
    if registry is None or not type_name:
        return None
    try:
        code = registry.code_for_name(type_name)
        if code is None:
            return None
        descriptor = registry.lookup(code)
    except Exception:  # unknown/unloadable type: stay untyped
        return None
    cls = getattr(descriptor, "cls", descriptor)
    return cls if isinstance(cls, type) else None


def _field_type(cls, att_name, registry):
    """The ctype of ``cls.att_name``, via its ``pc_accessors``."""
    for accessor in getattr(cls, "pc_accessors", ()):
        if accessor.name != att_name:
            continue
        pc_type = accessor.pc_type
        dtype = NUMPY_DTYPES.get(getattr(pc_type, "name", None))
        if dtype is not None:
            return (NUM, dtype)
        field_cls = _class_for(getattr(pc_type, "name", None), registry)
        if field_cls is not None:
            return _object_ctype(field_cls)
        return _ANY
    return _ANY


def _object_ctype(cls):
    if getattr(cls, "pc_accessors", None):
        names = frozenset(a.name for a in cls.pc_accessors)
        return (ROWS, names, cls)
    return (OBJ, cls)


def _has_attribute(cls, name):
    """Can ``getattr(instance_of_cls, name)`` statically succeed?

    Instance attributes of plain classes are invisible, so only
    ``pc_accessors``-bearing classes are checked strictly; a class
    with ``__getattr__`` can answer anything.
    """
    if hasattr(cls, name) or hasattr(cls, "__getattr__"):
        return True
    accessors = getattr(cls, "pc_accessors", None)
    if accessors is not None:
        return name in {a.name for a in accessors}
    return False


class PlanTypes:
    """The verifier's result: per-vector-list column types."""

    def __init__(self):
        self.env = {}  # vlist name -> {column name -> ctype}

    def columns_typed(self):
        return sum(len(columns) for columns in self.env.values())

    def __getitem__(self, vlist):
        return self.env[vlist]


def verify_program(program, catalog=None, layout_of=None, registry=None):
    """Type-check ``program``; raises :class:`PlanTypeError` on failure.

    ``catalog`` (a :class:`repro.catalog.CatalogManager`) types scans
    from set metadata; ``layout_of(db, set)`` returns the Schema of
    columnar sets (the same oracle :func:`mark_columnar` used);
    ``registry`` overrides the catalog's type registry.  All three are
    optional — a bare text plan still gets structural and
    mark-consistency checks.  Returns a :class:`PlanTypes`.
    """
    if registry is None and catalog is not None:
        registry = getattr(catalog, "registry", None)
    types = PlanTypes()
    env = types.env
    col_tags = {}  # mark-consistency shadow of mark_columnar's tags
    # Without the layout oracle the marks cannot be re-derived, so the
    # per-column consistency checks stand down (the structural "always
    # opaque" checks below still run).
    check_marks = layout_of is not None
    for statement in program.statements:
        _check_structure(statement, env)
        if isinstance(statement, ScanStmt):
            _scan(statement, env, catalog, layout_of, registry)
            if check_marks:
                _tags_scan(statement, col_tags, layout_of)
        elif isinstance(statement, ApplyStmt):
            _apply(statement, env, registry, program)
            if check_marks:
                _tags_apply(statement, col_tags, program)
        elif isinstance(statement, FilterStmt):
            _filter(statement, env)
            if check_marks:
                _tags_filter(statement, col_tags)
        elif isinstance(statement, HashStmt):
            _hash(statement, env)
            _no_mark(statement)
        elif isinstance(statement, JoinStmt):
            _join(statement, env)
            _no_mark(statement)
        elif isinstance(statement, FlattenStmt):
            _flatten(statement, env)
            _no_mark(statement)
        elif isinstance(statement, AggregateStmt):
            _aggregate(statement, env, program)
            if check_marks:
                _tags_aggregate(statement, col_tags, program)
        elif isinstance(statement, OutputStmt):
            _no_mark(statement)
        else:
            raise PlanTypeError(
                "unknown statement type %r" % type(statement).__name__,
                statement,
            )
    return types


# -- structural checks --------------------------------------------------------


def _check_structure(statement, env):
    for input_name in statement.input_names():
        if input_name == statement.output and not isinstance(
            statement, OutputStmt
        ):
            raise PlanTypeError(
                "%s consumes its own output %r" %
                (statement.op, input_name), statement,
            )
        if input_name not in env:
            raise PlanTypeError(
                "%s consumes %r before any statement produces it"
                % (statement.op, input_name), statement,
            )
    for input_name, columns in _columns_consumed(statement).items():
        missing = set(columns) - set(env[input_name])
        if missing:
            raise PlanTypeError(
                "%s consumes missing column%s %s of %r (it has %s)" % (
                    statement.op, "s" if len(missing) > 1 else "",
                    ", ".join(sorted(missing)), input_name,
                    ", ".join(sorted(env[input_name])),
                ), statement,
            )
    if not isinstance(statement, OutputStmt) and statement.output in env:
        raise PlanTypeError(
            "vector list %r is produced twice" % statement.output,
            statement,
        )
    seen = set()
    for column in statement.output_columns():
        if column in seen:
            raise PlanTypeError(
                "output column %r appears twice" % column, statement,
            )
        seen.add(column)


# -- per-statement type propagation -------------------------------------------


def _scan(statement, env, catalog, layout_of, registry):
    ctype = _ANY
    if layout_of is not None:
        schema = layout_of(statement.database, statement.set_name)
        if schema is not None:
            ctype = (ROWS, frozenset(schema.names()), schema)
    if ctype is _ANY and catalog is not None:
        try:
            meta = catalog.set_metadata(
                statement.database, statement.set_name
            )
        except CatalogError:
            meta = None  # not-yet-created set: untyped, as before
        if meta is not None:
            cls = _class_for(meta.type_name, registry)
            if cls is not None:
                ctype = _object_ctype(cls)
    env[statement.output] = {statement.column: ctype}


def _copy(env, statement, columns):
    source = env[statement.input_name]
    return {name: source[name] for name in columns}


def _row_field(ctype, att_name, registry, statement):
    """Type of ``row.att_name`` for a rows-typed operand."""
    names = ctype[1]
    if att_name not in names:
        raise PlanTypeError(
            "attAccess names %r, which is not a column of the input "
            "rows (schema has: %s)" % (att_name, ", ".join(sorted(names))),
            statement,
        )
    carrier = ctype[2]
    dtype_of = getattr(carrier, "dtype_of", None)
    if dtype_of is not None:  # a Schema
        try:
            return (NUM, dtype_of(att_name))
        except Exception:
            return _ANY
    if isinstance(carrier, type):  # a PCObject class
        return _field_type(carrier, att_name, registry)
    return _ANY


def _apply(statement, env, registry, program):
    out = _copy(env, statement, statement.copy_columns)
    inputs = [
        env[statement.input_name][name]
        for name in statement.apply_columns
    ]
    kind = statement.info.get("type")
    new_type = _ANY
    if kind == "attAccess":
        _arity(statement, inputs, 1)
        operand = inputs[0]
        att_name = statement.info.get("attName", "")
        if _is_rows(operand):
            new_type = _row_field(operand, att_name, registry, statement)
        elif _kind(operand) == OBJ:
            if not _has_attribute(operand[1], att_name):
                raise PlanTypeError(
                    "attAccess names %r, which %s does not define"
                    % (att_name, operand[1].__name__), statement,
                )
    elif kind == "methodCall":
        _arity(statement, inputs, 1)
        operand = inputs[0]
        method = statement.info.get("methodName", "")
        cls = operand[2] if _is_rows(operand) and isinstance(
            operand[2], type
        ) else operand[1] if _kind(operand) == OBJ else None
        if cls is not None and not _has_attribute(cls, method):
            raise PlanTypeError(
                "methodCall names %r, which %s does not define"
                % (method, cls.__name__), statement,
            )
    elif kind == "self":
        _arity(statement, inputs, 1)
        new_type = inputs[0]
    elif kind == "constant":
        value = statement.info.get("value")
        if isinstance(value, bool):
            new_type = _BOOL
        elif isinstance(value, (int, float)):
            new_type = (NUM, None)
    elif kind in _BINARY_KINDS:
        _arity(statement, inputs, 2)
        for operand in inputs:
            _not_batch(statement, operand, kind)
        if kind in ("comparison", "equalityCheck", "bool_and",
                    "bool_or"):
            new_type = _BOOL
        elif all(_kind(op) == NUM for op in inputs):
            new_type = (NUM, None)
    elif kind == "bool_not":
        _arity(statement, inputs, 1)
        _not_batch(statement, inputs[0], kind)
        new_type = _BOOL
    elif kind == "pairUp":
        _arity(statement, inputs, 2)
        new_type = _PAIR
    # nativeLambda and unknown kinds: output stays ``any``.
    out[statement.new_column] = new_type
    env[statement.output] = out


def _arity(statement, inputs, expected):
    if len(inputs) != expected:
        raise PlanTypeError(
            "%s term reads %d column%s; it takes exactly %d" % (
                statement.info.get("type"), len(inputs),
                "" if len(inputs) == 1 else "s", expected,
            ), statement,
        )


def _not_batch(statement, operand, kind):
    if _is_rows(operand) or _kind(operand) == PAIR:
        raise PlanTypeError(
            "%s term applied to a whole %s column; it needs scalar "
            "operands (did the plan skip the attAccess?)"
            % (kind, "row" if _is_rows(operand) else "pair"),
            statement,
        )


def _filter(statement, env):
    mask = env[statement.input_name][statement.bool_column]
    if _is_rows(mask) or _kind(mask) == PAIR:
        raise PlanTypeError(
            "FILTER mask column %r holds %s values, not booleans"
            % (statement.bool_column,
               "row" if _is_rows(mask) else "pair"), statement,
        )
    env[statement.output] = _copy(env, statement, statement.copy_columns)


def _hash(statement, env):
    out = _copy(env, statement, statement.copy_columns)
    out[statement.new_column] = (NUM, None)
    env[statement.output] = out


def _join(statement, env):
    out = {}
    for input_name, columns in (
        (statement.left_input, statement.left_columns),
        (statement.right_input, statement.right_columns),
    ):
        for name in columns:
            if name in out:
                raise PlanTypeError(
                    "JOIN output column %r comes from both sides"
                    % name, statement,
                )
            out[name] = env[input_name][name]
    env[statement.output] = out


def _flatten(statement, env):
    seq = env[statement.input_name][statement.seq_column]
    if _kind(seq) in (NUM, BOOL):
        raise PlanTypeError(
            "FLATTEN over scalar column %r (%s); it needs sequences"
            % (statement.seq_column, _kind(seq)), statement,
        )
    out = _copy(env, statement, statement.copy_columns)
    out[statement.new_column] = _ANY
    env[statement.output] = out


def _aggregate(statement, env, program):
    source = env[statement.input_name]
    comp = program.computations.get(statement.computation)
    if getattr(comp, "reduce", None) == "sum":
        value = source[statement.value_column]
        if _is_rows(value) or _kind(value) in (PAIR, BOOL):
            raise PlanTypeError(
                "AGGREGATE sums value column %r, which holds %s "
                "values" % (statement.value_column, _kind(value)),
                statement,
            )
    key = source[statement.key_column]
    if _kind(key) == PAIR:
        raise PlanTypeError(
            "AGGREGATE key column %r holds pair values"
            % statement.key_column, statement,
        )
    env[statement.output] = {"key": _ANY, "val": (NUM, None)
                             if getattr(comp, "reduce", None) == "sum"
                             else _ANY}


# -- mark_columnar consistency ------------------------------------------------


def _marked(statement):
    return statement.info.get("columnar") == "1"


def _mark_error(statement, why):
    raise PlanTypeError(
        "statement is marked columnar but is not kernel-eligible: %s "
        "(mark_columnar would not have marked it)" % why, statement,
    )


def _no_mark(statement):
    if _marked(statement):
        _mark_error(statement, "%s is always opaque to the array engine"
                    % statement.op)


def _tags_scan(statement, col_tags, layout_of):
    if not _marked(statement):
        return
    schema = layout_of(statement.database, statement.set_name)
    if schema is None:
        _mark_error(
            statement, "set %s.%s is not stored columnar"
            % (statement.database, statement.set_name),
        )
    col_tags[statement.output] = {
        statement.column: frozenset(schema.names())
    }


def _tags_apply(statement, col_tags, program):
    tags = col_tags.get(statement.input_name)
    if not _marked(statement):
        return
    if tags is None:
        _mark_error(statement, "its input vector list is not columnar")
    out_tag = _apply_output_tag(program, statement, tags)
    if out_tag is None:
        _mark_error(
            statement, "%r term over these columns has no array form"
            % statement.info.get("type"),
        )
    out_tags = {name: tags[name] for name in statement.copy_columns}
    out_tags[statement.new_column] = out_tag
    col_tags[statement.output] = out_tags


def _tags_filter(statement, col_tags):
    if not _marked(statement):
        return
    tags = col_tags.get(statement.input_name)
    if tags is None:
        _mark_error(statement, "its input vector list is not columnar")
    if tags.get(statement.bool_column) != _NUM:
        _mark_error(statement, "its mask column is not array-typed")
    col_tags[statement.output] = {
        name: tags[name] for name in statement.copy_columns
    }


def _tags_aggregate(statement, col_tags, program):
    if not _marked(statement):
        return
    tags = col_tags.get(statement.input_name)
    comp = program.computations.get(statement.computation)
    if tags is None:
        _mark_error(statement, "its input vector list is not columnar")
    if tags.get(statement.key_column) != _NUM \
            or tags.get(statement.value_column) != _NUM:
        _mark_error(statement, "key/value columns are not array-typed")
    if getattr(comp, "reduce", None) != "sum":
        _mark_error(statement, "only reduce='sum' aggregates kernelize")
