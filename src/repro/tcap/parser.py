"""Parser for TCAP's concrete text syntax.

Round-trips the syntax produced by :meth:`TcapProgram.to_text` (the
paper's notation).  Parsed programs carry no compiled stage library —
they are *analysis-only*: they can be validated, printed, and optimized,
but not executed (Section 5.2's key-value maps carry enough information
for the optimizer, not the compiled stages).
"""

from __future__ import annotations

import ast
import re

from repro.errors import TcapParseError
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
    TcapProgram,
)

_STATEMENT_RE = re.compile(
    r"^(?:(?P<output>\w+)\((?P<out_cols>[^)]*)\)\s*<=\s*)?"
    r"(?P<op>[A-Z]+)\((?P<body>.*)\);$"
)
_REF_RE = re.compile(r"^(\w+)\(([^)]*)\)$")


def _split_args(body):
    """Split a statement body on top-level commas."""
    parts = []
    depth = 0
    current = []
    in_string = False
    for ch in body:
        if ch == "'" :
            in_string = not in_string
            current.append(ch)
        elif in_string:
            current.append(ch)
        elif ch in "([":
            depth += 1
            current.append(ch)
        elif ch in ")]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current).strip())
    return parts


def _ref(token, line_no):
    match = _REF_RE.match(token)
    if match is None:
        raise TcapParseError("expected vlist(cols), got %r" % token, line_no)
    name, cols = match.groups()
    columns = [c.strip() for c in cols.split(",") if c.strip()]
    return name, columns


def _string(token, line_no):
    token = token.strip()
    if not (token.startswith("'") and token.endswith("'")):
        raise TcapParseError("expected quoted string, got %r" % token,
                             line_no)
    return token[1:-1]


def _info(token, line_no):
    token = token.strip()
    try:
        pairs = ast.literal_eval(token)
    except (SyntaxError, ValueError) as bad:
        raise TcapParseError(
            "bad key-value map %r" % token, line_no
        ) from bad
    return {str(k): v for k, v in pairs}


def parse_tcap(text):
    """Parse a TCAP program in concrete syntax; returns a TcapProgram."""
    program = TcapProgram()
    buffered = ""
    line_no = 0
    for raw_line in text.splitlines():
        line_no += 1
        stripped = raw_line.strip()
        if not stripped or stripped.startswith("/*") or \
                stripped.startswith("#"):
            continue
        buffered += (" " if buffered else "") + stripped
        if not buffered.endswith(";"):
            continue
        statement, buffered = buffered, ""
        match = _STATEMENT_RE.match(statement)
        if match is None:
            raise TcapParseError("unparseable statement %r" % statement,
                                 line_no)
        op = match.group("op")
        output = match.group("output")
        body = _split_args(match.group("body"))
        program.append(
            _build(op, output, match.group("out_cols"), body, line_no)
        )
    if buffered:
        raise TcapParseError("unterminated statement %r" % buffered, line_no)
    return program


def _build(op, output, out_cols, body, line_no):
    out_columns = [c.strip() for c in (out_cols or "").split(",")
                   if c.strip()]
    if op == "SCAN":
        database, set_name, comp = (_string(t, line_no) for t in body[:3])
        return ScanStmt(output, out_columns[0], database, set_name, comp)
    if op == "APPLY":
        apply_ref = _ref(body[0], line_no)
        copy_ref = _ref(body[1], line_no)
        comp = _string(body[2], line_no)
        stage = _string(body[3], line_no)
        info = _info(body[4], line_no) if len(body) > 4 else {}
        new_column = out_columns[-1]
        return ApplyStmt(output, apply_ref[0], apply_ref[1], copy_ref[1],
                         new_column, comp, stage, info=info)
    if op == "FILTER":
        bool_ref = _ref(body[0], line_no)
        copy_ref = _ref(body[1], line_no)
        comp = _string(body[2], line_no)
        info = _info(body[3], line_no) if len(body) > 3 else {}
        return FilterStmt(output, bool_ref[0], bool_ref[1][0], copy_ref[1],
                          comp, info=info)
    if op == "HASH":
        key_ref = _ref(body[0], line_no)
        copy_ref = _ref(body[1], line_no)
        comp = _string(body[2], line_no)
        info = _info(body[3], line_no) if len(body) > 3 else {}
        return HashStmt(output, key_ref[0], key_ref[1][0], copy_ref[1],
                        out_columns[-1], comp, info=info)
    if op == "JOIN":
        left_hash = _ref(body[0], line_no)
        left_cols = _ref(body[1], line_no)
        right_hash = _ref(body[2], line_no)
        right_cols = _ref(body[3], line_no)
        comp = _string(body[4], line_no)
        info = _info(body[5], line_no) if len(body) > 5 else {}
        return JoinStmt(output, left_hash[0], left_hash[1][0], left_cols[1],
                        right_hash[0], right_hash[1][0], right_cols[1],
                        comp, info=info)
    if op == "FLATTEN":
        seq_ref = _ref(body[0], line_no)
        copy_ref = _ref(body[1], line_no)
        comp = _string(body[2], line_no)
        info = _info(body[3], line_no) if len(body) > 3 else {}
        return FlattenStmt(output, seq_ref[0], seq_ref[1][0], copy_ref[1],
                           out_columns[-1], comp, info=info)
    if op == "AGGREGATE":
        key_ref = _ref(body[0], line_no)
        val_ref = _ref(body[1], line_no)
        comp = _string(body[2], line_no)
        info = _info(body[3], line_no) if len(body) > 3 else {}
        return AggregateStmt(output, key_ref[0], key_ref[1][0],
                             val_ref[1][0], comp, info=info)
    if op == "OUTPUT":
        in_ref = _ref(body[0], line_no)
        database, set_name, comp = (_string(t, line_no) for t in body[1:4])
        return OutputStmt(in_ref[0], in_ref[1][0], database, set_name, comp)
    raise TcapParseError("unknown operation %r" % op, line_no)
