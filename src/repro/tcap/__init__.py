"""TCAP: PC's optimizable intermediate language."""

from repro.errors import PlanTypeError
from repro.tcap.compiler import TcapCompiler, compile_computations
from repro.tcap.parser import parse_tcap
from repro.tcap.verify import PlanTypes, verify_program
from repro.tcap.ir import (
    AggregateStmt,
    ApplyStmt,
    FilterStmt,
    FlattenStmt,
    HashStmt,
    JoinStmt,
    OutputStmt,
    ScanStmt,
    Statement,
    TcapProgram,
)

__all__ = [
    "AggregateStmt",
    "ApplyStmt",
    "FilterStmt",
    "FlattenStmt",
    "HashStmt",
    "JoinStmt",
    "OutputStmt",
    "ScanStmt",
    "Statement",
    "TcapCompiler",
    "parse_tcap",
    "TcapProgram",
    "compile_computations",
    "PlanTypeError",
    "PlanTypes",
    "verify_program",
]
