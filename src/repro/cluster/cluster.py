"""PCCluster: the user-facing handle on a simulated PC deployment.

A :class:`PCCluster` stands up one master (catalog manager, distributed
storage manager, TCAP optimizer, distributed query scheduler) and N
workers (front-end + back-end process pairs), wired through a
byte-accounted simulated network — the full runtime of Figure 4 inside
one Python process.

Typical use mirrors the paper's client code::

    cluster = PCCluster(n_workers=4)
    cluster.register_type(DataPoint)
    cluster.create_database("db")
    cluster.create_set("db", "points", DataPoint)
    with cluster.loader("db", "points") as load:
        for row in data:
            load.append(DataPoint, dims=..., data=row)
    writer.execute(cluster)
    centroids = cluster.read("db", "centroids", as_pairs=True, comp=my_agg)

Fault tolerance: pass a :class:`~repro.cluster.faults.FaultInjector` to
exercise back-end crashes, dropped transfers, and reload failures, and a
:class:`~repro.cluster.faults.RetryPolicy` to control how the scheduler
recovers (per-task retries with backoff, transfer re-sends, optional
worker blacklisting with partition redistribution).
"""

from __future__ import annotations

import os
import tempfile
import time
import warnings

from repro.analysis import sanitizer as pcsan
from repro.catalog import CatalogJournal, CatalogManager
from repro.engine.physical import plan_pipelines
from repro.engine.vectors import DEFAULT_BATCH_SIZE
from repro.errors import (
    BlockFullError,
    CatalogError,
    ExecutionError,
    PageReloadError,
    StorageError,
)
from repro.obs import (
    FlightRecorder,
    HealthCheck,
    MetricsRegistry,
    MetricsSnapshot,
    StageProfiler,
    Tracer,
)
from repro.obs.tracer import Span
from repro.memory.builtins import AnyObject, MapFacade, VectorType
from repro.memory.columnar import ColumnarPage
from repro.memory.handle import Handle
from repro.memory.objects import make_object_on
from repro.schema import Schema
from repro.storage import DistributedStorageManager, ReplicationManager
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.shm_registry import ShmRegistry
from repro.tcap.compiler import compile_computations
from repro.tcap.optimizer import mark_columnar, optimize
from repro.cluster.faults import RetryPolicy
from repro.cluster.transport import make_transport
from repro.cluster.scheduler import (
    DEFAULT_BROADCAST_THRESHOLD,
    DistributedScheduler,
)
from repro.cluster.worker import WorkerNode

_ROOT_VECTOR = VectorType(AnyObject)


class _FaultCounters:
    """Fault / recovery counters shared by the cluster and its schedulers.

    Declared once against the master registry; the ``faults.*`` trace
    counters are the mirrors of these declarations, so the trace and
    ``cluster.metrics()`` report fault activity under matching names.
    """

    def __init__(self, metrics):
        self.backend_crashes = metrics.counter(
            "pc_faults_backend_crashes_total",
            help="Back-end process crashes (injected or real)",
            trace="faults.backend_crashes",
        )
        self.tasks_recovered = metrics.counter(
            "pc_faults_tasks_recovered_total",
            help="Worker tasks that succeeded on a retry",
            trace="faults.tasks_recovered",
        )
        self.workers_blacklisted = metrics.counter(
            "pc_faults_workers_blacklisted_total",
            help="Workers decommissioned after exhausting retries",
            trace="faults.workers_blacklisted",
        )
        self.workers_absorbed = metrics.counter(
            "pc_faults_workers_absorbed_total",
            help="Lost workers whose stage portion survivors absorbed",
            trace="faults.workers_absorbed",
        )
        self.workers_killed = metrics.counter(
            "pc_faults_workers_killed_total",
            help="Workers lost entirely (front-end storage included)",
            trace="faults.workers_killed",
        )
        self.pages_redistributed = metrics.counter(
            "pc_faults_pages_redistributed_total",
            help="Pages moved off dead workers onto survivors",
            trace="faults.pages_redistributed",
        )


class PCCluster:
    """One master plus ``n_workers`` simulated worker nodes."""

    def __init__(self, n_workers=4, page_size=DEFAULT_PAGE_SIZE,
                 worker_memory=64 << 20, batch_size=DEFAULT_BATCH_SIZE,
                 broadcast_threshold=DEFAULT_BROADCAST_THRESHOLD,
                 combiner_page_size=None, spill_root=None,
                 fault_injector=None, retry_policy=None, profiling=False,
                 sanitize=False, transport=None, tracing=True,
                 verify_plans=True):
        # The master's durable territory: the catalog journals every DDL
        # and replica-map mutation (write-ahead) under the spill root, so
        # recover() can rebuild its state after a simulated master crash.
        if spill_root is None:
            self._master_dir = tempfile.mkdtemp(prefix="pc-master-")
        else:
            os.makedirs(spill_root, exist_ok=True)
            self._master_dir = spill_root
        self.journal = CatalogJournal(
            os.path.join(self._master_dir, "catalog.journal")
        )
        self.catalog = CatalogManager(journal=self.journal)
        # Shared-memory hygiene: named segments are journaled next to the
        # catalog WAL, and segments stranded by a previous hard-killed
        # run under this spill root are reaped before any pool opens.
        self.shm_registry = ShmRegistry(
            os.path.join(self._master_dir, "shm.registry")
        )
        self.shm_registry.sweep_orphans()
        # ``tracing=False`` swaps in the null tracer: spans become the
        # shared no-op span and no trace is built — the zero-overhead
        # baseline BENCH_trace.json's overhead budget is measured against.
        self.tracer = Tracer(enabled=tracing)
        # The master process's metrics registry.  Every master-side
        # component (network, replication, scheduler, fault recovery)
        # publishes here; each worker front-end has its own registry and
        # metrics() merges them all into one cluster-wide snapshot.
        self.metrics_registry = MetricsRegistry(tracer=self.tracer)
        # PCSan: must be enabled before any worker allocates a block, so
        # every AllocationBlock in the cluster gets a shadow.  sanitize=
        # False leaves whatever the process-wide state is (env opt-in via
        # PC_SANITIZE=1 still applies); neither default installs wrappers.
        if sanitize:
            self.sanitizer = pcsan.enable(metrics=self.metrics_registry)
        else:
            self.sanitizer = pcsan.current_sanitizer()
        self.fault_metrics = _FaultCounters(self.metrics_registry)
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy()
        # Static plan verification (repro.tcap.verify): the scheduler
        # type-checks every compiled plan against the catalog before it
        # dispatches anything.  On by default; False is the escape hatch
        # for deliberately-broken plans in fault experiments.
        self.verify_plans = verify_plans
        # The master-side flight recorder (DESIGN §14): a constant-memory
        # ring of structured runtime events, dumped into the job trace
        # when something dies.  Children get their own shared rings.
        self.flight = FlightRecorder(capacity=256)
        # ``transport`` picks where worker back-ends live: "sim" (default)
        # keeps them in-process and deterministic, "process" backs each one
        # with a real spawned OS process attaching sealed pages over
        # shared memory.  ``self.network`` stays as the historical alias.
        self.transport = make_transport(
            transport, tracer=self.tracer, fault_injector=fault_injector,
            retry_policy=self.retry_policy, metrics=self.metrics_registry,
            recorder=self.flight,
        )
        self.network = self.transport
        self.page_size = page_size
        self.batch_size = batch_size
        self.broadcast_threshold = broadcast_threshold
        self.combiner_page_size = combiner_page_size or page_size
        self.workers = []
        self.blacklist = set()
        self.storage_manager = DistributedStorageManager(self.catalog)
        for index in range(n_workers):
            spill = None
            if spill_root is not None:
                spill = "%s/worker-%d" % (spill_root, index)
            worker = WorkerNode(
                "worker-%d" % index, self.catalog, worker_memory, page_size,
                spill_dir=spill, tracer=self.tracer,
                fault_injector=fault_injector, transport=self.transport,
                shm_registry=self.shm_registry,
            )
            self.workers.append(worker)
            self.storage_manager.attach_server(worker.storage)
        self.replication = ReplicationManager(
            self.catalog, self.storage_manager, self.network,
            tracer=self.tracer, metrics=self.metrics_registry,
        )
        # The per-stage / per-operator profiler observes every worker's
        # buffer pool; profiling=False drops it wholesale (zero overhead).
        self.profiler = None
        if profiling:
            self.profiler = StageProfiler(
                registry=self.metrics_registry, tracer=self.tracer,
                pools=[w.storage.pool for w in self.workers],
            )
        self._c_jobs = self.metrics_registry.counter(
            "pc_sched_jobs_total", help="Jobs executed by the scheduler",
        )
        self._h_job_seconds = self.metrics_registry.histogram(
            "pc_sched_job_seconds", help="Wall seconds per executed job",
        )
        self._g_workers_active = self.metrics_registry.gauge(
            "pc_cluster_workers_active", help="Workers not blacklisted",
        )
        self._g_workers_blacklisted = self.metrics_registry.gauge(
            "pc_cluster_workers_blacklisted", help="Blacklisted workers",
        )
        self._g_replication_satisfied = self.metrics_registry.gauge(
            "pc_cluster_replication_satisfied",
            help="1 when every replica-mapped page is at its set's "
                 "replication factor",
        )
        self.metrics_registry.on_collect(self._collect_cluster_gauges)
        self.python_outputs = {}  # (db, set) -> python values (non-PC sinks)
        self.last_program = None
        self.last_plan = None
        self.last_job_log = None

    # -- metadata -------------------------------------------------------------------

    def register_type(self, cls_or_descriptor):
        """Register a PC type with the master catalog (required before use)."""
        return self.catalog.register_type(cls_or_descriptor)

    def create_database(self, name):
        self.storage_manager.create_database(name)

    def create_set(self, database, name, cls=None, *, page_size=None,
                   replication=1, layout=None, schema=None, **legacy):
        """Create a set partitioned over all workers — the one DDL surface.

        ``replication=k`` keeps ``k`` synchronous copies of every page on
        ring-chosen workers: reads fail over to any live replica, and a
        node loss triggers re-replication instead of data loss.

        ``layout`` picks the physical page format: ``"row"`` (the default;
        object pages holding a root vector of handles) or ``"columnar"``
        (struct-of-arrays pages whose fixed-stride columns the engine can
        run whole-page numpy kernels over).  Columnar sets need a
        :class:`repro.schema.Schema`, given either explicitly via
        ``schema=`` (a Schema or a ``[("x", f64), ...]`` field list, which
        implies ``layout="columnar"``) or derived from ``cls`` when all of
        its fields are fixed-stride primitives.  Setting ``PC_LAYOUT=
        columnar`` in the environment makes derivable sets columnar by
        default without touching call sites.
        """
        if "type_name" in legacy:
            # One release of compatibility for the drifted storage-layer
            # keyword; ``cls`` (or a pre-registered name) is the surface.
            warnings.warn(
                "create_set(type_name=...) is deprecated; pass the class "
                "via cls= (or its registered name) instead",
                DeprecationWarning, stacklevel=2,
            )
            if cls is None:
                cls = legacy.pop("type_name")
            else:
                legacy.pop("type_name")
        if legacy:
            raise TypeError(
                "create_set() got unexpected keyword argument(s): %s"
                % ", ".join(sorted(legacy))
            )
        type_name = None
        if isinstance(cls, str):
            type_name = cls
            cls = None
        elif cls is not None:
            self.register_type(cls)
            type_name = getattr(cls, "__name__", getattr(cls, "name", None))
        if schema is not None and not isinstance(schema, Schema):
            schema = Schema(schema)
        if layout is None:
            if schema is not None:
                layout = "columnar"
            elif os.environ.get("PC_LAYOUT") == "columnar" and cls is not None:
                # Default-on leg: derivable classes go columnar, the rest
                # keep the row layout (no schema, no array kernels).
                schema = Schema.from_class(cls)
                layout = "columnar" if schema is not None else "row"
            else:
                layout = "row"
        elif layout == "columnar" and schema is None:
            if cls is not None:
                schema = Schema.from_class(cls)
            if schema is None:
                raise CatalogError(
                    "columnar layout for %s.%s needs a schema= (or a cls "
                    "whose fields are all fixed-stride primitives)"
                    % (database, name)
                )
        elif layout == "row" and schema is not None:
            raise CatalogError(
                "layout='row' does not take a schema; drop schema= or ask "
                "for layout='columnar'"
            )
        return self.storage_manager.create_set(
            database, name, type_name, page_size=page_size,
            replication=replication, layout=layout, schema=schema,
        )

    def ensure_set(self, database, name):
        """Create a set if it does not exist (used for output sets)."""
        self.storage_manager.create_database(database)
        if (database, name) not in self.storage_manager:
            self.storage_manager.create_set(database, name, None)

    def clear_set(self, database, name):
        """Drop all stored pages of a set (keeps the metadata)."""
        for partition in self.storage_manager.partitions(database, name):
            partition.clear()
        if (database, name) in self.storage_manager:
            self.catalog.clear_pages(database, name)
        self.python_outputs.pop((database, name), None)

    def drop_set(self, database, name):
        self.storage_manager.drop_set(database, name)
        self.python_outputs.pop((database, name), None)

    # -- worker health -----------------------------------------------------------------

    @property
    def active_workers(self):
        """Workers that have not been blacklisted."""
        return [
            w for w in self.workers if w.worker_id not in self.blacklist
        ]

    def decommission_worker(self, worker_id, reason=None):
        """Blacklist a worker and redistribute its partitions to peers.

        The worker's *front-end* storage is durable (the paper's premise:
        only the back-end is unsafe), so losing the back-end loses no
        data.  Sets governed by the catalog replica map keep serving from
        their other replicas; pages whose only copy lived here are
        evacuated verbatim to a survivor first.  Legacy sets (no replica
        map) have all their pages shipped to the survivors, as before.
        After detaching, replication factors are restored on the
        survivors.  Returns the number of pages moved.
        """
        dead = next(
            (w for w in self.workers if w.worker_id == worker_id), None
        )
        if dead is None or worker_id in self.blacklist:
            return 0
        survivors = [
            w for w in self.active_workers if w.worker_id != worker_id
        ]
        if not survivors:
            raise ExecutionError(
                "cannot decommission %s: no surviving workers" % worker_id
            )
        self.blacklist.add(worker_id)
        moved = 0
        for key, page_set in dead.storage.sets():
            try:
                meta = self.catalog.set_metadata(*key)
            except CatalogError:
                meta = None
            if meta is not None and meta.pages:
                moved += self.replication.forget_worker(
                    key[0], key[1], worker_id, evacuate_from=dead.storage
                )
                continue
            for index, page_id in enumerate(list(page_set.page_ids)):
                page = dead.storage.pool.pin(page_id)
                try:
                    data = page.to_bytes()
                finally:
                    dead.storage.pool.unpin(page_id)
                peer = survivors[(moved + index) % len(survivors)]
                shipped = self.network.ship_page(
                    worker_id, peer.worker_id, data
                )
                peer.storage.create_set(
                    key[0], key[1], type_name=page_set.type_name,
                    page_size=page_set.page_size, layout=page_set.layout,
                    schema=page_set.schema,
                )
                peer.storage.get_set(*key).adopt_page_bytes(shipped)
            moved += len(page_set.page_ids)
            if meta is not None and worker_id in meta.partitions:
                self.catalog.set_partitions(
                    key[0], key[1],
                    [w for w in meta.partitions if w != worker_id],
                )
        self.storage_manager.detach_server(worker_id)
        self.replication.restore_replication()
        self.fault_metrics.pages_redistributed.inc(moved)
        return moved

    def kill_worker(self, worker_id, reason=None):
        """Simulate the total loss of a node — front-end storage included.

        Unlike :meth:`decommission_worker`, nothing can be read off the
        dead node: every set must be recovered from its live replicas.  A
        page without one is data loss and raises
        :class:`~repro.errors.ReplicationError`.  Afterwards each set's
        replication factor is restored on the survivors.  Returns the
        number of replica copies created.
        """
        dead = next(
            (w for w in self.workers if w.worker_id == worker_id), None
        )
        if dead is None or worker_id in self.blacklist:
            return 0
        if not [w for w in self.active_workers if w.worker_id != worker_id]:
            raise ExecutionError(
                "cannot kill %s: no surviving workers" % worker_id
            )
        self.blacklist.add(worker_id)
        self.storage_manager.detach_server(worker_id)
        for meta in self.catalog.list_sets():
            if meta.pages:
                self.replication.forget_worker(
                    meta.database, meta.name, worker_id
                )
            elif worker_id in meta.partitions:
                self.catalog.set_partitions(
                    meta.database, meta.name,
                    [w for w in meta.partitions if w != worker_id],
                )
        created = self.replication.restore_replication()
        # The counter is incremented inside the event span so the trace
        # mirror lands on the "kill" node, as the event counters used to.
        with self.tracer.span(
            "kill", kind="fault",
            detail="worker %s lost entirely (%s); %d replica(s) re-created"
            % (worker_id, reason or "killed", created),
        ):
            self.fault_metrics.workers_killed.inc()
        return created

    # -- master crash recovery -----------------------------------------------------

    def recover(self):
        """Simulate a master restart: rebuild the catalog from its journal.

        The in-memory DDL and replica-map state is discarded and replayed
        from the write-ahead journal, after which reads and queries serve
        the same answers as before the crash.  A restart is also the
        moment crash hygiene runs: shared-memory segments recorded in the
        registry but owned by dead processes are reaped, exactly like the
        startup sweep in ``__init__``.  Returns the number of journal
        records applied.
        """
        self.shm_registry.sweep_orphans()
        return self.catalog.replay_journal()

    # -- loading data -----------------------------------------------------------------

    def loader(self, database, set_name, page_size=None):
        """Client-side bulk loader: build pages locally, ship bytes.

        Pages are filled on the client with in-place allocations and
        dispatched whole to round-robin workers — the paper's
        ``sendData`` with zero-cost movement.  Use as a context manager:
        a clean exit flushes the final partial page; an exception inside
        the block *discards* the open page instead of shipping a
        half-built one.

        For a ``layout="columnar"`` set the returned loader builds
        struct-of-arrays pages instead: ``append`` takes the schema
        columns as keywords and ``append_columns`` loads whole arrays at
        once.
        """
        schema = self._columnar_layout_of(database, set_name)
        if schema is not None:
            return ColumnarClusterLoader(
                self, database, set_name, page_size or self.page_size,
                schema,
            )
        return ClusterLoader(self, database, set_name,
                             page_size or self.page_size)

    def _columnar_layout_of(self, database, set_name):
        """The set's Schema when its catalog layout is columnar, else None.

        This is both the loader dispatch and the layout oracle handed to
        :func:`repro.tcap.optimizer.mark_columnar` when planning a job.
        """
        try:
            meta = self.catalog.set_metadata(database, set_name)
        except CatalogError:  # pcsan: disable=PC005
            # Not-yet-created sets (e.g. a job's output set) simply are
            # not columnar; creation-time errors surface on their own.
            return None
        if meta.layout != "columnar":
            return None
        return meta.schema

    # -- execution ----------------------------------------------------------------------

    def execute_computations(self, sinks, optimized=True,
                             build_side_overrides=None, job_name="job",
                             columnar=None):
        """Compile, optimize, plan, and run a computation graph.

        Returns the scheduler's job log (the Figure 4 trace); the full
        span tree with counters is available as :attr:`last_trace`
        afterwards (even when a stage raised — partial traces are often
        the most interesting ones).

        ``columnar`` controls whether eligible operator subgraphs over
        columnar-layout scans are lowered onto whole-page array kernels
        (:func:`repro.tcap.optimizer.mark_columnar`).  The default (None)
        is on unless ``PC_COLUMNAR=0`` is set; pass False to force every
        operator down the object path (the parity tests' baseline).
        """
        if columnar is None:
            columnar = os.environ.get("PC_COLUMNAR", "1") != "0"
        started = time.perf_counter()
        # PCSan pin-leak detection: pins held before the job are fine
        # (client handles, prior jobs); anything above that baseline
        # still pinned when the job ends leaked inside this job.
        san = self.sanitizer
        pools = [w.storage.pool for w in self.workers]
        pin_baseline = san.snapshot_pins(pools) if san is not None else None
        flight_baseline = self.flight.seq
        crash_baseline = self.fault_metrics.backend_crashes.value
        with self.tracer.span(job_name, kind="job") as job_span:
            with self.tracer.span("compile", kind="phase"):
                program = compile_computations(sinks)
                if optimized:
                    optimize(program)
                if columnar:
                    mark_columnar(program, self._columnar_layout_of)
            with self.tracer.span("plan", kind="phase"):
                overrides = self._choose_build_sides(program)
                overrides.update(build_side_overrides or {})
                plan = plan_pipelines(program, build_side_overrides=overrides)
            scheduler = DistributedScheduler(
                self, program, plan,
                broadcast_threshold=self.broadcast_threshold,
            )
            self.last_program = program
            self.last_plan = plan
            failed = True
            try:
                job_log = scheduler.execute()
                failed = False
            finally:
                self.last_job_log = scheduler.job_log
                job_span.inc("job.stages", len(scheduler.job_log))
                job_span.inc("job.pipelines", len(plan))
                job_span.inc("job.workers", len(self.active_workers))
                self._c_jobs.inc()
                self._h_job_seconds.observe(time.perf_counter() - started)
                # Flight-recorder dump (DESIGN §14): when the job failed
                # or any back-end died mid-job, attach the master ring's
                # events from this job's window to the job span, so the
                # trace carries the last-N-events context of the verdict.
                died = (self.fault_metrics.backend_crashes.value
                        > crash_baseline)
                if (failed or died) and isinstance(job_span, Span):
                    job_span.events.extend(
                        self.flight.snapshot(since_seq=flight_baseline)
                    )
                if san is not None:
                    san.check_pins(pools, pin_baseline)
        return job_log

    def _choose_build_sides(self, program):
        """Pick each join's smaller input as the hash-build side.

        This is a physical decision the user never makes (the paper's
        data independence): the producer chain of each join input is
        walked back to its SCAN and the stored set sizes compared.
        Inputs whose size cannot be traced keep the default.
        """
        from repro.tcap.ir import JoinStmt, OutputStmt, ScanStmt

        producers = {
            s.output: s for s in program.statements
            if not isinstance(s, OutputStmt)
        }

        def source_bytes(vlist):
            statement = producers.get(vlist)
            while statement is not None and not isinstance(
                statement, (ScanStmt, JoinStmt)
            ):
                inputs = statement.input_names()
                if not inputs:
                    return None
                statement = producers.get(inputs[0])
            if not isinstance(statement, ScanStmt):
                return None
            if self.replication.has_page_map(
                statement.database, statement.set_name
            ):
                # Replica-aware: each page counted once, not per copy.
                return self.replication.estimated_bytes(
                    statement.database, statement.set_name
                )
            total = 0
            try:
                partitions = self.storage_manager.partitions(
                    statement.database, statement.set_name
                )
            except (CatalogError, StorageError):  # pcsan: disable=PC005
                # Unknown or not-yet-loaded source: size cannot be traced,
                # keep the default build side.  Anything else (a genuine
                # bug) must propagate, not silently skew join planning.
                return None
            for partition in partitions:
                for page_id in partition.page_ids:
                    try:
                        page = partition.pool.pin(page_id)
                    except PageReloadError:  # pcsan: disable=PC005
                        # Planning only needs an estimate; a flaky reload
                        # must not kill the job before it starts.
                        continue
                    total += page.block.used if page.block else 0
                    partition.pool.unpin(page_id)
            return total

        overrides = {}
        for statement in program.statements:
            if not isinstance(statement, JoinStmt):
                continue
            left = source_bytes(statement.left_input)
            right = source_bytes(statement.right_input)
            if left is not None and right is not None and left < right:
                overrides[statement.output] = "left"
        return overrides

    # -- reading results --------------------------------------------------------------------

    def read(self, database, set_name, *, as_pairs=False, comp=None):
        """Gather a set's contents to the client — the one read API.

        With ``as_pairs=False`` (default) returns the stored objects: PC
        objects come back as handles/facades (the client shares the
        process in this simulation), Python-value outputs come back
        as-is.  With ``as_pairs=True`` the set is treated as an
        aggregation output and merged into one ``{key: value}`` dict;
        ``comp`` (the AggregateComp) supplies ``decode_key`` /
        ``decode_value`` / ``combine`` for stored PC Maps.

        An unknown database or set raises
        :class:`~repro.errors.SetNotFoundError` — a typo'd name must not
        masquerade as an empty result.
        """
        results = []
        if self.replication.has_page_map(database, set_name):
            # Replica-map governed set: each page is read once, from its
            # first live replica, checksum-verified (and healed) on the
            # way — the failover read path.
            results.extend(self.replication.scan_objects(database, set_name))
        else:
            for partition in self.storage_manager.partitions(
                database, set_name
            ):
                results.extend(partition.scan_objects())
        results.extend(self.python_outputs.get((database, set_name), []))
        if not as_pairs:
            return results
        merged = {}
        decode_key = comp.decode_key if comp is not None else (lambda k: k)
        decode_value = comp.decode_value if comp is not None else (lambda v: v)
        combine = comp.combine if comp is not None else None
        for item in results:
            view = item
            if isinstance(item, Handle) and not item.is_null:
                view = item.deref()
            if isinstance(view, MapFacade):
                pairs = view.items()
            elif isinstance(view, tuple) and len(view) == 2:
                pairs = [view]
            else:
                raise StorageError(
                    "set %s.%s does not look like an aggregation output"
                    % (database, set_name)
                )
            for key, value in pairs:
                key = decode_key(key)
                value = decode_value(value)
                if key in merged and combine is not None:
                    merged[key] = combine(merged[key], value)
                else:
                    merged[key] = value
        return merged

    # -- introspection ------------------------------------------------------------------------

    @property
    def last_trace(self):
        """The :class:`~repro.obs.Trace` of the most recent job, or None.

        An alias for ``traces(1)[0]``; back-to-back jobs rotate through
        the ring :meth:`traces` reads, so earlier evidence survives.
        """
        return self.tracer.last_trace

    def traces(self, n=1):
        """The last ``n`` completed job traces, most recent first.

        A small ring (:data:`repro.obs.tracer.TRACE_RING_SIZE` deep)
        keeps back-to-back jobs — the TPC-H acceptance suite, retry
        storms — from clobbering each other's evidence; returns fewer
        than ``n`` entries when fewer jobs have completed.
        """
        return self.tracer.recent_traces(n)

    @property
    def supervisor(self):
        """The transport's :class:`~repro.cluster.supervisor.Supervisor`.

        None on transports without real back-end processes (sim) — there
        is nothing to heartbeat; crashes there are plain exceptions.
        """
        return getattr(self.transport, "supervisor", None)

    def stats(self):
        """Cluster-wide counters for tests and benches."""
        return {
            "network": self.network.stats(),
            "replication": self.replication.stats(),
            "blacklist": sorted(self.blacklist),
            "workers": {
                worker.worker_id: worker.storage.stats()
                for worker in self.active_workers
            },
        }

    def _collect_cluster_gauges(self):
        self._g_workers_active.set(len(self.active_workers))
        self._g_workers_blacklisted.set(len(self.blacklist))
        self._g_replication_satisfied.set(
            1 if self._replication_satisfied() else 0
        )

    def _replication_satisfied(self):
        """Whether every replica-mapped page is at its set's factor."""
        live = len(self.storage_manager.worker_ids)
        for meta in self.catalog.list_sets():
            if not meta.pages:
                continue
            want = min(meta.replication, live)
            factors = self.replication.replication_factors(
                meta.database, meta.name
            )
            if any(count < want for count in factors.values()):
                return False
        return True

    def metrics(self):
        """One merged :class:`~repro.obs.MetricsSnapshot` of the cluster.

        The master registry (network, replication, scheduler, faults) and
        every worker front-end's registry (buffer pools, engines — each
        stamped with its ``worker`` label) collapse into a single
        snapshot, ready for ``to_prometheus()`` / ``to_json()`` /
        ``render()``.
        """
        return MetricsSnapshot.merge(
            [self.metrics_registry.snapshot()]
            + [worker.metrics.snapshot() for worker in self.workers]
        )

    def health(self, check=None, snapshot=None):
        """Evaluate health rules against the current metrics.

        Returns the list of :class:`~repro.obs.HealthStatus` results from
        ``check`` (default: :meth:`HealthCheck.default`).
        """
        check = check if check is not None else HealthCheck.default()
        return check.evaluate(
            snapshot if snapshot is not None else self.metrics()
        )

    def healthy(self, check=None):
        """Whether every health rule passes right now."""
        return all(status.ok for status in self.health(check=check))

    # -- lifecycle ----------------------------------------------------------------------------

    def close(self):
        """Release transport-held resources (idempotent).

        Under the process transport this returns every worker's child
        process to the shared pool (or terminates it) and unlinks the
        shared-memory segments the buffer pools still own.  The simulated
        transport holds nothing, so closing is free — but closing every
        cluster keeps code portable across transports.
        """
        for worker in self.workers:
            worker.backend.shutdown()
        for worker in self.workers:
            worker.storage.pool.close()
        self.transport.close()
        self.shm_registry.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class ClusterLoader:
    """Builds pages client-side and dispatches them to workers.

    A context manager: ``__exit__`` flushes the final partial page on a
    clean exit and discards the open block when the body raised, so a
    failed load never ships a half-built page (and callers can no longer
    forget the manual ``flush()``).
    """

    def __init__(self, cluster, database, set_name, page_size):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.page_size = page_size
        self._block = None
        self._root = None
        self.pages_shipped = 0
        self.objects_loaded = 0
        self.objects_discarded = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.flush()
        else:
            self.discard()
        return False

    def _open_block(self):
        from repro.memory.block import AllocationBlock

        self._block = AllocationBlock(
            self.page_size, registry=self.cluster.catalog.registry
        )
        handle = make_object_on(self._block, _ROOT_VECTOR, [])
        self._block.set_root(handle.offset, handle.type_code)
        self._root = _ROOT_VECTOR.facade(self._block, handle.offset)

    def append(self, type_or_class, init=None, **fields):
        """Allocate one object in place on the client page."""
        if self._block is None:
            self._open_block()
        for attempt in (0, 1):
            try:
                self._root.reserve(len(self._root) + 1)
                handle = make_object_on(
                    self._block, type_or_class, init, **fields
                )
                self._root.append(handle)
                handle.release()
                self.objects_loaded += 1
                return
            except BlockFullError as full:
                if attempt:
                    raise StorageError(
                        "one object does not fit on an empty %d-byte page"
                        % self.page_size
                    ) from full
                self._ship_block()
                self._open_block()

    def append_built(self, build):
        """Allocate via ``build(block) -> handle`` on the client page."""
        if self._block is None:
            self._open_block()
        for attempt in (0, 1):
            try:
                from repro.memory.objects import use_allocation_block

                self._root.reserve(len(self._root) + 1)
                with use_allocation_block(self._block):
                    handle = build(self._block)
                self._root.append(handle)
                handle.release()
                self.objects_loaded += 1
                return
            except BlockFullError as full:
                if attempt:
                    raise StorageError(
                        "one object does not fit on an empty %d-byte page"
                        % self.page_size
                    ) from full
                self._ship_block()
                self._open_block()

    def _ship_block(self):
        if self._block is None or len(self._root) == 0:
            return
        # The replication layer stamps the sealed page's checksum, places
        # it on the set's ring replicas, and records the placement in the
        # catalog's (journaled) replica map.
        self.cluster.replication.store_page(
            self.database, self.set_name, self._block.to_bytes(),
            len(self._root), source="client",
        )
        self.pages_shipped += 1
        self._block = None
        self._root = None

    def flush(self):
        """Ship the final partially-filled page."""
        self._ship_block()

    def discard(self):
        """Drop the open partially-built page without shipping it."""
        if self._root is not None:
            self.objects_discarded += len(self._root)
        self._block = None
        self._root = None


class ColumnarClusterLoader:
    """Builds struct-of-arrays pages client-side for a columnar set.

    Rows are buffered per column and laid onto a
    :class:`~repro.memory.columnar.ColumnarPage` whenever a full page's
    worth (``capacity``) accumulates; the sealed page bytes ship through
    the same replication path as row pages.  Same context-manager
    contract as :class:`ClusterLoader`: clean exit flushes, an exception
    discards the buffered remainder.
    """

    def __init__(self, cluster, database, set_name, page_size, schema):
        self.cluster = cluster
        self.database = database
        self.set_name = set_name
        self.page_size = page_size
        self.schema = schema
        self.capacity = ColumnarPage.capacity_for(schema, page_size)
        if self.capacity < 1:
            raise StorageError(
                "no row of %r fits on a %d-byte page"
                % (schema, page_size)
            )
        self._names = schema.names()
        self._buffers = {name: [] for name in self._names}
        self._buffered = 0
        self.pages_shipped = 0
        self.objects_loaded = 0
        self.objects_discarded = 0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.flush()
        else:
            self.discard()
        return False

    def append(self, type_or_class=None, init=None, **fields):
        """Buffer one row; keywords must cover every schema column.

        ``type_or_class`` is accepted (and ignored) so row-loader call
        sites can switch a set to columnar without edits — the schema
        already fixes the row type.
        """
        try:
            for name in self._names:
                self._buffers[name].append(fields[name])
        except KeyError:
            raise StorageError(
                "columnar append needs every schema column; missing %r"
                % (sorted(set(self._names) - set(fields)),)
            ) from None
        self._buffered += 1
        self.objects_loaded += 1
        if self._buffered >= self.capacity:
            self._ship_page()

    def append_columns(self, **columns):
        """Buffer many rows at once from equal-length per-column arrays."""
        lengths = {len(columns[name]) for name in self._names
                   if name in columns}
        if set(columns) != set(self._names) or len(lengths) != 1:
            raise StorageError(
                "append_columns needs equal-length values for exactly the "
                "schema columns %r" % (self._names,)
            )
        count = lengths.pop()
        for name in self._names:
            values = columns[name]
            buffer = self._buffers[name]
            buffer.extend(
                values.tolist() if hasattr(values, "tolist") else values
            )
        self._buffered += count
        self.objects_loaded += count
        while self._buffered >= self.capacity:
            self._ship_page()

    def append_built(self, build):
        raise StorageError(
            "columnar sets store fixed-stride columns, not built objects; "
            "use append(**fields) / append_columns(**arrays)"
        )

    def _ship_page(self):
        if not self._buffered:
            return
        take = min(self._buffered, self.capacity)
        columns = {}
        for name in self._names:
            buffer = self._buffers[name]
            columns[name] = buffer[:take]
            self._buffers[name] = buffer[take:]
        page = ColumnarPage.build(
            self.schema, columns, self.page_size,
            registry=self.cluster.catalog.registry,
        )
        self.cluster.replication.store_page(
            self.database, self.set_name, page.block.to_bytes(),
            len(page), source="client",
        )
        self._buffered -= take
        self.pages_shipped += 1

    def flush(self):
        """Ship everything still buffered (the final partial page last)."""
        while self._buffered:
            self._ship_page()

    def discard(self):
        """Drop the buffered, not-yet-shipped rows."""
        self.objects_discarded += self._buffered
        self._buffers = {name: [] for name in self._names}
        self._buffered = 0
