"""Master-side supervision of process-backed workers (DESIGN §13).

PR 2's fault layer survives *simulated* crashes: the injector raises a
Python exception inside the coordinator and the retry machinery catches
it.  A real back-end process fails differently — it is SIGKILLed by the
OS, wedges inside a kernel without returning, or stops beating after a
SIGSTOP — and none of those raise anything anywhere.  This module turns
real process failure back into the exceptions the recovery path already
understands.

Three pieces:

* **Heartbeats.**  Every spawned back-end publishes liveness + progress
  (beat sequence, monotonic timestamp, pid, current task id, rows
  consumed) into a tiny shared array on a fixed cadence, written by a
  daemon thread inside the child (:mod:`repro.cluster.procworker`).  A
  SIGSTOP freezes every thread in the child, so the beats stop exactly
  when the worker does.

* **The `Supervisor`.**  The master polls each worker's slot while
  awaiting its results and classifies it ``ALIVE`` (fresh beats),
  ``SUSPECT`` (more than ``suspect_beats`` cadences stale — lagging but
  possibly alive), or ``DEAD`` (silent past the ``dead_after_s`` hard
  deadline).  A DEAD verdict SIGKILLs the child, which the await loop
  then observes as a process exit — the same
  :class:`~repro.errors.WorkerCrashError` → re-fork → retry path an
  injected crash takes, so recovery is transport-invariant.  SUSPECT is
  deliberately *not* actionable: a lagging worker keeps its task, and a
  SIGCONT brings it back to ALIVE with the task completing exactly once.

* **Deadlines.**  ``RetryPolicy.timeout_s`` arms a real monotonic-clock
  deadline per dispatched task; a child that is still beating but has
  not produced its result in time is killed the same way, surfacing as
  :class:`~repro.errors.TaskDeadlineError` so the scheduler books a
  *timeout*, not a crash, even under an injectable test clock.

Everything observable lands in ``pc_sup_*`` metrics, including the
``pc_sup_recovery_seconds`` histogram of detect → re-fork latency that
``BENCH_chaos.json`` reports.
"""

from __future__ import annotations

import os
import signal
import time

#: Heartbeat slot layout (shared ``Array('d', 5)``): beat sequence,
#: monotonic timestamp of the beat, child pid, current task id (0 when
#: idle), and rows consumed by the current task so far.
BEAT_SEQ, BEAT_TIME, BEAT_PID, BEAT_TASK, BEAT_ROWS = range(5)
HEARTBEAT_FIELDS = 5

#: Default cadence the child publishes beats at, in seconds.
DEFAULT_BEAT_INTERVAL_S = 0.05
#: Missed cadences before a worker is marked SUSPECT.
DEFAULT_SUSPECT_BEATS = 4
#: Hard silence deadline before a worker is declared DEAD, in seconds.
DEFAULT_DEAD_AFTER_S = 2.0
#: Silence allowed to a child that has *never* beaten: a spawned process
#: re-imports the interpreter's world before its first beat, which under
#: load takes far longer than a beat interval.  A child that died during
#: import is caught by the await loop's liveness check regardless; this
#: grace only bounds a genuinely wedged import.
DEFAULT_SPAWN_GRACE_S = 30.0

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


def _env_float(name, default):
    value = os.environ.get(name)
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        return default


class WorkerVitals:
    """One worker's last-observed heartbeat, decoded for callers."""

    __slots__ = ("worker_id", "state", "staleness_s", "beats", "pid",
                 "task_id", "rows")

    def __init__(self, worker_id, state, staleness_s, beats, pid,
                 task_id, rows):
        self.worker_id = worker_id
        self.state = state
        self.staleness_s = staleness_s
        self.beats = beats
        self.pid = pid
        self.task_id = task_id
        self.rows = rows

    def __repr__(self):
        return "<WorkerVitals %s %s (%.3fs stale, %d beats)>" % (
            self.worker_id, self.state, self.staleness_s, self.beats
        )


class Supervisor:
    """Tracks back-end liveness and enforces the DEAD verdict.

    Configuration resolves, in order: explicit constructor arguments,
    then ``PC_SUP_BEAT_S`` / ``PC_SUP_SUSPECT_BEATS`` /
    ``PC_SUP_DEAD_S`` / ``PC_SUP_SPAWN_GRACE_S`` environment variables,
    then the module defaults.
    """

    def __init__(self, metrics=None, beat_interval_s=None,
                 suspect_beats=None, dead_after_s=None,
                 spawn_grace_s=None, clock=time.monotonic, kill=None,
                 recorder=None):
        self.beat_interval_s = (
            beat_interval_s if beat_interval_s is not None
            else _env_float("PC_SUP_BEAT_S", DEFAULT_BEAT_INTERVAL_S)
        )
        self.suspect_beats = (
            suspect_beats if suspect_beats is not None
            else int(_env_float("PC_SUP_SUSPECT_BEATS",
                                DEFAULT_SUSPECT_BEATS))
        )
        self.dead_after_s = (
            dead_after_s if dead_after_s is not None
            else _env_float("PC_SUP_DEAD_S", DEFAULT_DEAD_AFTER_S)
        )
        self.spawn_grace_s = max(
            self.dead_after_s,
            spawn_grace_s if spawn_grace_s is not None
            else _env_float("PC_SUP_SPAWN_GRACE_S", DEFAULT_SPAWN_GRACE_S),
        )
        self.clock = clock
        #: injectable for tests; the default delivers a real SIGKILL.
        self._kill = kill if kill is not None else self._sigkill
        self._watched = {}  # worker_id -> _ChildProcess
        self._states = {}  # worker_id -> ALIVE/SUSPECT/DEAD
        self._seen_beats = {}  # worker_id -> last observed beat seq
        #: optional flight recorder; verdicts and kills leave events.
        self.recorder = recorder
        self.metrics = metrics
        if metrics is not None:
            self._c_beats = metrics.counter(
                "pc_sup_beats_total",
                help="Heartbeats observed from back-end processes",
                trace="sup.beats",
            )
            self._c_suspects = metrics.counter(
                "pc_sup_suspects_total",
                help="ALIVE->SUSPECT transitions (heartbeat lag)",
                trace="sup.suspects",
            )
            self._c_deaths = metrics.counter(
                "pc_sup_deaths_total",
                help="Workers declared DEAD after heartbeat silence",
                trace="sup.deaths",
            )
            self._c_deadline_kills = metrics.counter(
                "pc_sup_deadline_kills_total",
                help="Wedged tasks killed at their wall-clock deadline",
                trace="sup.deadline_kills",
            )
            self._h_recovery = metrics.histogram(
                "pc_sup_recovery_seconds",
                help="Detect -> re-fork recovery latency per real "
                     "back-end death",
                trace="sup.recovery_s",
            )
            self._g_rows = metrics.gauge(
                "pc_sup_rows_consumed",
                help="Rows consumed by each worker's current task, as "
                     "published in its heartbeat slot",
                labelnames=("worker",),
                trace="sup.rows_consumed",
            )
        else:
            self._c_beats = self._c_suspects = None
            self._c_deaths = self._c_deadline_kills = None
            self._h_recovery = None
            self._g_rows = None

    @staticmethod
    def _sigkill(pid):
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            return False  # already gone: the await loop sees the exit
        return True

    # -- registration -----------------------------------------------------------

    def watch(self, worker_id, child):
        """Start supervising ``child`` as ``worker_id``'s back-end."""
        self._watched[worker_id] = child
        self._states[worker_id] = ALIVE
        # Pooled children keep beating between leases; baseline at the
        # current sequence so old beats are not re-counted.
        slot = getattr(child, "heartbeat", None)
        self._seen_beats[worker_id] = (
            int(slot[BEAT_SEQ]) if slot is not None else 0
        )

    def unwatch(self, worker_id, child=None):
        """Stop supervising (only if ``child`` still is the watched one)."""
        if child is not None and self._watched.get(worker_id) is not child:
            return
        self._watched.pop(worker_id, None)
        self._states.pop(worker_id, None)
        self._seen_beats.pop(worker_id, None)

    def state(self, worker_id):
        """The worker's last-assessed state (ALIVE for unwatched ones)."""
        return self._states.get(worker_id, ALIVE)

    def states(self):
        return dict(self._states)

    # -- assessment -------------------------------------------------------------

    def vitals(self, worker_id):
        """Read and classify one worker's heartbeat slot, updating state."""
        child = self._watched.get(worker_id)
        if child is None:
            return None
        slot = getattr(child, "heartbeat", None)
        now = self.clock()
        if slot is None:
            # No heartbeat channel (foreign child): liveness falls back
            # to the await loop's is_alive() check alone.
            return WorkerVitals(worker_id, ALIVE, 0.0, 0, child.pid, 0, 0)
        beats = int(slot[BEAT_SEQ])
        beat_time = slot[BEAT_TIME]
        dead_line = self.dead_after_s
        if beat_time == 0.0:
            # Never beat: a just-spawned child still importing.  Age it
            # from spawn time so a wedged import is eventually killed,
            # but against the (much longer) spawn grace — a loaded
            # machine makes first-beat latency look nothing like the
            # steady-state cadence.
            beat_time = getattr(child, "started_at", now)
            dead_line = self.spawn_grace_s
        staleness = max(0.0, now - beat_time)
        new_beats = beats - self._seen_beats.get(worker_id, 0)
        if new_beats > 0 and self._c_beats is not None:
            self._c_beats.inc(new_beats)
        self._seen_beats[worker_id] = beats
        if staleness >= dead_line:
            state = DEAD
        elif staleness > self.suspect_beats * self.beat_interval_s:
            state = SUSPECT
        else:
            state = ALIVE
        if self._g_rows is not None:
            self._g_rows.set(int(slot[BEAT_ROWS]), worker=worker_id)
        previous = self._states.get(worker_id, ALIVE)
        if state != previous:
            if state is SUSPECT and self._c_suspects is not None:
                self._c_suspects.inc()
            if state is DEAD and self._c_deaths is not None:
                self._c_deaths.inc()
            self._states[worker_id] = state
            if self.recorder is not None:
                self.recorder.record(
                    "sup.state", worker=worker_id, state=state,
                    was=previous, staleness_s=round(staleness, 4),
                    child_pid=child.pid,
                )
        return WorkerVitals(
            worker_id, state, staleness, beats, int(slot[BEAT_PID]),
            int(slot[BEAT_TASK]), int(slot[BEAT_ROWS]),
        )

    def poll(self):
        """Assess every watched worker; returns ``{worker_id: state}``."""
        return {
            worker_id: self.vitals(worker_id).state
            for worker_id in list(self._watched)
        }

    def enforce(self, worker_id, child, deadline=None, timeout_s=None):
        """One await-loop tick: the DEAD verdict and the task deadline.

        Returns ``None`` while the worker may still deliver, or a
        ``(reason, deadline_exceeded)`` pair after SIGKILLing the child.
        The caller's liveness check then observes the exit and books the
        death — the kill itself never raises into the await loop.
        """
        if deadline is not None and self.clock() >= deadline:
            if self._c_deadline_kills is not None:
                self._c_deadline_kills.inc()
            if self.recorder is not None:
                self.recorder.record(
                    "sup.deadline_kill", worker=worker_id,
                    child_pid=child.pid, timeout_s=timeout_s,
                )
            self._kill(child.pid)
            return (
                "task overran its %s wall-clock deadline; back-end "
                "process killed"
                % ("%.3fs" % timeout_s if timeout_s is not None
                   else "armed"),
                True,
            )
        vitals = self.vitals(worker_id)
        if vitals is not None and vitals.state is DEAD:
            self._kill(child.pid)
            return (
                "no heartbeat for %.3fs (deadline %.3fs); back-end "
                "process killed" % (vitals.staleness_s, self.dead_after_s),
                False,
            )
        return None

    # -- recovery accounting ----------------------------------------------------

    def observe_recovery(self, worker_id, seconds):
        """Record one detect -> re-fork recovery latency."""
        if self._h_recovery is not None:
            self._h_recovery.observe(seconds)

    def recovery_quantile(self, q):
        """The q-quantile of recovery latency, or None before any death."""
        if self._h_recovery is None:
            return None
        return self._h_recovery.quantile(q)
