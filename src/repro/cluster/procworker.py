"""The task loop of a process-backed worker back-end.

This module is the *child* side of :class:`~repro.cluster.transport.
ProcessTransport`: it runs in a spawned OS process and executes one task
at a time off a queue.  A task arrives fully described — the compiled
program, the stage list, the source (shared-memory page names or plain
columns), the sink kind — so the child needs none of the coordinator's
cluster machinery; it deliberately imports only the engine and memory
layers.

Sealed pages are attached zero-copy: the coordinator exports each page's
``multiprocessing.shared_memory`` segment name, the child attaches by
name and wraps the mapped bytes in an
:meth:`~repro.memory.block.AllocationBlock.from_buffer` view — the
paper's "a page moves between processes with zero (de)serialization",
for real this time.

Results travel back as plain Python values plus the engine-metric and
trace-counter deltas the coordinator replays into its shadow engine.  A
task whose result would carry PC objects (handles/facades pointing into
page memory) is *rejected*, not failed: the coordinator re-runs that
portion inline.

Since PR 9 the child runs a real :class:`~repro.obs.Tracer` (DESIGN
§14): every task executes inside a ``task`` span that adopts the
coordinator's trace context (``spec["trace_ctx"]``), each TCAP operator
gets one coalesced ``op`` span (first batch to last), and the finished
span batch ships back inside the result envelope — or, on failure,
inside the *error* envelope with the spans marked ``truncated``, so a
retry never loses the counters the attempt accumulated.  A
:class:`~repro.obs.FlightRecorder` writing a parent-allocated shared
ring keeps the last-N structured events readable even after a SIGKILL.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback

from multiprocessing import shared_memory

from repro.engine import kernels
from repro.engine.pipeline import (
    AggregateSink,
    HashBuildSink,
    MaterializeSink,
    PipelineEngine,
    object_batches,
)
from repro.engine.vectors import batches_of
from repro.memory.block import AllocationBlock
from repro.memory.builtins import AnyObject, VectorType
from repro.memory.columnar import ColumnarPage
from repro.obs.events import FlightRecorder
from repro.obs.tracer import Span, Tracer

_ROOT_VECTOR = VectorType(AnyObject)

#: Live progress of the task loop, published by the heartbeat thread.
#: Plain dict writes are atomic under the GIL, so the task loop updates
#: it lock-free and the beat thread reads whatever is current.
_progress = {"task": 0, "rows": 0}

#: The in-flight task's tracer/engine, kept module-level so the main
#: loop's error path can harvest partial spans and counter deltas after
#: ``_execute`` unwound (the satellite fix: deltas accumulated before an
#: exception must ship in the error envelope).
_task_state = {}


def _beat_loop(slot, interval):
    """Publish liveness + progress into the shared heartbeat slot.

    Runs as a daemon thread so it dies with the process — and, more
    importantly, *freezes* with it: a SIGSTOP suspends every thread, so
    the beat sequence stops advancing exactly while the worker cannot
    make progress.  The master's Supervisor reads staleness off this
    slot (see :mod:`repro.cluster.supervisor` for the field layout).
    """
    pid = os.getpid()
    seq = 0
    while True:
        seq += 1
        slot[0] = float(seq)  # BEAT_SEQ
        slot[2] = float(pid)  # BEAT_PID
        slot[3] = float(_progress["task"])  # BEAT_TASK
        slot[4] = float(_progress["rows"])  # BEAT_ROWS
        # The timestamp is written last: a torn read can at worst pair a
        # fresh timestamp with one-beat-old progress, never a stale
        # timestamp with fresh progress (which would delay detection).
        slot[1] = time.monotonic()  # BEAT_TIME
        time.sleep(interval)


class _TaskRejected(Exception):
    """The task cannot run (or return) remotely; run it inline instead."""


class _PlanStub:
    """The one slice of the physical plan the engine consults."""

    def __init__(self, build_sides):
        self.build_sides = build_sides


class _OpSpanRecorder:
    """Coalesces operator applications into one ``op`` span per operator.

    Plugs into :class:`PipelineEngine`'s profiler seam, so it sees every
    TCAP operator application on both the collect and the sink paths.  A
    task applies each operator once per batch; a span per application
    would explode the trace, so the span for an operator covers its
    first application through its latest one, with per-batch row counts
    accumulated on the span.  Spans attach directly to the task's root
    span (never the tracer stack: coalesced ops overlap in time).
    """

    def __init__(self, root):
        self._root = root
        self._ops = {}

    def operator(self, name, fn, stage, batch):
        span = self._ops.get(name)
        if span is None:
            span = Span(name, kind="op")
            span.pid = self._root.pid
            span.parent_id = self._root.span_id
            self._ops[name] = span
            self._root.children.append(span)
        span.inc("op.rows_in", len(batch))
        result = fn(stage, batch)
        span.end = time.monotonic()
        if result is not None:
            span.inc("op.rows_out", len(result))
        return result

    def note_columnar_rows(self, name, rows):
        """Book array-kernel rows where the coordinator's replay reads.

        With a profiler set, the engine routes columnar row counts here
        instead of its tracer fallback.  They go on the task *root*
        span, whose direct counters ship flat in the ``"trace"`` delta —
        the channel ``_apply_remote_deltas`` re-books its
        ``pc_op_columnar_rows_total`` series from.  Putting them on the
        op span instead would strand them (replay only reads the flat
        dict) and double-count once the span tree is grafted.
        """
        self._root.inc("op.%s.columnar_rows" % name, rows)


class _StagesView:
    """Adapter giving a bare stage list the Pipeline interface."""

    def __init__(self, stages):
        self.stages = stages


def _disown(shm):
    """Detach a segment from this process's resource tracker.

    The coordinator owns every segment's lifecycle (it created them and
    unlinks them on eviction/close); left registered here, the child's
    tracker would unlink segments the coordinator still serves at child
    exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001  # pcsan: disable=PC005
        pass  # tracker internals vary by version; worst case is a warning


#: (shm, view) pairs whose buffers were still referenced at detach time
#: (e.g. numpy views created by user stages); re-tried after later tasks.
_lingering = []


def _detach(attachments):
    for pair in attachments + _lingering[:]:
        shm, view = pair
        try:
            view.release()
        except BufferError:
            if pair not in _lingering:
                _lingering.append(pair)
            continue
        try:
            shm.close()
        except BufferError:  # pragma: no cover  # pcsan: disable=PC005
            continue  # view released above, so close() cannot raise this
        if pair in _lingering:
            _lingering.remove(pair)


def _page_objects(blocks):
    """Yield every object (or columnar row batch) of the attached blocks.

    Columnar pages yield one :class:`ColumnarRows` per page — downstream
    ``object_batches`` slices or expands it depending on whether the scan
    was columnar-lowered; row pages yield their root-vector handles.
    """
    for block in blocks:
        colpage = ColumnarPage.attach(block)
        if colpage is not None:
            yield colpage.rows()
            continue
        offset, _code = block.root()
        if offset is None:
            continue
        for handle in _ROOT_VECTOR.facade(block, offset):
            yield handle


def _source_batches(source, engine, registry, attachments):
    kind = source[0]
    if kind == "pages":
        blocks = []
        for name, size in source[1]:
            shm = shared_memory.SharedMemory(name=name)
            _disown(shm)
            # shm.buf is the mapped segment, not a PC block's
            # backing store; the block façade is built over it below.
            view = memoryview(shm.buf)[:size]  # pcsan: disable=PC002
            attachments.append((shm, view))
            blocks.append(AllocationBlock.from_buffer(view, registry=registry))
        columnar = len(source) > 3 and bool(source[3])
        return object_batches(
            _page_objects(blocks), source[2], engine.batch_size,
            columnar=columnar,
        )
    return batches_of(source[1], engine.batch_size)


def _build_sink(engine, sink_spec):
    kind = sink_spec[0]
    if kind == "aggregate":
        # merge semantics apply against the coordinator's store, so the
        # child always builds plain groups; the coordinator's sink
        # merges on install.
        return AggregateSink(engine, sink_spec[1])
    if kind == "hash_build":
        return HashBuildSink(engine, sink_spec[1])
    if kind == "materialize":
        return MaterializeSink(engine, sink_spec[1])
    raise _TaskRejected("unknown sink kind %r" % (kind,))


def _run_collect(engine, stages, batches, tracer):
    """Mirror of the scheduler's inline collect loop, counters included."""
    columns = None
    for batch in batches:
        engine.metrics.batches += 1
        engine.metrics.rows_in += len(batch)
        _progress["rows"] += len(batch)
        tracer.add("engine.batches")
        tracer.add("engine.rows_in", len(batch))
        current = batch
        empty = False
        for stage in stages:
            engine.metrics.stage_invocations += 1
            current = engine._apply_stage(stage, current)
            if len(current) == 0:
                empty = True
                break
        if empty:
            continue
        tracer.add("engine.rows_out", len(current))
        if columns is None:
            columns = {name: [] for name in current.names()}
        for name in columns:
            # Array-backed columns must leave as plain Python values
            # (picklable, and free of page-memory references).
            columns[name].extend(
                kernels.reify_column(current.column(name))
            )
    return columns


def _reject_pc_values(value, depth=0):
    """Refuse to ship results still pointing into page memory."""
    if hasattr(value, "pc_block") or hasattr(value, "deref"):
        raise _TaskRejected(
            "result holds PC objects; page-backed values cannot leave "
            "the back-end process"
        )
    if depth >= 4 or value is None:
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _reject_pc_values(key, depth + 1)
            _reject_pc_values(item, depth + 1)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _reject_pc_values(item, depth + 1)


def _pack_deltas(engine, root, events):
    """The shipping form of one task's evidence (result or error leg).

    The root span's *direct* counters travel flat in ``"trace"`` — the
    coordinator replays them with ``tracer.add`` onto its own open task
    span, exactly as the counter-only protocol did — and are emptied off
    the shipped span tree so grafting cannot double-count them.  The op
    spans keep their own counters; they exist only remotely.  Spans
    serialize relative to the root's start, with the root's absolute
    ``time.monotonic()`` carried once as ``"span_base"`` for the
    coordinator's clock-offset shift.
    """
    trace_counts = dict(root.counters)
    root.counters = {}
    return {
        "metrics": engine.metrics.as_dict() if engine is not None else {},
        "trace": trace_counts,
        "spans": [root.to_dict()],
        "span_base": root.start,
        "events": events,
        "pid": os.getpid(),
    }


def _failure_deltas(recorder):
    """Harvest whatever the failed task accumulated before it blew up.

    ``_execute`` registered its tracer/engine in ``_task_state`` before
    running; by the time we get here the task span has been closed by
    the context-manager unwind (or is force-closed via ``abandon`` if
    the failure skipped the unwind), so the evidence is complete as far
    as it goes — it is marked ``truncated`` because the task did not
    finish, not because the spans are malformed.  Returns None when the
    failure precedes any execution state (e.g. a spec unpickle error).
    """
    tracer = _task_state.get("tracer")
    if tracer is None:
        return None
    trace = tracer.abandon() or tracer.last_trace
    if trace is None:
        return None
    root = trace.root
    for span in root.walk():
        span.truncated = True
    events = []
    if recorder is not None:
        events = recorder.snapshot(_task_state.get("events_since", 0))
    return _pack_deltas(_task_state.get("engine"), root, events)


def _execute(spec, task_id=0, recorder=None):
    tracer = Tracer()
    context = spec.get("trace_ctx") or {}
    if context.get("trace_id"):
        tracer.trace_id = context["trace_id"]
    with tracer.span("task-%d" % task_id, kind="task") as root:
        root.pid = os.getpid()
        root.parent_id = context.get("parent_span_id")
        engine = PipelineEngine(
            spec["program"], _PlanStub(spec["build_sides"]), None,
            batch_size=spec["batch_size"], tracer=tracer,
            profiler=_OpSpanRecorder(root),
        )
        _task_state["tracer"] = tracer
        _task_state["engine"] = engine
        engine.hash_tables.update(spec["hash_tables"])
        attachments = []
        try:
            batches = _source_batches(
                spec["source"], engine, spec["registry"], attachments
            )
            stages = spec["stages"]
            sink_spec = spec["sink"]
            kind = sink_spec[0]
            if kind == "collect":
                result = _run_collect(engine, stages, batches, tracer)
            else:
                sink = _build_sink(engine, sink_spec)
                view = _StagesView(stages)
                for batch in batches:
                    engine.metrics.batches += 1
                    engine.metrics.rows_in += len(batch)
                    _progress["rows"] += len(batch)
                    engine._process_batch(view, batch, sink)
                if kind == "aggregate":
                    result = (list(sink.groups.keys()),
                              list(sink.groups.values()))
                elif kind == "hash_build":
                    result = sink.table
                else:
                    result = sink.columns
            _reject_pc_values(result)
        finally:
            _detach(attachments)
    events = []
    if recorder is not None:
        events = recorder.snapshot(_task_state.get("events_since", 0))
    deltas = _pack_deltas(engine, root, events)
    return result, deltas


def backend_main(task_queue, result_queue, heartbeat=None,
                 beat_interval=0.05, flight=None):
    """The back-end process's main loop: one task at a time, until None.

    With a ``heartbeat`` slot (a shared ``Array('d', 5)``), a daemon
    thread publishes liveness + progress every ``beat_interval`` seconds
    for the master-side Supervisor; without one the loop behaves exactly
    as before (foreign callers, heartbeat-less tests).  ``flight`` is an
    optional parent-allocated shared byte ring: the child's flight
    recorder mirrors every event into it, so the master can read this
    process's last-N events even after a SIGKILL.
    """
    if heartbeat is not None:
        threading.Thread(
            target=_beat_loop, args=(heartbeat, beat_interval),
            name="pc-heartbeat", daemon=True,
        ).start()
    recorder = FlightRecorder(buffer=flight)
    while True:
        item = task_queue.get()
        if item is None:
            break
        task_id, blob = item
        _progress["task"] = task_id
        _progress["rows"] = 0
        _task_state.clear()
        _task_state["events_since"] = recorder.seq
        recorder.record("task.dispatch", task=task_id)
        try:
            try:
                spec = pickle.loads(blob)
                result, deltas = _execute(spec, task_id=task_id,
                                          recorder=recorder)
            except _TaskRejected as rejected:
                recorder.record("task.reject", task=task_id,
                                reason=str(rejected)[:120])
                result_queue.put((task_id, "reject", str(rejected)))
                continue
            except Exception:  # noqa: BLE001 - reported as a crash, parent re-forks
                recorder.record("task.error", task=task_id)
                # The error envelope carries the deltas accumulated
                # before the exception (spans marked truncated), so a
                # retry never loses this attempt's counters.
                result_queue.put((task_id, "error", {
                    "traceback": traceback.format_exc(limit=20),
                    "deltas": _failure_deltas(recorder),
                }))
                continue
            recorder.record("task.complete", task=task_id,
                            rows=_progress["rows"])
            try:
                payload = pickle.dumps((result, deltas))
            except Exception as exc:  # noqa: BLE001 - unshippable, not fatal
                result_queue.put(
                    (task_id, "reject", "unpicklable result: %s" % exc)
                )
                continue
            result_queue.put((task_id, "ok", payload))
        finally:
            _progress["task"] = 0
            _task_state.clear()
