"""Pluggable cluster transports: the accounting core plus two backends.

The :class:`Transport` base carries everything the cluster needs to move
bytes between nodes — the byte/message accounting, fault injection with
drop/corrupt/delay verdicts, checksum verification with a re-send budget
— exactly the machinery :class:`~repro.cluster.network.SimulatedNetwork`
always had; the simulator is now simply the transport whose back-ends
stay in-process (the deterministic CI / fault-matrix backend).

:class:`ProcessTransport` is the real one.  Each worker's back-end is a
spawned OS process (the paper's front-end/back-end split made literal):
the coordinator submits self-contained task blobs over a per-worker task
queue, the child attaches to sealed pages through
``multiprocessing.shared_memory`` *by segment name* — page bytes are
never pickled — and ``refork_backend`` terminates the child and leases a
fresh one.  ``spawn`` (not ``fork``) is used deliberately: a forked
child would inherit the coordinator's entire heap — open buffer pools,
pinned pages, lock state — while the paper's back-end is a clean process
that receives everything it needs explicitly.

Children are pooled process-wide (spawn costs ~100 ms with imports) and
reused across clusters; a crashed or busy child is terminated instead of
reused, so a leased child is always known-clean.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import queue
import time
import weakref
import zlib
from collections import defaultdict

from repro.cluster.supervisor import (
    BEAT_ROWS,
    BEAT_TIME,
    DEFAULT_BEAT_INTERVAL_S,
    HEARTBEAT_FIELDS,
    Supervisor,
    _env_float,
)
from repro.cluster.worker import BackendProcess, CompletedFuture
from repro.errors import (
    BackendCrashedError,
    PageCorruptionError,
    TaskDeadlineError,
    TransferDroppedError,
    WorkerCrashError,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs.events import RING_BYTES, read_ring
from repro.storage.replication import corrupt_bytes, page_checksum

try:  # optional: only the process transport's task path needs it
    import cloudpickle
except ImportError:  # pragma: no cover - depends on the environment
    cloudpickle = None


def estimate_value_bytes(value):
    """Cheap size estimate for row-shipped Python values."""
    if isinstance(value, str):
        return 16 + len(value)
    if isinstance(value, (list, tuple)):
        return 16 + sum(estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 16 + sum(
            estimate_value_bytes(k) + estimate_value_bytes(v)
            for k, v in value.items()
        )
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return 16 + int(nbytes)
    return 16


def rows_checksum(rows):
    """CRC32 stamp for a shuffled row batch.

    Rows are structured Python values, not page bytes, so the checksum
    runs over their ``repr`` — deterministic for the value types that
    travel the shuffle path, and cheap enough for fault-injected runs
    (the no-injector fast path skips it entirely).
    """
    crc = 0
    for row in rows:
        crc = zlib.crc32(repr(row).encode("utf-8", "backslashreplace"), crc)
    return crc & 0xFFFFFFFF


#: Frame prepended to a row batch to materialize a ``corrupt`` verdict —
#: detectable by the checksum, impossible in real shuffle data.
_CORRUPT_ROW_FRAME = ("__pc-corrupt-frame__",)


class Transport:
    """Byte-accounted message passing between nodes, fault-injectable.

    Subclasses pick how worker back-ends execute (:meth:`make_backend`)
    and advertise the page residency their back-ends need
    (``page_residency``); all shipping and accounting is shared.
    """

    name = "base"
    #: Buffer-pool residency workers should use so this transport's
    #: back-ends can reach sealed pages ("mem" or "shm").
    page_residency = "mem"

    def __init__(self, tracer=None, fault_injector=None, retry_policy=None,
                 metrics=None, recorder=None):
        self.tracer = tracer or Tracer()
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        #: optional flight recorder (page ships et al. leave events).
        self.recorder = recorder
        # All accounting lives in the metrics registry; each counter
        # declares its trace-mirror name once, so the trace counters,
        # the Prometheus series, and stats() cannot drift apart.
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry(tracer=self.tracer)
        self._c_messages = self.metrics.counter(
            "pc_net_messages_total", help="Simulated network transfers",
            trace="net.messages",
        )
        self._c_bytes_total = self.metrics.counter(
            "pc_net_bytes_total", help="Bytes moved over the network",
            trace="net.bytes_total",
        )
        self._c_bytes_zero_copy = self.metrics.counter(
            "pc_net_bytes_zero_copy_total",
            help="Bytes moved as whole PC pages (no serde)",
            trace="net.bytes_zero_copy",
        )
        self._c_bytes_rows = self.metrics.counter(
            "pc_net_bytes_rows_total",
            help="Bytes moved as structured rows (join shuffles)",
            trace="net.bytes_rows",
        )
        self._c_link_bytes = self.metrics.counter(
            "pc_net_link_bytes_total",
            help="Bytes moved per (src, dst) link",
            labelnames=("src", "dst"),
            trace="net.link.{src}->{dst}",
        )
        self._c_transfers_dropped = self.metrics.counter(
            "pc_net_transfers_dropped_total",
            help="Transfers dropped by fault injection",
            trace="net.transfers_dropped",
        )
        self._c_transfers_corrupted = self.metrics.counter(
            "pc_net_transfers_corrupted_total",
            help="Transfers delivered with bit-flipped payloads",
            trace="net.transfers_corrupted",
        )
        self._c_transfer_retries = self.metrics.counter(
            "pc_net_transfer_retries_total",
            help="Re-sends after drops or detected corruption",
            trace="net.transfer_retries",
        )
        self._c_delay_events = self.metrics.counter(
            "pc_net_delay_events_total",
            help="Transfers hit by an injected delay",
            trace="net.delay_events",
        )
        self._c_delay_ms = self.metrics.counter(
            "pc_net_delay_ms_total",
            help="Simulated delay in whole milliseconds",
            trace="net.delay_ms",
        )
        self._c_delay_seconds = self.metrics.counter(
            "pc_net_delay_seconds_total",
            help="Simulated delay in (float) seconds",
            trace="net.delay_s_total",
        )

    # -- back-end lifecycle ------------------------------------------------------

    def make_backend(self, worker):
        """A fresh back-end for ``worker`` (in-process by default)."""
        return BackendProcess(worker)

    def close(self):
        """Release transport-held resources (child processes etc.)."""

    # Legacy counter attributes: read-only views over the registry.

    @property
    def messages(self):
        return self._c_messages.value

    @property
    def bytes_total(self):
        return self._c_bytes_total.value

    @property
    def bytes_zero_copy(self):
        return self._c_bytes_zero_copy.value

    @property
    def bytes_rows(self):
        return self._c_bytes_rows.value

    @property
    def by_link(self):
        """Fresh ``{(src, dst): bytes}`` dict — mutating it cannot touch
        the transport's own accounting."""
        link = defaultdict(int)
        for (src, dst), nbytes in self._c_link_bytes.series().items():
            link[(src, dst)] = nbytes
        return link

    @property
    def transfers_dropped(self):
        return self._c_transfers_dropped.value

    @property
    def transfers_corrupted(self):
        return self._c_transfers_corrupted.value

    @property
    def transfer_retries(self):
        return self._c_transfer_retries.value

    @property
    def delay_s_total(self):
        return self._c_delay_seconds.value

    def _record(self, src, dst, nbytes, counter):
        self._c_messages.inc()
        self._c_bytes_total.inc(nbytes)
        self._c_link_bytes.inc(nbytes, src=src, dst=dst)
        counter.inc(nbytes)

    def _retry_budget(self):
        return (
            self.retry_policy.transfer_retries
            if self.retry_policy is not None else 0
        )

    def _deliver(self, src, dst, nbytes, counter):
        """Attempt delivery, re-sending dropped transfers per policy.

        Returns the final verdict: ``"deliver"`` or ``"corrupt"`` (the
        payload arrived, but bit-flipped — the *caller* decides whether
        its payload type can detect that).
        """
        attempts = 0
        while True:
            verdict, delay_s = "deliver", 0.0
            if self.fault_injector is not None:
                verdict, delay_s = self.fault_injector.on_transfer(
                    src, dst, nbytes
                )
            if delay_s:
                self._c_delay_seconds.inc(delay_s)
                self._c_delay_events.inc()
                self._c_delay_ms.inc(int(delay_s * 1000))
            if verdict != "drop":
                self._record(src, dst, nbytes, counter)
                return verdict
            self._c_transfers_dropped.inc()
            budget = self._retry_budget()
            if attempts >= budget:
                raise TransferDroppedError(
                    "transfer %s->%s (%d bytes) dropped and retry budget "
                    "of %d exhausted" % (src, dst, nbytes, budget)
                )
            attempts += 1
            self._c_transfer_retries.inc()

    def ship_page(self, src, dst, data, checksum=None):
        """Move a PC page's bytes; zero serialization on either end.

        With a ``checksum`` (the page's sealed CRC32), the arrived bytes
        are verified on receipt: a corrupted arrival is re-sent within
        the transfer retry budget and raises
        :class:`~repro.errors.PageCorruptionError` once it is exhausted,
        so corrupted bytes are never handed to the receiver.  Without a
        checksum, a corrupted payload is delivered as-is — downstream
        integrity checks (spill reload, replicated reads) catch it.
        """
        nbytes = len(data)
        if self.recorder is not None:
            self.recorder.record("net.page_ship", src=src, dst=dst,
                                 bytes=nbytes)
        attempts = 0
        while True:
            verdict = self._deliver(src, dst, nbytes, self._c_bytes_zero_copy)
            payload = data
            if verdict == "corrupt":
                payload = corrupt_bytes(data)
                self._c_transfers_corrupted.inc()
            if checksum is None or page_checksum(payload) == checksum:
                return payload
            budget = self._retry_budget()
            if attempts >= budget:
                raise PageCorruptionError(
                    "page transfer %s->%s (%d bytes) arrived corrupt and "
                    "the re-send budget of %d is exhausted"
                    % (src, dst, nbytes, budget)
                )
            attempts += 1
            self._c_transfer_retries.inc()

    def ship_rows(self, src, dst, rows):
        """Move structured rows (the join-shuffle path).

        Row batches get the same integrity contract as pages: the batch
        is stamped with :func:`rows_checksum` before sending, a
        ``corrupt`` verdict is *detected* on receipt and re-sent within
        the transfer retry budget, and
        :class:`~repro.errors.PageCorruptionError` surfaces once the
        budget is exhausted — corrupted rows are never handed to the
        receiver.  Without a fault injector no verdict can be anything
        but ``deliver``, so the checksum work is skipped entirely.
        """
        nbytes = sum(estimate_value_bytes(row) for row in rows)
        if self.fault_injector is None:
            self._deliver(src, dst, nbytes, self._c_bytes_rows)
            return rows
        checksum = rows_checksum(rows)
        attempts = 0
        while True:
            verdict = self._deliver(src, dst, nbytes, self._c_bytes_rows)
            payload = rows
            if verdict == "corrupt":
                payload = [_CORRUPT_ROW_FRAME] + list(rows)
                self._c_transfers_corrupted.inc()
            if rows_checksum(payload) == checksum:
                return payload
            budget = self._retry_budget()
            if attempts >= budget:
                raise PageCorruptionError(
                    "row transfer %s->%s (%d rows) arrived corrupt and "
                    "the re-send budget of %d is exhausted"
                    % (src, dst, len(rows), budget)
                )
            attempts += 1
            self._c_transfer_retries.inc()

    def stats(self):
        return {
            "transport": self.name,
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "bytes_zero_copy": self.bytes_zero_copy,
            "bytes_rows": self.bytes_rows,
            "transfers_dropped": self.transfers_dropped,
            "transfers_corrupted": self.transfers_corrupted,
            "transfer_retries": self.transfer_retries,
            "delay_s_total": self.delay_s_total,
            # Serializable per-link breakdown: "src->dst" -> bytes.  This
            # is what exposes skewed shuffle partners in cluster.stats().
            # Built fresh on every call — callers mutating the returned
            # dict cannot corrupt the transport's accounting.
            "by_link": {
                "%s->%s" % link: nbytes
                for link, nbytes in self.by_link.items()
            },
        }

    def reset(self):
        for counter in (
            self._c_messages, self._c_bytes_total, self._c_bytes_zero_copy,
            self._c_bytes_rows, self._c_link_bytes,
            self._c_transfers_dropped, self._c_transfers_corrupted,
            self._c_transfer_retries, self._c_delay_events,
            self._c_delay_ms, self._c_delay_seconds,
        ):
            counter.reset()


# -- remote tasks ----------------------------------------------------------------


def remote_available():
    """Whether remote task blobs can be built at all (needs cloudpickle)."""
    return cloudpickle is not None


def serialize_task(spec):
    """Pickle a task spec for a back-end process (cloudpickle: closures)."""
    if cloudpickle is None:
        raise RuntimeError("cloudpickle is not available")
    return cloudpickle.dumps(spec)


class RemoteTask:
    """One worker's stage portion, packaged for a back-end process.

    ``blob`` is a self-contained cloudpickle payload the child executes
    with :mod:`repro.cluster.procworker`; ``run_inline`` re-runs the same
    portion in the coordinator (the fallback when the child reports the
    task unshippable); ``on_result`` installs a successful remote
    outcome into the coordinator's shadow state; ``cleanup`` releases
    resources held for the task's duration (the pins keeping exported
    pages' shared-memory segments alive) and is invoked by the scheduler
    exactly once, whatever the outcome.
    """

    def __init__(self, blob, run_inline, on_result, label="", cleanup=None):
        self.blob = blob
        self.run_inline = run_inline
        self.on_result = on_result
        self.label = label
        self.cleanup = cleanup

    def __repr__(self):
        return "<RemoteTask %s (%d bytes)>" % (self.label, len(self.blob))


class RemoteOutcome:
    """What a completed remote task hands back to the coordinator.

    Beyond the result and counter deltas, it carries the child's span
    batch (serialized :meth:`Span.to_dict` trees, timestamps relative to
    ``span_base`` on the *child's* ``time.monotonic()`` clock), the
    flight-recorder events of the task, and the clock calibration
    (``clock_offset`` such that master ≈ child + offset, accurate to
    ``clock_error_s``) the coordinator needs to graft the spans into the
    job tree.  Error and death envelopes build one too (``result=None``)
    so partial evidence takes the same grafting path.
    """

    def __init__(self, result, metrics, trace_counts, spans=(),
                 span_base=0.0, events=(), clock_offset=0.0,
                 clock_error_s=0.0, pid=None):
        self.result = result
        #: EngineMetrics field deltas accumulated by the child's engine.
        self.metrics = metrics
        #: tracer counter deltas (``engine.batches`` etc.) from the child.
        self.trace_counts = trace_counts
        self.spans = list(spans or ())
        self.span_base = span_base
        self.events = list(events or ())
        self.clock_offset = clock_offset
        self.clock_error_s = clock_error_s
        self.pid = pid

    @classmethod
    def from_deltas(cls, deltas, result=None, clock_offset=0.0,
                    clock_error_s=0.0):
        """Build from a child's shipped ``deltas`` dict (ok or error leg)."""
        return cls(
            result,
            deltas.get("metrics") or {},
            deltas.get("trace") or {},
            spans=deltas.get("spans"),
            span_base=deltas.get("span_base", 0.0),
            events=deltas.get("events"),
            clock_offset=clock_offset,
            clock_error_s=clock_error_s,
            pid=deltas.get("pid"),
        )


class _PendingFuture:
    """Await-side handle of a task submitted to a back-end process."""

    def __init__(self, child, backend, task, task_id):
        self._child = child
        self._backend = backend
        self._task = task
        self._task_id = task_id
        self._done = False
        self._value = None
        self._error = None
        #: armed by ProcessBackend.submit from RetryPolicy.timeout_s —
        #: an absolute monotonic-clock instant, enforced while awaiting.
        self.deadline = None
        self.timeout_s = None
        #: the transport's Supervisor, consulted on every await poll tick.
        self.supervisor = None

    def _monitor(self, worker_id):
        """Build the per-poll-tick liveness/deadline check, if supervised."""
        supervisor = self.supervisor
        if supervisor is None:
            return None
        child, deadline, timeout_s = self._child, self.deadline, self.timeout_s

        def check():
            return supervisor.enforce(
                worker_id, child, deadline=deadline, timeout_s=timeout_s
            )

        return check

    def result(self):
        if self._done:
            if self._error is not None:
                raise self._error
            return self._value
        self._done = True
        worker_id = self._backend.worker.worker_id
        status, payload = self._child.wait_for(
            self._task_id, monitor=self._monitor(worker_id)
        )
        if status == "ok":
            try:
                result, deltas = pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - any decode failure is a crash
                self._backend.crashed = True
                self._error = WorkerCrashError(
                    "undecodable result from back-end process of worker "
                    "%r: %s" % (worker_id, exc)
                )
                raise self._error from exc
            offset, error_s = self._child.calibrate_clock()
            self._value = RemoteOutcome.from_deltas(
                deltas, result=result, clock_offset=offset,
                clock_error_s=error_s,
            )
            return self._value
        if status == "reject":
            # The child judged the task unshippable (PC-object results,
            # unpicklable pieces); the portion runs inline in the
            # front-end instead — same code, same crash semantics.
            try:
                self._value = self._backend.run_user_code(
                    self._task.run_inline
                )
            except WorkerCrashError as crash:
                self._error = crash
                raise
            return self._value
        self._backend.crashed = True
        if status == "error":
            # A Python-level failure inside the child: the envelope is a
            # dict carrying the traceback plus the deltas the task
            # accumulated before it blew up (spans marked truncated), so
            # retries keep the attempt's counters.  Legacy string
            # payloads (a pooled pre-upgrade child) degrade gracefully.
            if isinstance(payload, dict):
                message = payload.get("traceback", "")
                deltas = payload.get("deltas")
            else:
                message, deltas = payload, None
            self._error = WorkerCrashError(
                "back-end process of worker %r died: %s"
                % (worker_id, message)
            )
            if deltas:
                offset, error_s = self._child.calibrate_clock()
                self._error.remote_outcome = RemoteOutcome.from_deltas(
                    deltas, clock_offset=offset, clock_error_s=error_s,
                )
            self._error.detected_at = time.monotonic()
            raise self._error
        verdict = self._child.kill_verdicts.pop(self._task_id, None)
        if verdict is not None and verdict[1]:
            self._error = TaskDeadlineError(
                "task %r on worker %r: %s"
                % (self._task.label, worker_id, verdict[0])
            )
        elif verdict is not None:
            self._error = WorkerCrashError(
                "back-end process of worker %r declared dead: %s"
                % (worker_id, verdict[0])
            )
        else:
            self._error = WorkerCrashError(
                "back-end process of worker %r died: %s"
                % (worker_id, payload)
            )
        outcome = self._child.post_mortem_outcome(self._task_id)
        if outcome is not None:
            self._error.remote_outcome = outcome
        # When the death was detected, for recovery-latency accounting
        # (WorkerNode.await_result observes now -> post-re-fork).
        self._error.detected_at = time.monotonic()
        raise self._error


# -- the child-process pool -------------------------------------------------------


class _ChildProcess:
    """One spawned back-end process plus its task/result queues."""

    def __init__(self):
        # Imported lazily so the child's spawn import of procworker does
        # not drag the whole cluster package into every interpreter.
        from repro.cluster.procworker import backend_main

        ctx = multiprocessing.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        # Liveness + progress slot the child's beat thread writes into;
        # lock-free because each field is a single aligned double.
        self.heartbeat = ctx.Array(
            "d", HEARTBEAT_FIELDS, lock=False
        )
        # The child's flight-recorder ring: fixed-width JSON records in
        # shared memory, single-writer (the child), readable by the
        # master post-mortem after a SIGKILL.
        self.flight = ctx.Array("c", RING_BYTES, lock=False)
        self.beat_interval_s = _env_float(
            "PC_SUP_BEAT_S", DEFAULT_BEAT_INTERVAL_S
        )
        self.started_at = time.monotonic()
        self._proc = ctx.Process(
            target=backend_main,
            args=(self._tasks, self._results, self.heartbeat,
                  self.beat_interval_s, self.flight),
            daemon=True,
        )
        self._proc.start()
        self._task_ids = itertools.count(1)
        self._arrived = {}
        self._outstanding = set()
        #: task_id -> submit instant (master clock), for synthesizing a
        #: truncated task span when the child dies without an envelope.
        self.submit_times = {}
        #: task_id -> (reason, deadline_exceeded) for supervisor kills,
        #: consumed by _PendingFuture to type the resulting error.
        self.kill_verdicts = {}
        #: lazily calibrated clock translation (master ≈ child + offset).
        self.clock_offset = None
        self.clock_error_s = None
        self.broken = False

    @property
    def pid(self):
        return self._proc.pid

    def healthy(self):
        return not self.broken and self._proc.is_alive()

    def idle(self):
        return not self._outstanding

    def submit(self, task, backend):
        task_id = next(self._task_ids)
        self.submit_times[task_id] = time.monotonic()
        self._tasks.put((task_id, task.blob))
        self._outstanding.add(task_id)
        return _PendingFuture(self, backend, task, task_id)

    def calibrate_clock(self):
        """Estimate the child→master ``time.monotonic()`` offset.

        Each heartbeat publishes the child's monotonic clock at beat
        time; a master-side sample ``now - BEAT_TIME`` therefore equals
        ``offset + staleness`` with staleness in ``[0, beat interval]``.
        Sampling across at least one beat period and keeping the minimum
        bounds the estimate's error by the beat interval — the handshake
        DESIGN §14 promises.  Calibrated once per child (children are
        pooled), lazily, on first use.  A child that never beat (or died
        first) yields offset 0 with an infinite error bound; on Linux
        both processes read the same CLOCK_MONOTONIC, so 0 is in fact
        the right translation.
        """
        if self.clock_offset is not None:
            return self.clock_offset, self.clock_error_s
        interval = self.beat_interval_s
        best = None
        horizon = time.monotonic() + 1.25 * interval
        while time.monotonic() < horizon:
            beat_time = self.heartbeat[BEAT_TIME]
            if beat_time:
                sample = time.monotonic() - beat_time
                if best is None or sample < best:
                    best = sample
            if not self._proc.is_alive():
                break
            time.sleep(min(interval / 8.0, 0.01))
        if best is None:
            self.clock_offset, self.clock_error_s = 0.0, float("inf")
        else:
            self.clock_offset, self.clock_error_s = best, interval
        return self.clock_offset, self.clock_error_s

    def post_mortem_outcome(self, task_id):
        """Synthesize the evidence for a task whose child never answered.

        A SIGKILLed child ships nothing, but the master still has the
        heartbeat slot (rows consumed), the shared flight ring (last-N
        events, readable post-mortem), and its own submit instant — so
        the coordinator can graft a ``truncated`` task span covering
        submit → detection rather than leaving a hole in the trace.
        Timestamps are assembled directly in the master's clock frame:
        ``span_base`` is the submit instant and ``clock_offset`` is 0.
        """
        submitted = self.submit_times.get(task_id)
        if submitted is None:
            return None
        now = time.monotonic()
        offset = self.clock_offset or 0.0
        events = []
        for event in read_ring(self.flight):
            ts = event.get("ts", 0.0) + offset
            if ts >= submitted - self.beat_interval_s:
                events.append(dict(event, ts=ts - submitted))
        span = {
            "name": "task-%d" % task_id,
            "kind": "task",
            "detail": "synthesized by the coordinator: the back-end died "
                      "without delivering",
            "start_s": 0.0,
            "duration_s": now - submitted,
            "counters": {"sup.rows_consumed": int(self.heartbeat[BEAT_ROWS])},
            "children": [],
            "pid": self.pid,
            "truncated": True,
        }
        if events:
            span["events"] = events
        return RemoteOutcome(
            None, {}, {}, spans=[span], span_base=submitted,
            events=events, clock_offset=0.0,
            clock_error_s=self.clock_error_s
            if self.clock_error_s is not None else float("inf"),
            pid=self.pid,
        )

    def _pull_result(self, timeout):
        """One queue read; True if a result was installed, False if not.

        A SIGKILL can land while the child's queue feeder holds the pipe
        mid-write, tearing the stream — a torn read is treated like an
        empty queue (the liveness check right after books the death).
        """
        try:
            tid, status, payload = self._results.get(timeout=timeout)
        except queue.Empty:
            return False
        except (EOFError, OSError, pickle.UnpicklingError,  # pcsan: disable=PC005
                ValueError, TypeError):
            return False  # torn stream from a killed writer
        self._arrived[tid] = (status, payload)
        return True

    def wait_for(self, task_id, monitor=None):
        """Block until ``task_id``'s result (or the child's death) arrives.

        ``monitor`` is the supervisor's per-tick check: consulted only
        after the queue came up empty — an arrived result always wins
        over a kill verdict, which is what makes supervised re-dispatch
        safe against double execution — and at most once per task (a
        killed child needs no second verdict).
        """
        while task_id not in self._arrived:
            if self._pull_result(0.1):
                continue
            if monitor is not None and task_id not in self.kill_verdicts:
                verdict = monitor()
                if verdict is not None:
                    self.kill_verdicts[task_id] = verdict
            if not self._proc.is_alive():
                # Final drain: results the child flushed right before
                # dying may still be in flight through the queue feeder.
                while self._pull_result(0.2):
                    pass
                if task_id in self._arrived:
                    break
                self.broken = True
                for tid in self._outstanding:
                    self._arrived.setdefault(tid, (
                        "died",
                        "process exited with code %s" % self._proc.exitcode,
                    ))
        self._outstanding.discard(task_id)
        status, payload = self._arrived.pop(task_id)
        if status != "died":
            # The task delivered despite any kill verdict (result raced
            # the SIGKILL out the door): the verdict is moot.
            self.kill_verdicts.pop(task_id, None)
        return status, payload

    def stop(self):
        """Terminate the child and release its queue resources."""
        self.broken = True
        try:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=2)
        except (OSError, ValueError):  # pragma: no cover  # pcsan: disable=PC005
            pass  # teardown race: the child is gone either way
        for q in (self._tasks, self._results):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover  # pcsan: disable=PC005
                pass  # queue already closed


#: Spawn is slow (fresh interpreter + imports), so healthy children are
#: pooled process-wide and reused across clusters.
_MAX_IDLE_CHILDREN = 8
_idle_children = []
_all_children = set()


def _lease_child():
    while _idle_children:
        child = _idle_children.pop()
        if child.healthy() and child.idle():
            return child
        child.stop()
        _all_children.discard(child)
    child = _ChildProcess()
    _all_children.add(child)
    return child


def _release_child(child, healthy=True):
    if (
        healthy and child.healthy() and child.idle()
        and len(_idle_children) < _MAX_IDLE_CHILDREN
    ):
        _idle_children.append(child)
    else:
        child.stop()
        _all_children.discard(child)


@atexit.register
def _shutdown_children():
    for child in list(_all_children):
        child.stop()
    _all_children.clear()
    del _idle_children[:]


def _release_leased(leased):
    """Transport finalizer: return every still-leased child to the pool."""
    for child in list(leased):
        _release_child(child)
    del leased[:]


# -- the process transport --------------------------------------------------------


class ProcessBackend(BackendProcess):
    """A worker back-end running in a leased OS process.

    Remote tasks go over the child's task queue; plain callables (output
    sinks, orphan re-runs, anything touching coordinator state) run in
    the front-end exactly as the in-process backend would run them.
    """

    asynchronous = True

    def __init__(self, worker, transport):
        super().__init__(worker)
        self._transport = transport
        self._child = transport.lease_child()
        transport.supervisor.watch(worker.worker_id, self._child)

    @property
    def child_pid(self):
        """OS pid of the backing process (None after shutdown)."""
        return self._child.pid if self._child is not None else None

    def submit(self, fn, *args, **kwargs):
        if isinstance(fn, RemoteTask):
            if self.crashed:
                raise BackendCrashedError(
                    "back-end of worker %r already crashed; the front-end "
                    "must re-fork it before dispatching again"
                    % (self.worker.worker_id,)
                )
            future = self._child.submit(fn, self)
            future.supervisor = self._transport.supervisor
            policy = self._transport.retry_policy
            timeout_s = getattr(policy, "timeout_s", None)
            if timeout_s is not None:
                # A real wall-clock deadline, independent of the policy's
                # injectable clock: on this transport elapsed time is
                # real, so the timeout must be too.
                future.timeout_s = timeout_s
                future.deadline = time.monotonic() + timeout_s
            return future
        return super().submit(fn, *args, **kwargs)

    def shutdown(self):
        child, self._child = self._child, None
        if child is not None:
            self._transport.supervisor.unwatch(
                self.worker.worker_id, child
            )
            self._transport.retire_child(child, healthy=not self.crashed)


class ProcessTransport(Transport):
    """Workers backed by real OS processes over shared-memory pages."""

    name = "process"
    page_residency = "shm"

    def __init__(self, tracer=None, fault_injector=None, retry_policy=None,
                 metrics=None, recorder=None):
        super().__init__(tracer=tracer, fault_injector=fault_injector,
                         retry_policy=retry_policy, metrics=metrics,
                         recorder=recorder)
        #: liveness + deadline authority over this transport's children.
        self.supervisor = Supervisor(metrics=self.metrics,
                                     recorder=recorder)
        self._leased = []
        self._finalizer = weakref.finalize(
            self, _release_leased, self._leased
        )

    def make_backend(self, worker):
        return ProcessBackend(worker, self)

    def lease_child(self):
        child = _lease_child()
        self._leased.append(child)
        return child

    def retire_child(self, child, healthy=True):
        if child in self._leased:
            self._leased.remove(child)
        _release_child(child, healthy=healthy)

    def close(self):
        for child in list(self._leased):
            self.retire_child(child)


def make_transport(spec=None, **kwargs):
    """Build a transport from a spec string (or pass a built one through).

    ``spec`` may be ``"sim"``, ``"process"``, ``None`` (resolve from the
    ``PC_TRANSPORT`` environment variable, defaulting to ``"sim"``), or
    an already-constructed :class:`Transport` (returned as-is).
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        spec = os.environ.get("PC_TRANSPORT") or "sim"
    if spec == "sim":
        from repro.cluster.network import SimulatedNetwork

        return SimulatedNetwork(**kwargs)
    if spec == "process":
        return ProcessTransport(**kwargs)
    raise ValueError(
        "unknown transport %r (expected 'sim' or 'process')" % (spec,)
    )
