"""The simulated cluster network — the deterministic transport.

All inter-node traffic in the simulation flows through one
:class:`SimulatedNetwork` so the benches can report what PC's design is
about: how many bytes moved, and how many of them moved with zero
serialization cost (whole PC pages) versus as structured rows.

Within one OS process "shipping" is of course free; the value of the
accounting is comparative — the Spark-like baseline pays real pickling
CPU on every boundary, while the PC path ships page bytes verbatim.

The shipping and accounting machinery now lives in the shared
:class:`~repro.cluster.transport.Transport` base (so the process-backed
transport accounts identically); what makes this subclass the simulator
is that its worker back-ends stay in-process — single-threaded,
deterministic, and exactly reproducible under seeded fault injection,
which is why it remains the CI/fault-matrix backend.

Besides the global counters, every transfer is reported into the active
trace span (when a :class:`~repro.obs.Tracer` is attached and a job is
running), so ``cluster.last_trace`` can attribute shuffle traffic to the
stage that caused it (counters ``net.bytes_total``, ``net.bytes_zero_copy``,
``net.bytes_rows``, ``net.messages``, and ``net.link.<src>-><dst>``).

A :class:`~repro.cluster.faults.FaultInjector` can drop, corrupt, or
delay any transfer.  Dropped transfers are re-sent up to
``RetryPolicy.transfer_retries`` times (counters
``net.transfers_dropped`` / ``net.transfer_retries``); when the budget is
exhausted a :class:`~repro.errors.TransferDroppedError` surfaces to the
caller.  Corrupted page *and row* transfers are detected by checksum on
receipt and re-sent within the same budget.  Delays are *simulated*: the
delay seconds are accounted (``net.delay_ms``), not slept.
"""

from __future__ import annotations

from repro.cluster.transport import (  # noqa: F401 - re-exported API
    Transport,
    estimate_value_bytes,
    rows_checksum,
)


class SimulatedNetwork(Transport):
    """Byte-accounted message passing between simulated nodes."""

    name = "sim"
    page_residency = "mem"
