"""The simulated cluster network.

All inter-node traffic in the simulation flows through one
:class:`SimulatedNetwork` so the benches can report what PC's design is
about: how many bytes moved, and how many of them moved with zero
serialization cost (whole PC pages) versus as structured rows.

Within one OS process "shipping" is of course free; the value of the
accounting is comparative — the Spark-like baseline pays real pickling
CPU on every boundary, while the PC path ships page bytes verbatim.

Besides the global counters, every transfer is reported into the active
trace span (when a :class:`~repro.obs.Tracer` is attached and a job is
running), so ``cluster.last_trace`` can attribute shuffle traffic to the
stage that caused it (counters ``net.bytes_total``, ``net.bytes_zero_copy``,
``net.bytes_rows``, ``net.messages``, and ``net.link.<src>-><dst>``).

A :class:`~repro.cluster.faults.FaultInjector` can drop or delay any
transfer.  Dropped transfers are re-sent up to
``RetryPolicy.transfer_retries`` times (counters
``net.transfers_dropped`` / ``net.transfer_retries``); when the budget is
exhausted a :class:`~repro.errors.TransferDroppedError` surfaces to the
caller.  Delays are *simulated*: the delay seconds are accounted
(``net.delay_ms``), not slept.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import PageCorruptionError, TransferDroppedError
from repro.obs import MetricsRegistry, Tracer
from repro.storage.replication import corrupt_bytes, page_checksum


def estimate_value_bytes(value):
    """Cheap size estimate for row-shipped Python values."""
    if isinstance(value, str):
        return 16 + len(value)
    if isinstance(value, (list, tuple)):
        return 16 + sum(estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 16 + sum(
            estimate_value_bytes(k) + estimate_value_bytes(v)
            for k, v in value.items()
        )
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return 16 + int(nbytes)
    return 16


class SimulatedNetwork:
    """Byte-accounted message passing between simulated nodes."""

    def __init__(self, tracer=None, fault_injector=None, retry_policy=None,
                 metrics=None):
        self.tracer = tracer or Tracer()
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        # All accounting lives in the metrics registry; each counter
        # declares its trace-mirror name once, so the trace counters,
        # the Prometheus series, and stats() cannot drift apart.
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry(tracer=self.tracer)
        self._c_messages = self.metrics.counter(
            "pc_net_messages_total", help="Simulated network transfers",
            trace="net.messages",
        )
        self._c_bytes_total = self.metrics.counter(
            "pc_net_bytes_total", help="Bytes moved over the network",
            trace="net.bytes_total",
        )
        self._c_bytes_zero_copy = self.metrics.counter(
            "pc_net_bytes_zero_copy_total",
            help="Bytes moved as whole PC pages (no serde)",
            trace="net.bytes_zero_copy",
        )
        self._c_bytes_rows = self.metrics.counter(
            "pc_net_bytes_rows_total",
            help="Bytes moved as structured rows (join shuffles)",
            trace="net.bytes_rows",
        )
        self._c_link_bytes = self.metrics.counter(
            "pc_net_link_bytes_total",
            help="Bytes moved per (src, dst) link",
            labelnames=("src", "dst"),
            trace="net.link.{src}->{dst}",
        )
        self._c_transfers_dropped = self.metrics.counter(
            "pc_net_transfers_dropped_total",
            help="Transfers dropped by fault injection",
            trace="net.transfers_dropped",
        )
        self._c_transfers_corrupted = self.metrics.counter(
            "pc_net_transfers_corrupted_total",
            help="Transfers delivered with bit-flipped payloads",
            trace="net.transfers_corrupted",
        )
        self._c_transfer_retries = self.metrics.counter(
            "pc_net_transfer_retries_total",
            help="Re-sends after drops or detected corruption",
            trace="net.transfer_retries",
        )
        self._c_delay_events = self.metrics.counter(
            "pc_net_delay_events_total",
            help="Transfers hit by an injected delay",
            trace="net.delay_events",
        )
        self._c_delay_ms = self.metrics.counter(
            "pc_net_delay_ms_total",
            help="Simulated delay in whole milliseconds",
            trace="net.delay_ms",
        )
        self._c_delay_seconds = self.metrics.counter(
            "pc_net_delay_seconds_total",
            help="Simulated delay in (float) seconds",
            trace="net.delay_s_total",
        )

    # Legacy counter attributes: read-only views over the registry.

    @property
    def messages(self):
        return self._c_messages.value

    @property
    def bytes_total(self):
        return self._c_bytes_total.value

    @property
    def bytes_zero_copy(self):
        return self._c_bytes_zero_copy.value

    @property
    def bytes_rows(self):
        return self._c_bytes_rows.value

    @property
    def by_link(self):
        """Fresh ``{(src, dst): bytes}`` dict — mutating it cannot touch
        the network's own accounting."""
        link = defaultdict(int)
        for (src, dst), nbytes in self._c_link_bytes.series().items():
            link[(src, dst)] = nbytes
        return link

    @property
    def transfers_dropped(self):
        return self._c_transfers_dropped.value

    @property
    def transfers_corrupted(self):
        return self._c_transfers_corrupted.value

    @property
    def transfer_retries(self):
        return self._c_transfer_retries.value

    @property
    def delay_s_total(self):
        return self._c_delay_seconds.value

    def _record(self, src, dst, nbytes, counter):
        self._c_messages.inc()
        self._c_bytes_total.inc(nbytes)
        self._c_link_bytes.inc(nbytes, src=src, dst=dst)
        counter.inc(nbytes)

    def _retry_budget(self):
        return (
            self.retry_policy.transfer_retries
            if self.retry_policy is not None else 0
        )

    def _deliver(self, src, dst, nbytes, counter):
        """Attempt delivery, re-sending dropped transfers per policy.

        Returns the final verdict: ``"deliver"`` or ``"corrupt"`` (the
        payload arrived, but bit-flipped — the *caller* decides whether
        its payload type can detect that).
        """
        attempts = 0
        while True:
            verdict, delay_s = "deliver", 0.0
            if self.fault_injector is not None:
                verdict, delay_s = self.fault_injector.on_transfer(
                    src, dst, nbytes
                )
            if delay_s:
                self._c_delay_seconds.inc(delay_s)
                self._c_delay_events.inc()
                self._c_delay_ms.inc(int(delay_s * 1000))
            if verdict != "drop":
                self._record(src, dst, nbytes, counter)
                return verdict
            self._c_transfers_dropped.inc()
            budget = self._retry_budget()
            if attempts >= budget:
                raise TransferDroppedError(
                    "transfer %s->%s (%d bytes) dropped and retry budget "
                    "of %d exhausted" % (src, dst, nbytes, budget)
                )
            attempts += 1
            self._c_transfer_retries.inc()

    def ship_page(self, src, dst, data, checksum=None):
        """Move a PC page's bytes; zero serialization on either end.

        With a ``checksum`` (the page's sealed CRC32), the arrived bytes
        are verified on receipt: a corrupted arrival is re-sent within
        the transfer retry budget and raises
        :class:`~repro.errors.PageCorruptionError` once it is exhausted,
        so corrupted bytes are never handed to the receiver.  Without a
        checksum, a corrupted payload is delivered as-is — downstream
        integrity checks (spill reload, replicated reads) catch it.
        """
        nbytes = len(data)
        attempts = 0
        while True:
            verdict = self._deliver(src, dst, nbytes, self._c_bytes_zero_copy)
            payload = data
            if verdict == "corrupt":
                payload = corrupt_bytes(data)
                self._c_transfers_corrupted.inc()
            if checksum is None or page_checksum(payload) == checksum:
                return payload
            budget = self._retry_budget()
            if attempts >= budget:
                raise PageCorruptionError(
                    "page transfer %s->%s (%d bytes) arrived corrupt and "
                    "the re-send budget of %d is exhausted"
                    % (src, dst, nbytes, budget)
                )
            attempts += 1
            self._c_transfer_retries.inc()

    def ship_rows(self, src, dst, rows):
        """Move structured rows (the join-shuffle path).

        A ``corrupt`` verdict does not apply to structured rows (they are
        re-validated by the engine, not checksummed); the payload is
        delivered unchanged.
        """
        nbytes = sum(estimate_value_bytes(row) for row in rows)
        self._deliver(src, dst, nbytes, self._c_bytes_rows)
        return rows

    def stats(self):
        return {
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "bytes_zero_copy": self.bytes_zero_copy,
            "bytes_rows": self.bytes_rows,
            "transfers_dropped": self.transfers_dropped,
            "transfers_corrupted": self.transfers_corrupted,
            "transfer_retries": self.transfer_retries,
            "delay_s_total": self.delay_s_total,
            # Serializable per-link breakdown: "src->dst" -> bytes.  This
            # is what exposes skewed shuffle partners in cluster.stats().
            # Built fresh on every call — callers mutating the returned
            # dict cannot corrupt the network's accounting.
            "by_link": {
                "%s->%s" % link: nbytes
                for link, nbytes in self.by_link.items()
            },
        }

    def reset(self):
        for counter in (
            self._c_messages, self._c_bytes_total, self._c_bytes_zero_copy,
            self._c_bytes_rows, self._c_link_bytes,
            self._c_transfers_dropped, self._c_transfers_corrupted,
            self._c_transfer_retries, self._c_delay_events,
            self._c_delay_ms, self._c_delay_seconds,
        ):
            counter.reset()
