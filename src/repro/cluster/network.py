"""The simulated cluster network.

All inter-node traffic in the simulation flows through one
:class:`SimulatedNetwork` so the benches can report what PC's design is
about: how many bytes moved, and how many of them moved with zero
serialization cost (whole PC pages) versus as structured rows.

Within one OS process "shipping" is of course free; the value of the
accounting is comparative — the Spark-like baseline pays real pickling
CPU on every boundary, while the PC path ships page bytes verbatim.

Besides the global counters, every transfer is reported into the active
trace span (when a :class:`~repro.obs.Tracer` is attached and a job is
running), so ``cluster.last_trace`` can attribute shuffle traffic to the
stage that caused it (counters ``net.bytes_total``, ``net.bytes_zero_copy``,
``net.bytes_rows``, ``net.messages``, and ``net.link.<src>-><dst>``).
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs import Tracer


def estimate_value_bytes(value):
    """Cheap size estimate for row-shipped Python values."""
    if isinstance(value, str):
        return 16 + len(value)
    if isinstance(value, (list, tuple)):
        return 16 + sum(estimate_value_bytes(v) for v in value)
    if isinstance(value, dict):
        return 16 + sum(
            estimate_value_bytes(k) + estimate_value_bytes(v)
            for k, v in value.items()
        )
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return 16 + int(nbytes)
    return 16


class SimulatedNetwork:
    """Byte-accounted message passing between simulated nodes."""

    def __init__(self, tracer=None):
        self.tracer = tracer or Tracer()
        self.messages = 0
        self.bytes_total = 0
        self.bytes_zero_copy = 0  # whole PC pages, no serde
        self.bytes_rows = 0  # structured rows (join shuffles)
        self.by_link = defaultdict(int)  # (src, dst) -> bytes

    def _record(self, src, dst, nbytes, counter):
        self.messages += 1
        self.bytes_total += nbytes
        self.by_link[(src, dst)] += nbytes
        self.tracer.add("net.messages")
        self.tracer.add("net.bytes_total", nbytes)
        self.tracer.add(counter, nbytes)
        self.tracer.add("net.link.%s->%s" % (src, dst), nbytes)

    def ship_page(self, src, dst, data):
        """Move a PC page's bytes; zero serialization on either end."""
        nbytes = len(data)
        self.bytes_zero_copy += nbytes
        self._record(src, dst, nbytes, "net.bytes_zero_copy")
        return data

    def ship_rows(self, src, dst, rows):
        """Move structured rows (the join-shuffle path)."""
        nbytes = sum(estimate_value_bytes(row) for row in rows)
        self.bytes_rows += nbytes
        self._record(src, dst, nbytes, "net.bytes_rows")
        return rows

    def stats(self):
        return {
            "messages": self.messages,
            "bytes_total": self.bytes_total,
            "bytes_zero_copy": self.bytes_zero_copy,
            "bytes_rows": self.bytes_rows,
            # Serializable per-link breakdown: "src->dst" -> bytes.  This
            # is what exposes skewed shuffle partners in cluster.stats().
            "by_link": {
                "%s->%s" % link: nbytes
                for link, nbytes in self.by_link.items()
            },
        }

    def reset(self):
        self.messages = 0
        self.bytes_total = 0
        self.bytes_zero_copy = 0
        self.bytes_rows = 0
        self.by_link.clear()
