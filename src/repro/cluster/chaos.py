"""Seeded signal storms against real back-end processes.

:class:`~repro.cluster.faults.FaultInjector` proves the recovery
machinery against *simulated* failures — exceptions raised inside one
process.  :class:`ChaosMonkey` is its process-transport counterpart: it
delivers **real** ``SIGKILL`` / ``SIGSTOP`` / ``SIGCONT`` to the pids of
live back-end children while a job runs, from a background thread, on a
schedule drawn deterministically from a seed.  A SIGKILL exercises the
heartbeat/death path (detect → re-fork → retry); a SIGSTOP + later
SIGCONT exercises the SUSPECT path — the worker lags, is *not* killed,
resumes, and its task completes exactly once.

The schedule is fixed at construction (``random.Random(seed)``), so a
chaos run is reproducible: same seed, same actions at the same offsets
aimed at the same worker slots.  What is *not* deterministic is where
each signal lands in the job's execution — that is the point: the
byte-identical assertion must hold wherever the storm hits.

Usage::

    monkey = ChaosMonkey(cluster, seed=7, kills=3, stops=1)
    with monkey:                      # starts the storm thread
        job_log = run_job(cluster)    # signals land mid-job
    assert results_match(baseline)
    monkey.delivered                  # [(offset_s, action, worker, pid)]
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

from repro.cluster.supervisor import DEFAULT_DEAD_AFTER_S

KILL = "kill"
STOP = "stop"


class ChaosMonkey:
    """Delivers a seeded storm of real signals to back-end children.

    ``kills`` SIGKILLs and ``stops`` SIGSTOP/SIGCONT pairs are spread
    uniformly over ``window_s`` seconds from :meth:`start`.  Each event
    targets a deterministic *worker slot* (index into the cluster's
    worker list); the pid is resolved at delivery time, so a re-forked
    backend is targeted by its current child, like a real failure would.

    ``stop_duration_s`` defaults to safely below the supervisor's DEAD
    deadline: a stopped worker must come back as SUSPECT→ALIVE, not be
    declared dead — pass a longer duration to exercise the kill path.
    """

    def __init__(self, cluster, seed=0, kills=3, stops=1, window_s=2.0,
                 stop_duration_s=None, start_after_s=0.05):
        self.cluster = cluster
        self.seed = seed
        if stop_duration_s is None:
            stop_duration_s = min(0.3, DEFAULT_DEAD_AFTER_S / 4.0)
        self.stop_duration_s = stop_duration_s
        rng = random.Random(seed)
        events = []
        n_workers = max(1, len(cluster.workers))
        for _ in range(kills):
            events.append(
                (start_after_s + rng.uniform(0.0, window_s), KILL,
                 rng.randrange(n_workers))
            )
        for _ in range(stops):
            events.append(
                (start_after_s + rng.uniform(0.0, window_s), STOP,
                 rng.randrange(n_workers))
            )
        #: the storm, as (offset_s, action, worker_slot), time-ordered.
        self.schedule = sorted(events)
        #: what actually landed: (offset_s, action, worker_id, pid).
        self.delivered = []
        self.counts = {KILL: 0, STOP: 0}
        self._thread = None
        self._halt = threading.Event()

    # -- targeting ---------------------------------------------------------------

    def _target_pid(self, slot):
        """Current child pid of the slot's worker, or None.

        Blacklisted workers and sim back-ends have no pid; the storm
        loop re-aims such events a bounded number of times and then
        drops them.
        """
        workers = self.cluster.workers
        if not workers:
            return None, None
        worker = workers[slot % len(workers)]
        if worker.worker_id in self.cluster.blacklist:
            return worker.worker_id, None
        return worker.worker_id, getattr(worker.backend, "child_pid", None)

    @staticmethod
    def _signal(pid, signum):
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            return False  # already gone; the supervisor beat us to it
        return True

    # -- the storm thread --------------------------------------------------------

    #: Re-aim attempts per event before giving up (a miss means the slot
    #: was mid-re-fork or blacklisted at that instant).
    MAX_RETRIES = 50

    def _run(self):
        started = time.monotonic()
        resumes = []  # (due_at, pid) for pending SIGCONTs
        pending = [(offset, action, slot, 0)
                   for offset, action, slot in self.schedule]
        while (pending or resumes) and not self._halt.is_set():
            now = time.monotonic() - started
            while resumes and resumes[0][0] <= now:
                _due, pid = resumes.pop(0)
                self._signal(pid, signal.SIGCONT)
            if pending and pending[0][0] <= now:
                offset, action, slot, retries = pending.pop(0)
                worker_id, pid = self._target_pid(slot)
                sent = pid is not None and self._signal(
                    pid, signal.SIGKILL if action == KILL
                    else signal.SIGSTOP
                )
                if sent:
                    self.delivered.append((offset, action, worker_id, pid))
                    self.counts[action] += 1
                    recorder = getattr(self.cluster, "flight", None)
                    if recorder is not None:
                        recorder.record("chaos.signal", action=action,
                                        worker=worker_id, target_pid=pid)
                    if action == STOP:
                        resumes.append((now + self.stop_duration_s, pid))
                        resumes.sort()
                elif retries < self.MAX_RETRIES:
                    # The slot had no killable pid *right now* (backend
                    # mid-re-fork, pid already reaped): re-aim shortly —
                    # every scheduled signal eventually lands for real.
                    pending.append(
                        (now + 0.05, action, slot, retries + 1)
                    )
                    pending.sort()
                continue
            self._halt.wait(0.01)
        # Never leave a process stopped: a halted storm still delivers
        # its owed SIGCONTs, else the job wedges behind the harness.
        for _due, pid in resumes:
            self._signal(pid, signal.SIGCONT)

    def start(self):
        if self._thread is not None:
            return self
        self._halt.clear()
        self._thread = threading.Thread(
            target=self._run, name="pc-chaos", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout=None):
        """Wait for the storm to finish delivering (SIGCONTs included)."""
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def halt(self):
        """Abort undelivered events; owed SIGCONTs are still sent."""
        self._halt.set()
        self.join(timeout=5)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        # On a clean exit the storm has (usually) drained already; on an
        # exception, abort it so no stopped child outlives the test.
        if exc_type is None:
            self.join(timeout=30)
        else:
            self.halt()
        return False
