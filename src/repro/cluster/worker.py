"""Worker nodes: the front-end / back-end process pair (Section 2).

Each worker runs two processes.  The *front-end* is crash-proof
infrastructure: the local catalog cache, the local storage server with
its buffer pool, and the message proxy relaying requests.  The *back-end*
is where potentially-unsafe user code runs; if a user stage raises, the
front-end "re-forks" it — the back-end's transient state (pipeline
engines, hash tables, materialized stores) is discarded and rebuilt,
while the front-end's storage and catalog survive untouched.

The back-end's execution model is the transport's choice: the simulated
transport keeps it in-process (:class:`BackendProcess`, deterministic),
the process transport backs it with a real spawned OS process whose
dispatches are asynchronous — submitted to a per-worker task queue and
awaited later.  :meth:`WorkerNode.dispatch` is submit + await in one
call; the scheduler uses the split pair to run workers in parallel.

The scheduler keys its per-job engine into :attr:`BackendProcess.engines`
and must call :meth:`BackendProcess.release_job` when the job finishes;
otherwise engines of finished jobs would accumulate across executions
(and a recycled job key could silently reuse a stale engine).
"""

from __future__ import annotations

import time

from repro.catalog import LocalCatalog
from repro.errors import BackendCrashedError, WorkerCrashError
from repro.obs import MetricsRegistry
from repro.storage import LocalStorageServer


class CompletedFuture:
    """An already-resolved dispatch result (synchronous back-ends)."""

    def __init__(self, value=None, error=None):
        self._value = value
        self._error = error

    def result(self):
        if self._error is not None:
            raise self._error
        return self._value


class BackendProcess:
    """The process that actually runs user code (in-process variant)."""

    #: Whether submit() returns before the work ran.  The scheduler uses
    #: this to decide between the serial loop and submit-all/await-all.
    asynchronous = False

    def __init__(self, worker):
        self.worker = worker
        #: transient per-job state, keyed by job: wiped on re-fork,
        #: released per job when its scheduler finishes
        self.engines = {}
        self.crashed = False

    def run_user_code(self, fn, *args, **kwargs):
        """Execute ``fn``; a raise marks this backend as crashed.

        A backend that already crashed rejects every further dispatch
        until the front-end re-forks it: its transient state is gone,
        so silently running more user code on it would produce wrong
        answers, not crashes.
        """
        if self.crashed:
            raise BackendCrashedError(
                "back-end of worker %r already crashed; the front-end "
                "must re-fork it before dispatching again"
                % (self.worker.worker_id,)
            )
        try:
            return fn(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - user code can raise anything
            self.crashed = True
            raise WorkerCrashError(
                "user code crashed on worker %r: %s"
                % (self.worker.worker_id, exc)
            ) from exc

    def submit(self, fn, *args, **kwargs):
        """Run ``fn`` now; returns an already-completed future.

        Crashes are captured in the future (surfaced by ``result()``),
        so synchronous and asynchronous back-ends give the scheduler the
        same submit/await surface.
        """
        try:
            return CompletedFuture(value=self.run_user_code(
                fn, *args, **kwargs
            ))
        except WorkerCrashError as crash:
            return CompletedFuture(error=crash)

    def shutdown(self):
        """Release backend resources (no-op for the in-process variant)."""

    def release_job(self, job_key):
        """Drop the transient engine of a finished job, if any."""
        self.engines.pop(job_key, None)


class WorkerNode:
    """One worker: front-end process + (re-forkable) back-end."""

    def __init__(self, worker_id, master_catalog, capacity_bytes,
                 page_size, spill_dir=None, tracer=None,
                 fault_injector=None, transport=None, shm_registry=None):
        self.worker_id = worker_id
        self.transport = transport
        # Front-end components (survive backend crashes).  The worker's
        # metrics registry carries a constant ``worker`` label, so the
        # cluster-wide merge keeps per-worker attribution.
        self.local_catalog = LocalCatalog(master_catalog)
        self.metrics = MetricsRegistry(
            labels={"worker": worker_id}, tracer=tracer
        )
        self._c_reforks = self.metrics.counter(
            "pc_worker_reforks_total",
            help="Back-end processes re-forked after a crash",
            trace="faults.reforks",
        )
        # The transport decides where sealed page bytes must live so its
        # back-ends can reach them ("shm" for real child processes).
        residency = (
            transport.page_residency if transport is not None else "mem"
        )
        self.storage = LocalStorageServer(
            worker_id, capacity_bytes, page_size=page_size,
            registry=self.local_catalog.registry, spill_dir=spill_dir,
            tracer=tracer, fault_injector=fault_injector,
            metrics=self.metrics, residency=residency,
            shm_registry=shm_registry,
        )
        if transport is not None:
            self.backend = transport.make_backend(self)
        else:
            self.backend = BackendProcess(self)

    @property
    def refork_count(self):
        """How often this worker's back-end has been re-forked."""
        return self._c_reforks.value

    # -- the message proxy --------------------------------------------------------

    def submit(self, fn, *args, **kwargs):
        """Hand a computation request to the back-end; returns a future.

        Synchronous back-ends run it immediately (the future is already
        resolved); process back-ends enqueue it on the worker's task
        queue and return a pending future.
        """
        return self.backend.submit(fn, *args, **kwargs)

    def await_result(self, future):
        """Resolve a submitted dispatch, re-forking on a crash.

        On a crash the front-end re-forks the back-end (fresh transient
        state; a real child process is killed and respawned) before
        re-raising, so the worker stays usable — the paper's rationale
        for the dual-process design.  Recovery (re-dispatching the
        failed portion) is the scheduler's job, via its RetryPolicy.
        """
        try:
            return future.result()
        except WorkerCrashError as crash:
            self.refork_backend()
            # Real deaths carry the detection instant; the span through
            # the re-fork is the supervision layer's recovery latency.
            detected_at = getattr(crash, "detected_at", None)
            supervisor = getattr(self.transport, "supervisor", None)
            if detected_at is not None and supervisor is not None:
                supervisor.observe_recovery(
                    self.worker_id, time.monotonic() - detected_at
                )
            raise

    def dispatch(self, fn, *args, **kwargs):
        """Submit and await in one step (the synchronous proxy call)."""
        return self.await_result(self.submit(fn, *args, **kwargs))

    def refork_backend(self):
        """Replace a crashed back-end with a fresh one.

        The old backend is shut down first — for a process-backed worker
        that *terminates the child process*; the replacement leases a
        fresh one.  The new backend starts with an empty
        :attr:`BackendProcess.engines` map, so any engine a still-running
        job had registered is gone — the scheduler rebuilds it (restoring
        checkpointed stage outputs) on the next ``engine_for`` call.
        """
        self.backend.shutdown()
        if self.transport is not None:
            self.backend = self.transport.make_backend(self)
        else:
            self.backend = BackendProcess(self)
        self._c_reforks.inc()
        recorder = getattr(self.transport, "recorder", None)
        if recorder is not None:
            recorder.record(
                "worker.refork", worker=self.worker_id,
                child_pid=getattr(self.backend, "child_pid", None),
            )

    def __repr__(self):
        return "<WorkerNode %s>" % self.worker_id
