"""Worker nodes: the front-end / back-end process pair (Section 2).

Each worker runs two "processes".  The *front-end* is crash-proof
infrastructure: the local catalog cache, the local storage server with
its buffer pool, and the message proxy relaying requests.  The *back-end*
is where potentially-unsafe user code runs; if a user stage raises, the
front-end "re-forks" it — the back-end's transient state (pipeline
engines, hash tables, materialized stores) is discarded and rebuilt,
while the front-end's storage and catalog survive untouched.

The scheduler keys its per-job engine into :attr:`BackendProcess.engines`
and must call :meth:`BackendProcess.release_job` when the job finishes;
otherwise engines of finished jobs would accumulate across executions
(and a recycled job key could silently reuse a stale engine).
"""

from __future__ import annotations

from repro.catalog import LocalCatalog
from repro.errors import WorkerCrashError
from repro.obs import MetricsRegistry
from repro.storage import LocalStorageServer


class BackendProcess:
    """The process that actually runs user code."""

    def __init__(self, worker):
        self.worker = worker
        #: transient per-job state, keyed by job: wiped on re-fork,
        #: released per job when its scheduler finishes
        self.engines = {}
        self.crashed = False

    def run_user_code(self, fn, *args, **kwargs):
        """Execute ``fn``; a raise marks this backend as crashed."""
        try:
            return fn(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - user code can raise anything
            self.crashed = True
            raise WorkerCrashError(
                "user code crashed on worker %r: %s"
                % (self.worker.worker_id, exc)
            ) from exc

    def release_job(self, job_key):
        """Drop the transient engine of a finished job, if any."""
        self.engines.pop(job_key, None)


class WorkerNode:
    """One simulated worker: front-end process + forked back-end."""

    def __init__(self, worker_id, master_catalog, capacity_bytes,
                 page_size, spill_dir=None, tracer=None,
                 fault_injector=None):
        self.worker_id = worker_id
        # Front-end components (survive backend crashes).  The worker's
        # metrics registry carries a constant ``worker`` label, so the
        # cluster-wide merge keeps per-worker attribution.
        self.local_catalog = LocalCatalog(master_catalog)
        self.metrics = MetricsRegistry(
            labels={"worker": worker_id}, tracer=tracer
        )
        self.storage = LocalStorageServer(
            worker_id, capacity_bytes, page_size=page_size,
            registry=self.local_catalog.registry, spill_dir=spill_dir,
            tracer=tracer, fault_injector=fault_injector,
            metrics=self.metrics,
        )
        self.backend = BackendProcess(self)
        self.refork_count = 0

    # -- the message proxy --------------------------------------------------------

    def dispatch(self, fn, *args, **kwargs):
        """Forward a computation request to the back-end process.

        On a crash the front-end re-forks the back-end (fresh transient
        state) before re-raising, so the worker stays usable — the paper's
        rationale for the dual-process design.  Recovery (re-dispatching
        the failed portion) is the scheduler's job, via its RetryPolicy.
        """
        try:
            return self.backend.run_user_code(fn, *args, **kwargs)
        except WorkerCrashError:
            self.refork_backend()
            raise

    def refork_backend(self):
        """Replace a crashed back-end with a fresh one.

        The new backend starts with an empty :attr:`BackendProcess.engines`
        map, so any engine a still-running job had registered is gone —
        the scheduler rebuilds it (restoring checkpointed stage outputs)
        on the next ``engine_for`` call.
        """
        self.backend = BackendProcess(self)
        self.refork_count += 1

    def __repr__(self):
        return "<WorkerNode %s>" % self.worker_id
