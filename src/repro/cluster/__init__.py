"""The simulated distributed runtime: master, workers, network, scheduler."""

from repro.cluster.chaos import ChaosMonkey
from repro.cluster.cluster import ClusterLoader, PCCluster
from repro.cluster.faults import FakeClock, FaultInjector, RetryPolicy
from repro.cluster.network import SimulatedNetwork, estimate_value_bytes
from repro.cluster.scheduler import (
    DEFAULT_BROADCAST_THRESHOLD,
    DistributedScheduler,
    JobStage,
)
from repro.cluster.supervisor import Supervisor, WorkerVitals
from repro.cluster.transport import (
    ProcessTransport,
    Transport,
    make_transport,
)
from repro.cluster.worker import BackendProcess, WorkerNode

__all__ = [
    "BackendProcess",
    "ChaosMonkey",
    "ClusterLoader",
    "DEFAULT_BROADCAST_THRESHOLD",
    "DistributedScheduler",
    "FakeClock",
    "FaultInjector",
    "JobStage",
    "PCCluster",
    "ProcessTransport",
    "RetryPolicy",
    "SimulatedNetwork",
    "Supervisor",
    "Transport",
    "WorkerNode",
    "WorkerVitals",
    "estimate_value_bytes",
    "make_transport",
]
