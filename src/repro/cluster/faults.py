"""Fault injection and retry policy for the simulated cluster.

PC's Section 2 architecture splits each worker into a crash-proof
front-end and a re-forkable back-end precisely so that user-code crashes
and flaky nodes do not kill a job.  This module supplies the two halves
the scheduler needs to exercise and survive those faults:

* :class:`FaultInjector` — a deterministic, seedable source of injected
  failures.  It can make a worker's back-end crash mid-stage, drop or
  delay a shuffle transfer in the simulated network, and fail a
  buffer-pool page reload.  Faults are either *scripted* (``crash_backend
  ("worker-1", times=1)``) for precise tests or *seeded-random* (``crash_
  rate=0.02``) for storm testing; both are reproducible.

* :class:`RetryPolicy` — how the scheduler reacts: maximum attempts per
  worker task, exponential backoff with an injectable clock and sleep
  (tests substitute a fake clock so no real time passes), a per-task
  timeout, how many times a dropped transfer is re-sent, and whether a
  worker that exhausts its attempts is blacklisted so the job can degrade
  gracefully onto the surviving workers.

Every injected fault keeps a typed count in :attr:`FaultInjector.counts`,
and the scheduler/network/buffer-pool report the recovery work (retries,
backoff sleeps, blacklist events) into the job trace, so a
``BENCH_trace.json``-style report shows what recovery cost.
"""

from __future__ import annotations

import random
import time

#: Transfer verdicts returned by :meth:`FaultInjector.on_transfer`.
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"


class _Scripted:
    """One scripted fault: a match pattern plus a remaining-shots count."""

    __slots__ = ("match", "remaining", "delay_s")

    def __init__(self, match, times):
        self.match = match
        self.remaining = times
        self.delay_s = 0.0

    def take(self, **observed):
        """Consume one shot if ``observed`` matches; returns True if fired."""
        if self.remaining <= 0:
            return False
        for key, wanted in self.match.items():
            if wanted is not None and observed.get(key) != wanted:
                return False
        self.remaining -= 1
        return True


class FaultInjector:
    """Deterministic, seedable fault source for cluster components.

    The injector never raises by itself; components ask it whether a
    fault fires at their hook point and raise their own typed error.  All
    randomness comes from one ``random.Random(seed)`` stream, so a run is
    reproducible given the seed and the (single-threaded) call order.
    """

    def __init__(self, seed=0, crash_rate=0.0, drop_rate=0.0,
                 delay_rate=0.0, delay_s=0.0, reload_failure_rate=0.0,
                 corrupt_rate=0.0, page_corrupt_rate=0.0):
        self.seed = seed
        self._rng = random.Random(seed)
        self.crash_rate = crash_rate
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay_s = delay_s
        self.reload_failure_rate = reload_failure_rate
        #: probability a network page transfer arrives bit-flipped.
        self.corrupt_rate = corrupt_rate
        #: probability a spilled page reloads bit-flipped (sticky: the
        #: damage is written back to the spill file).
        self.page_corrupt_rate = page_corrupt_rate
        self._crashes = []
        self._drops = []
        self._delays = []
        self._reload_failures = []
        self._transfer_corruptions = []
        self._page_corruptions = []
        #: typed counts of every fault this injector actually fired
        self.counts = {
            "backend_crashes": 0,
            "transfer_drops": 0,
            "transfer_delays": 0,
            "reload_failures": 0,
            "transfer_corruptions": 0,
            "page_corruptions": 0,
        }

    # -- scripting ---------------------------------------------------------------

    def crash_backend(self, worker_id=None, stage_kind=None, times=1):
        """Script a back-end crash on ``worker_id`` (None = any worker).

        ``stage_kind`` narrows the crash to tasks of one job-stage kind
        (e.g. ``"PipelineJobStage"``); ``times`` is how many tasks crash.
        """
        self._crashes.append(_Scripted(
            {"worker_id": worker_id, "stage_kind": stage_kind}, times
        ))
        return self

    def drop_transfer(self, src=None, dst=None, times=1):
        """Script ``times`` dropped transfers matching src/dst (None = any)."""
        self._drops.append(_Scripted({"src": src, "dst": dst}, times))
        return self

    def delay_transfer(self, delay_s, src=None, dst=None, times=1):
        """Script ``times`` delayed transfers of ``delay_s`` seconds each."""
        scripted = _Scripted({"src": src, "dst": dst}, times)
        scripted.delay_s = delay_s
        self._delays.append(scripted)
        return self

    def fail_page_reload(self, page_id=None, times=1):
        """Script ``times`` failed buffer-pool reloads (None = any page)."""
        self._reload_failures.append(_Scripted({"page_id": page_id}, times))
        return self

    def corrupt_transfer(self, src=None, dst=None, times=1):
        """Script ``times`` bit-flipped page transfers (None = any)."""
        self._transfer_corruptions.append(
            _Scripted({"src": src, "dst": dst}, times)
        )
        return self

    def corrupt_page(self, page_id=None, times=1):
        """Script ``times`` sticky spill-file corruptions (None = any page)."""
        self._page_corruptions.append(_Scripted({"page_id": page_id}, times))
        return self

    # -- hook points -------------------------------------------------------------

    def should_crash_backend(self, worker_id, stage_kind):
        """Consulted by the scheduler at the top of every worker task."""
        fired = any(
            s.take(worker_id=worker_id, stage_kind=stage_kind)
            for s in self._crashes
        )
        if not fired and self.crash_rate:
            fired = self._rng.random() < self.crash_rate
        if fired:
            self.counts["backend_crashes"] += 1
        return fired

    def on_transfer(self, src, dst, nbytes):
        """Consulted by the network per transfer; returns (verdict, delay_s)."""
        if any(s.take(src=src, dst=dst) for s in self._drops) or (
            self.drop_rate and self._rng.random() < self.drop_rate
        ):
            self.counts["transfer_drops"] += 1
            return DROP, 0.0
        if any(
            s.take(src=src, dst=dst) for s in self._transfer_corruptions
        ) or (
            self.corrupt_rate and self._rng.random() < self.corrupt_rate
        ):
            self.counts["transfer_corruptions"] += 1
            return CORRUPT, 0.0
        for scripted in self._delays:
            if scripted.take(src=src, dst=dst):
                self.counts["transfer_delays"] += 1
                return DELIVER, scripted.delay_s
        if self.delay_rate and self._rng.random() < self.delay_rate:
            self.counts["transfer_delays"] += 1
            return DELIVER, self.delay_s
        return DELIVER, 0.0

    def should_fail_reload(self, page_id):
        """Consulted by the buffer pool before reloading a spilled page."""
        fired = any(s.take(page_id=page_id) for s in self._reload_failures)
        if not fired and self.reload_failure_rate:
            fired = self._rng.random() < self.reload_failure_rate
        if fired:
            self.counts["reload_failures"] += 1
        return fired

    def should_corrupt_page(self, page_id):
        """Consulted by the buffer pool while reloading a spilled page.

        A firing corrupts the spill file *stickily*: retries keep hitting
        the damage until the replication layer heals the copy.
        """
        fired = any(s.take(page_id=page_id) for s in self._page_corruptions)
        if not fired and self.page_corrupt_rate:
            fired = self._rng.random() < self.page_corrupt_rate
        if fired:
            self.counts["page_corruptions"] += 1
        return fired


class RetryPolicy:
    """How the scheduler recovers from worker-task and transfer faults.

    * ``max_attempts`` — total attempts per worker task (1 = no retry).
    * exponential backoff: ``backoff_base_s * backoff_multiplier**(n-1)``
      capped at ``backoff_max_s``, slept between attempts through the
      injectable ``sleep``; ``clock`` (monotonic seconds) drives the
      per-task ``timeout_s`` across attempts.  Tests inject a fake clock
      so retries cost no wall time.
    * ``transfer_retries`` — how many times the network re-sends a
      dropped transfer before raising ``TransferDroppedError``.
    * ``blacklist_on_exhaustion`` — instead of failing the job when a
      worker exhausts its attempts, blacklist the worker and degrade: its
      durable partitions are redistributed to the survivors and the job
      restarts over them (requires ``min_surviving_workers`` survivors).
    """

    def __init__(self, max_attempts=3, backoff_base_s=0.01,
                 backoff_multiplier=2.0, backoff_max_s=0.25,
                 timeout_s=None, transfer_retries=1,
                 blacklist_on_exhaustion=False, min_surviving_workers=1,
                 sleep=time.sleep, clock=time.monotonic):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max_s = backoff_max_s
        self.timeout_s = timeout_s
        self.transfer_retries = transfer_retries
        self.blacklist_on_exhaustion = blacklist_on_exhaustion
        self.min_surviving_workers = min_surviving_workers
        self.sleep = sleep
        self.clock = clock

    @classmethod
    def disabled(cls, **overrides):
        """A policy with no task retries and no transfer re-sends."""
        overrides.setdefault("max_attempts", 1)
        overrides.setdefault("transfer_retries", 0)
        return cls(**overrides)

    def should_retry(self, attempts_made):
        """True if another attempt is allowed after ``attempts_made``."""
        return attempts_made < self.max_attempts

    def backoff_s(self, attempts_made):
        """Backoff before the retry following attempt ``attempts_made``."""
        backoff = self.backoff_base_s * (
            self.backoff_multiplier ** (attempts_made - 1)
        )
        return min(self.backoff_max_s, backoff)

    def timed_out(self, started_at):
        """Whether a task started at clock value ``started_at`` timed out."""
        if self.timeout_s is None:
            return False
        return self.clock() - started_at >= self.timeout_s


class FakeClock:
    """Deterministic clock for tests: ``sleep`` advances ``now`` instantly."""

    def __init__(self, start=0.0):
        self.now = start
        self.slept = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds
