"""The distributed query scheduler (Section 2, Appendix D).

The scheduler takes an optimized TCAP program plus its physical plan and
turns every pipeline into distributed *job stages*:

* ``PipelineJobStage`` — a pipeline segment run by every worker's back-end
  over its local data;
* ``BuildHashTableJobStage`` — building join hash tables from shuffled or
  broadcast data;
* ``AggregationJobStage`` — merging shuffled pre-aggregation Maps (the
  consuming stage of Figure 5).

Join physicality is decided here, not in TCAP: a build side estimated
smaller than ``broadcast_threshold`` bytes is broadcast to every worker;
otherwise both sides are hash-partitioned (the paper's 2 GB rule,
Section 8.3.2, scaled to simulation sizes).

Aggregation shuffles are the paper's signature move and are reproduced
bit-for-bit: each worker's pre-aggregated groups are materialized into a
PC ``Map`` on a combiner page, the page's *bytes* are shipped, and the
receiver reads the Map straight out of the arrived bytes — zero
serialization on both ends.
"""

from __future__ import annotations

import contextlib

from repro.core.computation import AggregateComp
from repro.engine.physical import (
    SINK_AGGREGATE,
    SINK_HASH_BUILD,
    SINK_MATERIALIZE,
    SINK_OUTPUT,
    SOURCE_SCAN,
)
from repro.engine.pipeline import (
    AggregateSink,
    HashBuildSink,
    MaterializeSink,
    PipelineEngine,
    Sink,
)
from repro.engine.vectors import batches_of
from repro.errors import ExecutionError, SetNotFoundError
from repro.memory.block import AllocationBlock
from repro.memory.builtins import MapType, stable_hash
from repro.memory.objects import make_object_on
from repro.tcap.ir import ApplyStmt, JoinStmt

#: Scaled stand-in for the paper's 2 GB broadcast-join threshold.
DEFAULT_BROADCAST_THRESHOLD = 8 << 20


class JobStage:
    """A record of one scheduled distributed job stage (for Figure 4).

    ``span`` links the record to its trace span, so the job log and the
    trace report the same stage with the same wall time.
    """

    def __init__(self, kind, detail):
        self.kind = kind
        self.detail = detail
        self.span = None

    @property
    def duration_s(self):
        return self.span.duration_s if self.span is not None else None

    def __repr__(self):
        return "%s(%s)" % (self.kind, self.detail)


class DistributedScheduler:
    """Schedules one execution of a program across the cluster."""

    def __init__(self, cluster, program, plan,
                 broadcast_threshold=DEFAULT_BROADCAST_THRESHOLD):
        self.cluster = cluster
        self.program = program
        self.plan = plan
        self.broadcast_threshold = broadcast_threshold
        self.tracer = cluster.tracer
        self.join_modes = {}  # join output vlist -> "broadcast"|"partition"
        self.job_log = []
        self._engines = {}

    # -- engines -------------------------------------------------------------------

    def engine_for(self, worker):
        engine = self._engines.get(worker.worker_id)
        if engine is None:
            def scan_reader(scan_stmt, _worker=worker):
                page_set = _worker.storage.get_set(
                    scan_stmt.database, scan_stmt.set_name
                )
                return page_set.scan_objects()

            engine = PipelineEngine(
                self.program, self.plan, scan_reader,
                batch_size=self.cluster.batch_size,
                tracer=self.tracer,
            )
            self._engines[worker.worker_id] = engine
            worker.backend.engines[id(self)] = engine
        return engine

    @property
    def workers(self):
        return self.cluster.workers

    # -- main entry ------------------------------------------------------------------

    def execute(self):
        for pipeline in self.plan:
            if pipeline.sink_kind == SINK_HASH_BUILD:
                self._run_build(pipeline)
            elif pipeline.sink_kind == SINK_AGGREGATE:
                self._run_aggregate(pipeline)
            elif pipeline.sink_kind == SINK_MATERIALIZE:
                self._run_materialize(pipeline)
            elif pipeline.sink_kind == SINK_OUTPUT:
                self._run_output(pipeline)
            else:
                raise ExecutionError(
                    "unschedulable sink %r" % pipeline.sink_kind
                )
        return self.job_log

    # -- segment execution helpers ------------------------------------------------------

    @contextlib.contextmanager
    def _stage(self, kind, detail):
        """Record one job stage: a job-log entry plus its trace span."""
        stage = JobStage(kind, detail)
        self.job_log.append(stage)
        with self.tracer.span(kind, kind="stage", detail=detail) as span:
            stage.span = span
            yield stage

    def _task_span(self, worker):
        """The per-worker task span nested under the current stage."""
        return self.tracer.span(worker.worker_id, kind="task")

    def _segments(self, stages):
        """Split a stage chain at every *partitioned* join probe."""
        segments = [[]]
        for stage in stages:
            if (
                isinstance(stage, JoinStmt)
                and self.join_modes.get(stage.output) == "partition"
            ):
                segments.append([stage])
            else:
                segments[-1].append(stage)
        return segments

    def _source_batches(self, worker, pipeline):
        engine = self.engine_for(worker)
        return engine._source_batches(pipeline)

    def _run_stages_collect(self, worker, stages, batches):
        """Run ``stages`` over ``batches``; returns collected columns."""
        engine = self.engine_for(worker)
        columns = None

        def run():
            nonlocal columns
            for batch in batches:
                engine.metrics.batches += 1
                self.tracer.add("engine.batches")
                self.tracer.add("engine.rows_in", len(batch))
                current = batch
                empty = False
                for stage in stages:
                    engine.metrics.stage_invocations += 1
                    current = engine._apply_stage(stage, current)
                    if len(current) == 0:
                        empty = True
                        break
                if empty:
                    continue
                self.tracer.add("engine.rows_out", len(current))
                if columns is None:
                    columns = {name: [] for name in current.names()}
                for name in columns:
                    columns[name].extend(current.column(name))

        with self._task_span(worker):
            worker.dispatch(run)
        return columns or {}

    def _run_stages_into_sink(self, worker, stages, batches, sink):
        engine = self.engine_for(worker)

        def run():
            for batch in batches:
                engine.metrics.batches += 1
                pipeline = _StagesView(stages)
                engine._process_batch(pipeline, batch, sink)
            sink.finish()

        with self._task_span(worker):
            worker.dispatch(run)

    def _shuffle_columns(self, per_worker_columns, hash_column):
        """Repartition rows by ``hash % n_workers``; returns per-worker columns."""
        n = len(self.workers)
        received = [None] * n
        for src_index, columns in enumerate(per_worker_columns):
            if not columns:
                continue
            names = list(columns)
            hashes = columns[hash_column]
            buckets = [dict((name, []) for name in names) for _ in range(n)]
            for row, hash_value in enumerate(hashes):
                dest = hash_value % n
                bucket = buckets[dest]
                for name in names:
                    bucket[name].append(columns[name][row])
            for dst_index, bucket in enumerate(buckets):
                if not bucket[names[0]]:
                    continue
                rows = list(zip(*(bucket[name] for name in names)))
                self.cluster.network.ship_rows(
                    self.workers[src_index].worker_id,
                    self.workers[dst_index].worker_id,
                    rows,
                )
                target = received[dst_index]
                if target is None:
                    target = {name: [] for name in names}
                    received[dst_index] = target
                for name in names:
                    target[name].extend(bucket[name])
        return [r or {} for r in received]

    def _probe_segments(self, pipeline, per_worker_columns, segments,
                        sink_factory):
        """Run the remaining probe segments, shuffling between them."""
        for index, segment in enumerate(segments):
            join = segment[0]
            build_side = self.plan.build_sides.get(join.output, "right")
            probe_hash = (
                join.left_hash if build_side == "right" else join.right_hash
            )
            per_worker_columns = self._shuffle_columns(
                per_worker_columns, probe_hash
            )
            last = index == len(segments) - 1
            next_columns = []
            for w_index, worker in enumerate(self.workers):
                batches = batches_of(
                    per_worker_columns[w_index], self.cluster.batch_size
                )
                if last:
                    sink = sink_factory(worker)
                    self._run_stages_into_sink(worker, segment, batches, sink)
                else:
                    next_columns.append(
                        self._run_stages_collect(worker, segment, batches)
                    )
            per_worker_columns = next_columns

    def _run_distributed_pipeline(self, pipeline, sink_factory):
        """Run a full pipeline on every worker, honoring join partitioning."""
        segments = self._segments(pipeline.stages)
        first, rest = segments[0], segments[1:]
        if not rest:
            for worker in self.workers:
                sink = sink_factory(worker)
                batches = self._source_batches(worker, pipeline)
                self._run_stages_into_sink(worker, first, batches, sink)
            return
        collected = []
        for worker in self.workers:
            batches = self._source_batches(worker, pipeline)
            collected.append(
                self._run_stages_collect(worker, first, batches)
            )
        self._probe_segments(pipeline, collected, rest, sink_factory)

    # -- per-sink handlers ------------------------------------------------------------------

    def _estimate_source_bytes(self, pipeline):
        """Rough size of a pipeline's source for the broadcast decision."""
        if pipeline.source_kind == SOURCE_SCAN:
            scan = pipeline.source
            total = 0
            for worker in self.workers:
                try:
                    page_set = worker.storage.get_set(
                        scan.database, scan.set_name
                    )
                except SetNotFoundError:
                    continue
                for page_id in page_set.page_ids:
                    page = worker.storage.pool.pin(page_id)
                    total += page.block.used if page.block else 0
                    worker.storage.pool.unpin(page_id)
            return total
        total_rows = 0
        for worker in self.workers:
            store = self.engine_for(worker).store.get(pipeline.source) or {}
            for column in store.values():
                total_rows += len(column)
                break
        return total_rows * 64

    def _run_build(self, pipeline):
        join = pipeline.sink
        size = self._estimate_source_bytes(pipeline)
        mode = (
            "broadcast" if size <= self.broadcast_threshold else "partition"
        )
        self.join_modes[join.output] = mode
        with self._stage(
            "BuildHashTableJobStage",
            "%s join build for %s (est %d bytes)" % (mode, join.output, size),
        ):
            self._run_build_stage(pipeline, join, mode)

    def _run_build_stage(self, pipeline, join, mode):
        if mode == "broadcast":
            merged = {}
            for worker in self.workers:
                sink = HashBuildSink(self.engine_for(worker), join)
                batches = self._source_batches(worker, pipeline)
                self._run_stages_into_sink(
                    worker, pipeline.stages, batches, sink
                )
                table = self.engine_for(worker).hash_tables[join.output]
                rows = [row for bucket in table.values() for row in bucket]
                self.cluster.network.ship_rows(
                    worker.worker_id, "master", rows
                )
                for hash_value, bucket in table.items():
                    merged.setdefault(hash_value, []).extend(bucket)
            for worker in self.workers:
                rows = [r for b in merged.values() for r in b]
                self.cluster.network.ship_rows("master", worker.worker_id, rows)
                self.engine_for(worker).hash_tables[join.output] = merged
            return

        # Partitioned: collect (hash, row) per worker, shuffle, build shards.
        side = self.plan.build_sides[join.output]
        hash_column = join.right_hash if side == "right" else join.left_hash
        collected = []
        for worker in self.workers:
            batches = self._source_batches(worker, pipeline)
            collected.append(
                self._run_stages_collect(worker, pipeline.stages, batches)
            )
        shuffled = self._shuffle_columns(collected, hash_column)
        columns_kept = (
            join.right_columns if side == "right" else join.left_columns
        )
        for w_index, worker in enumerate(self.workers):
            columns = shuffled[w_index]
            table = {}
            if columns:
                cols = [columns[c] for c in columns_kept]
                for row, hash_value in enumerate(columns[hash_column]):
                    table.setdefault(hash_value, []).append(
                        tuple(column[row] for column in cols)
                    )
            self.engine_for(worker).hash_tables[join.output] = table

    def _run_aggregate(self, pipeline):
        agg = pipeline.sink
        comp = self.program.computations[agg.computation]
        # Producing stage: per-worker pre-aggregation (pipelining threads).
        sinks = {}

        def make_sink(worker):
            sink = AggregateSink(self.engine_for(worker), agg)
            sinks[worker.worker_id] = sink
            return sink

        with self._stage(
            "PipelineJobStage", "pre-aggregation for %s" % agg.output,
        ):
            self._run_distributed_pipeline(
                pipeline, lambda worker: make_sink(worker)
            )

        # Shuffle combiner pages: hash-partition the pre-aggregated keys.
        n = len(self.workers)
        with self._stage(
            "AggregationJobStage",
            "shuffled merge for %s over %d partitions" % (agg.output, n),
        ):
            final_groups = [dict() for _ in range(n)]
            for src_index, worker in enumerate(self.workers):
                engine = self.engine_for(worker)
                store = engine.store.pop(agg.output, None)
                if store is None:
                    continue
                partitions = [dict() for _ in range(n)]
                for key, value in zip(store["key"], store["val"]):
                    partitions[stable_hash(key) % n][key] = value
                for dst_index, partition in enumerate(partitions):
                    if not partition:
                        continue
                    self._ship_aggregate_partition(
                        comp, worker, self.workers[dst_index], partition,
                        final_groups[dst_index],
                    )
            for w_index, worker in enumerate(self.workers):
                groups = final_groups[w_index]
                self.tracer.add("agg.merged_keys", len(final_groups[w_index]))
                self.engine_for(worker).store[agg.output] = {
                    "key": list(groups.keys()),
                    "val": list(groups.values()),
                }

    def _ship_aggregate_partition(self, comp, src, dst, partition, into):
        """Move one hash partition of pre-aggregated data src -> dst.

        When the aggregation declares PC key/value descriptors, the
        partition travels as a real PC Map on a combiner page: the bytes
        are shipped verbatim, and the receiver reads the Map out of the
        arrived page with no deserialization (Figure 5).
        """
        network = self.cluster.network
        if comp.key_type is not None and comp.value_type is not None:
            map_type = MapType(comp.key_type, comp.value_type)
            pending = list(partition.items())
            while pending:
                block = AllocationBlock(
                    self.cluster.combiner_page_size,
                    registry=src.local_catalog.registry,
                )
                handle = make_object_on(block, map_type, None)
                combiner = handle.deref()
                shipped = 0
                from repro.errors import BlockFullError

                try:
                    for key, value in pending:
                        combiner.put(key, value)
                        shipped += 1
                except BlockFullError:
                    if shipped == 0:
                        raise
                block.set_root(handle.offset, handle.type_code)
                data = network.ship_page(
                    src.worker_id, dst.worker_id, block.to_bytes()
                )
                arrived = AllocationBlock.from_bytes(
                    data, registry=dst.local_catalog.registry
                )
                offset, _code = arrived.root()
                arrived_map = map_type.facade(arrived, offset)
                for key, value in arrived_map.items():
                    key = comp.decode_key(key)
                    value = comp.decode_value(value)
                    if key in into:
                        into[key] = comp.combine(into[key], value)
                    else:
                        into[key] = value
                pending = pending[shipped:]
        else:
            rows = list(partition.items())
            network.ship_rows(src.worker_id, dst.worker_id, rows)
            for key, value in rows:
                if key in into:
                    into[key] = comp.combine(into[key], value)
                else:
                    into[key] = value

    def _run_materialize(self, pipeline):
        with self._stage(
            "PipelineJobStage", "materialize %s" % pipeline.sink,
        ):
            self._run_distributed_pipeline(
                pipeline,
                lambda worker: MaterializeSink(self.engine_for(worker),
                                               pipeline.sink),
            )

    def _run_output(self, pipeline):
        output = pipeline.sink
        self.cluster.ensure_set(output.database, output.set_name)
        agg_comp = self._aggregate_behind(output)

        def sink_factory(worker):
            page_set = worker.storage.get_set(
                output.database, output.set_name
            )
            if agg_comp is not None:
                return MapPageOutputSink(
                    self.engine_for(worker), output, page_set, agg_comp
                )
            return ClusterOutputSink(
                self.engine_for(worker), output, page_set, self.cluster
            )

        with self._stage(
            "PipelineJobStage",
            "pipeline into %s.%s" % (output.database, output.set_name),
        ):
            self._run_distributed_pipeline(pipeline, sink_factory)

    def _aggregate_behind(self, output_stmt):
        """The AggregateComp whose pairs this OUTPUT writes, if any."""
        for statement in self.program.statements:
            if (
                isinstance(statement, ApplyStmt)
                and statement.new_column == output_stmt.column
                and statement.info.get("type") == "pairUp"
            ):
                comp = self.program.computations.get(statement.computation)
                if isinstance(comp, AggregateComp) and comp.key_type is not None:
                    return comp
        return None


class _StagesView:
    """Adapter giving scheduler stage lists the Pipeline interface."""

    def __init__(self, stages):
        self.stages = stages


class ClusterOutputSink(Sink):
    """Writes pipeline output to the worker-local partition of a set.

    PC objects (handles / facades) are stored in place on set pages;
    plain Python values fall back to a worker-local Python list that the
    client gathers on :meth:`PCCluster.scan`.
    """

    def __init__(self, engine, output_stmt, page_set, cluster):
        super().__init__(engine)
        self.statement = output_stmt
        self.page_set = page_set
        self.cluster = cluster
        self._writer = None

    def _ensure_writer(self):
        if self._writer is None:
            self._writer = self.page_set.writer().__enter__()
        return self._writer

    def allocation_block(self):
        return self._ensure_writer()._page.block

    def roll_page(self):
        writer = self._ensure_writer()
        writer._seal_page()
        writer._open_page()
        self.engine.metrics.zombie_pages += 1

    def consume(self, batch):
        writer = self._ensure_writer()
        key = (self.statement.database, self.statement.set_name)
        for value in batch.column(self.statement.column):
            if hasattr(value, "pc_block") or hasattr(value, "deref"):
                writer._root.append(value)
                self.page_set.object_count += 1
            else:
                self.cluster.python_outputs.setdefault(key, []).append(value)

    def finish(self):
        if self._writer is not None:
            self._writer.__exit__(None, None, None)
            self.engine.metrics.pages_written += len(self.page_set.page_ids)


class MapPageOutputSink(Sink):
    """Writes aggregation pairs as a PC Map object in the destination set.

    This reproduces the paper's aggregation sink: the stored set holds
    ``Map`` objects (one per worker partition), readable with zero
    deserialization and expanded back into pairs on scan.
    """

    def __init__(self, engine, output_stmt, page_set, comp):
        super().__init__(engine)
        self.statement = output_stmt
        self.page_set = page_set
        self.map_type = MapType(comp.key_type, comp.value_type)
        self.pairs = []

    def consume(self, batch):
        self.pairs.extend(batch.column(self.statement.column))

    def finish(self):
        if not self.pairs:
            return
        from repro.errors import BlockFullError, ExecutionError

        pending = list(self.pairs)
        shipped = 0
        with self.page_set.writer() as writer:
            while pending:
                def build(block):
                    nonlocal shipped
                    shipped = 0
                    handle = make_object_on(block, self.map_type, None)
                    view = handle.deref()
                    for key, value in pending:
                        try:
                            view.put(key, value)
                        except BlockFullError:
                            if shipped == 0:
                                raise
                            break
                        shipped += 1
                    return handle

                writer.append_built(build)
                if shipped == 0:
                    raise ExecutionError(
                        "one aggregation pair exceeds the page size"
                    )
                pending = pending[shipped:]
        self.engine.metrics.pages_written += len(self.page_set.page_ids)
