"""The distributed query scheduler (Section 2, Appendix D).

The scheduler takes an optimized TCAP program plus its physical plan and
turns every pipeline into distributed *job stages*:

* ``PipelineJobStage`` — a pipeline segment run by every worker's back-end
  over its local data;
* ``BuildHashTableJobStage`` — building join hash tables from shuffled or
  broadcast data;
* ``AggregationJobStage`` — merging shuffled pre-aggregation Maps (the
  consuming stage of Figure 5).

Join physicality is decided here, not in TCAP: a build side estimated
smaller than ``broadcast_threshold`` bytes is broadcast to every worker;
otherwise both sides are hash-partitioned (the paper's 2 GB rule,
Section 8.3.2, scaled to simulation sizes).

Aggregation shuffles are the paper's signature move and are reproduced
bit-for-bit: each worker's pre-aggregated groups are materialized into a
PC ``Map`` on a combiner page, the page's *bytes* are shipped, and the
receiver reads the Map straight out of the arrived bytes — zero
serialization on both ends.

Fault tolerance (Section 2's dual-process rationale): every per-worker
task runs through :meth:`DistributedScheduler._run_worker_task`, which
builds its inputs and sink fresh per attempt.  When the back-end crashes
(a user-code bug, an injected fault, a failed page reload), the front-end
re-forks it and the scheduler consults its
:class:`~repro.cluster.faults.RetryPolicy`: allowed retries re-dispatch
*only the failed worker's portion* of the stage against the surviving
front-end storage, after an exponential backoff (reported as a ``retry``
span).  Completed stages' per-worker outputs (hash tables, materialized
stores) are checkpointed at stage boundaries so a re-forked back-end can
be rebuilt mid-job.  A worker that exhausts its attempts either fails the
job with an :class:`~repro.errors.ExecutionError` naming the stage and
worker, or — when the policy allows blacklisting — is decommissioned:
its durable partitions are redistributed to the surviving workers and the
job restarts over them.
"""

from __future__ import annotations

import contextlib

from repro.core.computation import AggregateComp
from repro.engine import kernels
from repro.engine.physical import (
    SINK_AGGREGATE,
    SINK_HASH_BUILD,
    SINK_MATERIALIZE,
    SINK_OUTPUT,
    SOURCE_SCAN,
)
from repro.engine.pipeline import (
    AggregateSink,
    HashBuildSink,
    MaterializeSink,
    PipelineEngine,
    Sink,
)
from repro.cluster.transport import (
    RemoteOutcome,
    RemoteTask,
    remote_available,
    serialize_task,
)
from repro.engine.vectors import batches_of
from repro.errors import (
    BufferPoolExhaustedError,
    ExecutionError,
    InjectedFaultError,
    PageReloadError,
    StorageError,
    WorkerCrashError,
    WorkerLostError,
)
from repro.memory.block import AllocationBlock
from repro.memory.builtins import MapType, stable_hash
from repro.memory.objects import make_object_on
from repro.obs.tracer import Span
from repro.storage.replication import page_checksum
from repro.tcap.ir import ApplyStmt, JoinStmt, OutputStmt
from repro.tcap.verify import verify_program

#: Scaled stand-in for the paper's 2 GB broadcast-join threshold.
DEFAULT_BROADCAST_THRESHOLD = 8 << 20


class JobStage:
    """A record of one scheduled distributed job stage (for Figure 4).

    ``span`` links the record to its trace span, so the job log and the
    trace report the same stage with the same wall time.
    """

    def __init__(self, kind, detail):
        self.kind = kind
        self.detail = detail
        self.span = None

    @property
    def duration_s(self):
        return self.span.duration_s if self.span is not None else None

    def __repr__(self):
        return "%s(%s)" % (self.kind, self.detail)


class DistributedScheduler:
    """Schedules one execution of a program across the cluster."""

    def __init__(self, cluster, program, plan,
                 broadcast_threshold=DEFAULT_BROADCAST_THRESHOLD):
        self.cluster = cluster
        self.program = program
        self.plan = plan
        self.broadcast_threshold = broadcast_threshold
        self.tracer = cluster.tracer
        # Submit-time plan verification (repro.tcap.verify): type-check
        # the compiled program against the catalog *before* any stage is
        # planned or dispatched, so a mistyped plan dies here — no worker
        # spawn, no partial sink output — with a PlanTypeError naming the
        # offending TCAP statement.
        if getattr(cluster, "verify_plans", False):
            with self.tracer.span("verify", kind="phase"):
                verify_program(
                    program,
                    catalog=cluster.catalog,
                    layout_of=cluster._columnar_layout_of,
                )
        self.faults = cluster.fault_injector
        self.fault_metrics = cluster.fault_metrics
        self.profiler = cluster.profiler
        self.retry_policy = cluster.retry_policy
        self.join_modes = {}  # join output vlist -> "broadcast"|"partition"
        self.job_log = []
        self._checkpoints = {}  # worker_id -> {"hash_tables": .., "store": ..}
        self._current_stage = None
        #: remote (process-backed) offload needs cloudpickle for task blobs
        self._remote_off = not remote_available()
        #: the cluster's flight recorder (scheduler decisions leave events)
        self.flight = getattr(cluster, "flight", None)
        self._c_remote_spans = cluster.metrics_registry.counter(
            "pc_trace_remote_spans_total",
            help="Spans recorded in back-end processes and grafted into "
                 "job traces",
            trace="trace.remote_spans",
        )

    # -- engines -------------------------------------------------------------------

    @property
    def _job_key(self):
        """The key this scheduler registers its engines under."""
        return id(self)

    def engine_for(self, worker):
        """This job's pipeline engine on ``worker``'s current back-end.

        Keyed into the back-end's transient state, so a re-fork implicitly
        invalidates it; the replacement engine is seeded with the
        checkpointed outputs of the stages that already completed.
        """
        engine = worker.backend.engines.get(self._job_key)
        if engine is None:
            def scan_reader(scan_stmt, _worker=worker):
                repl = self.cluster.replication
                # Columnar-marked scans get whole-page array batches; the
                # engine falls back per page if a row page sneaks in.
                columnar = scan_stmt.info.get("columnar") == "1"
                if repl.has_page_map(
                    scan_stmt.database, scan_stmt.set_name
                ):
                    # Replica-map governed set: this worker reads exactly
                    # the pages assigned to it (first live replica), with
                    # failover and corruption healing built in.
                    return repl.scan_objects(
                        scan_stmt.database, scan_stmt.set_name,
                        worker_id=_worker.worker_id,
                        columnar_pages=columnar,
                    )
                page_set = _worker.storage.get_set(
                    scan_stmt.database, scan_stmt.set_name
                )
                return page_set.scan_objects(columnar_pages=columnar)

            engine = PipelineEngine(
                self.program, self.plan, scan_reader,
                batch_size=self.cluster.batch_size,
                tracer=self.tracer, profiler=self.profiler,
            )
            # Engine counters stay exact per instance; binding publishes
            # their deltas into the worker's registry as pc_engine_*.
            engine.metrics.bind(worker.metrics)
            checkpoint = self._checkpoints.get(worker.worker_id)
            if checkpoint is not None:
                engine.hash_tables.update(checkpoint["hash_tables"])
                engine.store.update(checkpoint["store"])
            worker.backend.engines[self._job_key] = engine
        return engine

    def _checkpoint_workers(self):
        """Snapshot every worker's completed-stage outputs.

        Called at successful stage boundaries.  The snapshot lives with
        the scheduler (front-end durable territory), so when a back-end is
        re-forked mid-job its replacement engine can be rebuilt without
        re-running the stages that already finished.
        """
        for worker in self.workers:
            engine = worker.backend.engines.get(self._job_key)
            if engine is None:
                continue
            self._checkpoints[worker.worker_id] = {
                "hash_tables": dict(engine.hash_tables),
                "store": dict(engine.store),
            }

    def _release_engines(self):
        """Drop this job's engines from every back-end (leak fix).

        Without this, engines keyed by finished jobs accumulate in
        ``BackendProcess.engines`` across executions — and a recycled job
        key could even resurrect a stale engine.
        """
        for worker in self.cluster.workers:
            worker.backend.release_job(self._job_key)

    @property
    def workers(self):
        return self.cluster.active_workers

    # -- main entry ------------------------------------------------------------------

    def execute(self):
        try:
            while True:
                try:
                    self._execute_plan()
                    return self.job_log
                except WorkerLostError as lost:
                    self._degrade(lost)
        finally:
            self._release_engines()

    def _execute_plan(self):
        for pipeline in self.plan:
            if pipeline.sink_kind == SINK_HASH_BUILD:
                self._run_build(pipeline)
            elif pipeline.sink_kind == SINK_AGGREGATE:
                self._run_aggregate(pipeline)
            elif pipeline.sink_kind == SINK_MATERIALIZE:
                self._run_materialize(pipeline)
            elif pipeline.sink_kind == SINK_OUTPUT:
                self._run_output(pipeline)
            else:
                raise ExecutionError(
                    "unschedulable sink %r" % pipeline.sink_kind
                )

    # -- fault recovery -----------------------------------------------------------------

    def _armed_attempt(self, worker, stage_kind, make_attempt):
        """Build one attempt, substituting an injected crash when armed.

        ``make_attempt()`` builds the attempt fresh — re-reading sources
        from front-end storage and re-creating the sink — and returns
        ``(payload, abort)``: what to dispatch (a closure, or a
        :class:`RemoteTask` bound for a back-end process) and a rollback
        undoing any durable half-effects of a failed try.  When the fault
        injector decrees a crash for this attempt, the payload is
        replaced by a raising closure, so injected crashes behave
        identically on every transport: the back-end runs it, crashes,
        and is re-forked (killing a real child process, if there is one).
        """
        payload, abort = make_attempt()
        if self.faults is not None and self.faults.should_crash_backend(
            worker.worker_id, stage_kind
        ):
            self._cleanup_payload(payload)
            worker_id = worker.worker_id

            def crash():
                raise InjectedFaultError(
                    "injected back-end crash on %s during %s"
                    % (worker_id, stage_kind)
                )

            payload = crash
        return payload, abort

    @staticmethod
    def _cleanup_payload(payload):
        """Release a payload's held resources (exported-page pins), once."""
        if isinstance(payload, RemoteTask) and payload.cleanup is not None:
            cleanup, payload.cleanup = payload.cleanup, None
            cleanup()

    def _retry_pause(self, worker, stage_kind, attempts):
        """The backoff between attempts, reported as a ``retry`` span."""
        backoff = self.retry_policy.backoff_s(attempts)
        if self.flight is not None:
            self.flight.record(
                "sched.retry", worker=worker.worker_id, stage=stage_kind,
                attempt=attempts + 1, backoff_ms=int(backoff * 1000),
            )
        with self.tracer.span(
            "retry", kind="retry",
            detail="%s on %s, attempt %d"
            % (stage_kind, worker.worker_id, attempts + 1),
        ) as retry_span:
            retry_span.inc("retry.count")
            retry_span.inc(
                "retry.backoff_ms", max(1, int(backoff * 1000))
            )
            self.retry_policy.sleep(backoff)

    def _run_worker_task(self, worker, make_attempt):
        """Run one worker's portion of the current stage, with retries.

        Synchronous form: dispatch happens inside the task span, so the
        engine counters a simulated back-end emits while running are
        attributed to this worker's task — exactly as before transports
        became pluggable.
        """
        policy = self.retry_policy
        stage = self._current_stage
        stage_kind = stage.kind if stage is not None else "task"
        attempts = 0
        started = policy.clock()
        while True:
            attempts += 1
            payload, abort = self._armed_attempt(
                worker, stage_kind, make_attempt
            )
            try:
                try:
                    with self._task_span(worker) as span:
                        if attempts > 1:
                            span.inc("task.retry_attempt")
                        try:
                            outcome = worker.dispatch(payload)
                        except WorkerCrashError as crash:
                            self._graft_crash_evidence(worker, span, crash)
                            raise
                        if isinstance(outcome, RemoteOutcome):
                            payload.on_result(outcome)
                finally:
                    self._cleanup_payload(payload)
                if attempts > 1:
                    self.fault_metrics.tasks_recovered.inc()
                return
            except WorkerCrashError as crash:
                self.fault_metrics.backend_crashes.inc()
                if abort is not None:
                    abort()
                # The policy clock covers sim determinism; real deadline
                # kills (process transport) arrive pre-judged on the
                # crash itself, so either channel books a timeout.
                timed_out = policy.timed_out(started) or getattr(
                    crash, "deadline_exceeded", False
                )
                if timed_out or not policy.should_retry(attempts):
                    self._fail_permanently(
                        worker, stage, attempts, crash, timed_out
                    )
                self._retry_pause(worker, stage_kind, attempts)

    def _submit_attempt(self, worker, make_attempt):
        """Submit one worker's first attempt without awaiting it."""
        stage = self._current_stage
        stage_kind = stage.kind if stage is not None else "task"
        payload, abort = self._armed_attempt(worker, stage_kind, make_attempt)
        return {
            "payload": payload, "abort": abort,
            "future": worker.submit(payload),
            "attempts": 1, "started": self.retry_policy.clock(),
        }

    def _await_attempt(self, worker, make_attempt, state):
        """Await a submitted attempt, retrying (resubmitting) on crashes."""
        policy = self.retry_policy
        stage = self._current_stage
        stage_kind = stage.kind if stage is not None else "task"
        while True:
            payload = state["payload"]
            try:
                try:
                    with self._task_span(worker) as span:
                        if state["attempts"] > 1:
                            span.inc("task.retry_attempt")
                        try:
                            outcome = worker.await_result(state["future"])
                        except WorkerCrashError as crash:
                            self._graft_crash_evidence(worker, span, crash)
                            raise
                        if isinstance(outcome, RemoteOutcome):
                            payload.on_result(outcome)
                finally:
                    self._cleanup_payload(payload)
                if state["attempts"] > 1:
                    self.fault_metrics.tasks_recovered.inc()
                return
            except WorkerCrashError as crash:
                self.fault_metrics.backend_crashes.inc()
                if state["abort"] is not None:
                    state["abort"]()
                timed_out = policy.timed_out(state["started"]) or getattr(
                    crash, "deadline_exceeded", False
                )
                if timed_out or not policy.should_retry(state["attempts"]):
                    self._fail_permanently(
                        worker, stage, state["attempts"], crash, timed_out
                    )
                self._retry_pause(worker, stage_kind, state["attempts"])
                state["attempts"] += 1
                payload, abort = self._armed_attempt(
                    worker, stage_kind, make_attempt
                )
                state["payload"], state["abort"] = payload, abort
                state["future"] = worker.submit(payload)

    def _parallel(self):
        """Whether submit-all/await-all buys real overlap on this cluster."""
        return any(
            getattr(worker.backend, "asynchronous", False)
            for worker in self.workers
        )

    def _run_worker_tasks(self, items, on_lost=None):
        """Run per-worker attempts, overlapping them when back-ends allow.

        ``items`` is a list of ``(worker, make_attempt)`` pairs.  With
        synchronous back-ends (the simulator) the workers run strictly in
        order — the exact pre-transport behavior, including mid-loop
        blacklist checks and immediate loss handling.  With asynchronous
        (process) back-ends every worker's first attempt is submitted up
        front and awaited in order; losses are handled *after* all awaits
        finish, because already-submitted survivors snapshot their
        sources at submit time and cannot pick up orphans mid-flight.

        ``on_lost(worker, lost, completed)`` absorbs a lost worker or
        re-raises; without it the loss propagates immediately.  Returns
        the set of worker ids that completed their portion.
        """
        completed = set()
        if not self._parallel():
            for worker, make_attempt in items:
                if worker.worker_id in self.cluster.blacklist:
                    continue
                try:
                    self._run_worker_task(worker, make_attempt)
                    completed.add(worker.worker_id)
                except WorkerLostError as lost:
                    if on_lost is None:
                        raise
                    on_lost(worker, lost, completed)
            return completed
        pending = []
        for worker, make_attempt in items:
            if worker.worker_id in self.cluster.blacklist:
                continue
            pending.append((
                worker, make_attempt,
                self._submit_attempt(worker, make_attempt),
            ))
        losses = []
        for worker, make_attempt, state in pending:
            try:
                self._await_attempt(worker, make_attempt, state)
                completed.add(worker.worker_id)
            except WorkerLostError as lost:
                if on_lost is None:
                    raise
                losses.append((worker, lost))
        for worker, lost in losses:
            # _fail_permanently's surviving-workers check ran against
            # the cluster as it stood at await time; earlier entries in
            # this loop may have decommissioned workers since.  Re-check
            # the floor before each deferred loss is absorbed.
            if len(self.workers) - 1 < self.retry_policy.min_surviving_workers:
                raise ExecutionError(
                    "worker %s lost (%s), but decommissioning it would "
                    "leave fewer than %d surviving worker(s)"
                    % (
                        lost.worker_id, lost.reason,
                        self.retry_policy.min_surviving_workers,
                    )
                ) from lost
            on_lost(worker, lost, completed)
        return completed

    def _fail_permanently(self, worker, stage, attempts, crash, timed_out):
        """A worker task is out of retries: blacklist or fail the job."""
        policy = self.retry_policy
        kind = stage.kind if stage is not None else "task"
        detail = stage.detail if stage is not None else ""
        why = "task timeout" if timed_out else "retries exhausted"
        survivors = len(self.workers) - 1
        if (
            policy.blacklist_on_exhaustion
            and survivors >= policy.min_surviving_workers
        ):
            raise WorkerLostError(
                worker.worker_id,
                "%s in stage %s (%s) after %d attempt(s): %s"
                % (why, kind, detail, attempts, crash),
            ) from crash
        raise ExecutionError(
            "stage %s (%s) failed permanently on worker %s "
            "after %d attempt(s) (%s): %s"
            % (kind, detail, worker.worker_id, attempts, why, crash)
        ) from crash

    def _degrade(self, lost):
        """Blacklist a permanently-dead worker and restart the job.

        Graceful degradation: the dead worker's durable partitions are
        redistributed to its peers (the front-end storage survives the
        back-end, so pages move as verbatim bytes), this job's partial
        outputs are cleared, and the stage loop re-runs from the top over
        the surviving workers.
        """
        moved = self.cluster.decommission_worker(
            lost.worker_id, reason=lost.reason
        )
        if self.flight is not None:
            self.flight.record("sched.blacklist", worker=lost.worker_id,
                               reason=str(lost.reason)[:120],
                               pages_moved=moved)
        # decommission_worker already counted the redistributed pages;
        # the blacklist event span carries only the blacklisting itself.
        with self.tracer.span(
            "blacklist", kind="fault",
            detail="worker %s blacklisted (%s); %d page(s) redistributed"
            % (lost.worker_id, lost.reason, moved),
        ):
            self.fault_metrics.workers_blacklisted.inc()
        self.job_log.append(JobStage(
            "WorkerBlacklistedEvent",
            "%s decommissioned; job restarting on %d worker(s)"
            % (lost.worker_id, len(self.workers)),
        ))
        # Restart from a clean slate: transient engines, checkpoints, and
        # physical join decisions are all worker-count dependent.
        self._release_engines()
        self._checkpoints.clear()
        self.join_modes.clear()
        for statement in self.program.statements:
            if isinstance(statement, OutputStmt):
                key = (statement.database, statement.set_name)
                if key in self.cluster.storage_manager:
                    self.cluster.clear_set(*key)

    # -- segment execution helpers ------------------------------------------------------

    @contextlib.contextmanager
    def _stage(self, kind, detail):
        """Record one job stage: a job-log entry plus its trace span."""
        stage = JobStage(kind, detail)
        self.job_log.append(stage)
        profiled = (
            self.profiler.stage(kind) if self.profiler is not None
            else contextlib.nullcontext()
        )
        with self.tracer.span(kind, kind="stage", detail=detail) as span, \
                profiled:
            stage.span = span
            self._current_stage = stage
            try:
                yield stage
            finally:
                self._current_stage = None
        # Only reached when the stage completed: checkpoint its outputs
        # so mid-job re-forks can rebuild engines without re-running it.
        self._checkpoint_workers()

    def _task_span(self, worker):
        """The per-worker task span nested under the current stage."""
        return self.tracer.span(worker.worker_id, kind="task")

    def _segments(self, stages):
        """Split a stage chain at every *partitioned* join probe."""
        segments = [[]]
        for stage in stages:
            if (
                isinstance(stage, JoinStmt)
                and self.join_modes.get(stage.output) == "partition"
            ):
                segments.append([stage])
            else:
                segments[-1].append(stage)
        return segments

    def _scan_batches_factory(self, worker, pipeline):
        """Fresh source batches for one attempt, off the current engine."""
        return lambda: self.engine_for(worker)._source_batches(pipeline)

    # -- remote (process-backed) task offload ------------------------------------------

    def _scan_source_builder(self, worker, pipeline):
        """A deferred shippable-source description for one worker.

        Called per attempt; returns ``(source, cleanup)`` or None when
        the portion must run inline.  Scan sources export the worker's
        assigned pages as shared-memory references — mirroring the
        replica-governed scan's page selection, failover accounting, and
        corruption healing exactly — and keep every exported page
        *pinned* until ``cleanup`` runs, so eviction cannot unlink a
        segment the child is still reading.  A pool too small to pin the
        whole scan falls back to inline execution (where the engine
        streams pages one at a time through the spill machinery).
        """
        if pipeline.source_kind != SOURCE_SCAN:
            source_name = pipeline.source

            def build_store():
                columns = self.engine_for(worker).store.get(source_name)
                if columns is None:
                    # Let the inline path raise its usual ExecutionError.
                    return None
                return ("columns", columns), None

            return build_store
        scan = pipeline.source

        def build_scan():
            repl = self.cluster.replication
            pinned = []

            def cleanup():
                for pool, page_id in pinned:
                    pool.unpin(page_id)

            refs = []
            try:
                if repl.has_page_map(scan.database, scan.set_name):
                    copies = repl.scan_page_copies(
                        scan.database, scan.set_name,
                        worker_id=worker.worker_id,
                    )
                elif worker.storage.has_set(scan.database, scan.set_name):
                    page_set = worker.storage.get_set(
                        scan.database, scan.set_name
                    )
                    copies = [
                        (page_set, page_id)
                        for page_id in page_set.page_ids
                    ]
                else:
                    copies = []
                for page_set, page_id in copies:
                    pool = page_set.pool
                    page = pool.pin(page_id)
                    pinned.append((pool, page_id))
                    if page.shm is None:
                        cleanup()
                        return None
                    refs.append((page.shm.name, page.block.size))
            except BufferPoolExhaustedError:
                # Pool pressure: run this attempt inline, where the
                # engine streams pages one at a time through the spill
                # machinery instead of pinning the whole scan.
                cleanup()
                return None
            except StorageError:
                # A flaky reload or a missing replica: the inline scan
                # would hit the same fault inside the back-end, so
                # re-raise and let the attempt machinery treat it as a
                # back-end crash — identical retry/refork accounting on
                # both transports.
                cleanup()
                raise
            # The 4th element tells the remote worker whether this scan
            # was columnar-lowered (attach pages as array batches).
            columnar = scan.info.get("columnar") == "1"
            return ("pages", refs, scan.column, columnar), cleanup

        return build_scan

    def _describe_sink(self, sink):
        """A shippable description of a sink, or None if it must stay here.

        Output sinks write worker-local pages and merge sinks fold into
        coordinator state — both unshippable.  The child always builds
        its sink plain (merge=False) and returns *pre-finish* state; the
        coordinator installs it and runs ``finish()`` front-end side, so
        merge semantics and the ``pre_aggregated_keys`` accounting happen
        exactly once, in exactly one place.
        """
        if type(sink) is AggregateSink and not sink.merge:
            return ("aggregate", sink.statement)
        if type(sink) is HashBuildSink:
            return ("hash_build", sink.join)
        if type(sink) is MaterializeSink and not sink.merge:
            return ("materialize", sink.vlist_name)
        return None

    def _install_sink_result(self, sink, result):
        """Load a child's pre-finish sink state, then finish front-end side."""
        if isinstance(sink, AggregateSink):
            keys, vals = result
            sink.groups = dict(zip(keys, vals))
        elif isinstance(sink, HashBuildSink):
            sink.table = result
        else:
            sink.columns = result
        sink.finish()

    def _apply_remote_deltas(self, worker, outcome):
        """Replay a child's engine-metric and trace-counter deltas, and
        graft its span batch into the job tree.

        Applied inside the worker's task span, so trace attribution
        matches the inline path; the engine's bound registry mirrors the
        metric deltas into ``pc_engine_*`` automatically.  Span
        timestamps arrive relative to ``outcome.span_base`` on the
        child's clock; ``span_base + clock_offset`` shifts the whole
        batch into the coordinator's ``time.monotonic()`` frame (DESIGN
        §14), after which the remote root becomes a child of the open
        task span.  Flight-recorder events the child shipped attach to
        its root span.
        """
        engine = self.engine_for(worker)
        for field, delta in outcome.metrics.items():
            if delta:
                setattr(
                    engine.metrics, field,
                    getattr(engine.metrics, field) + delta,
                )
        for name, value in outcome.trace_counts.items():
            self.tracer.add(name, value)
            if (self.profiler is not None and name.startswith("op.")
                    and name.endswith(".columnar_rows")):
                # The child had no profiler; re-book its columnar row
                # counts under the operator they belong to.
                operator = name[len("op."):-len(".columnar_rows")]
                self.profiler.op_columnar_rows.child(
                    operator=operator
                ).inc(value)
        self._graft_remote_spans(outcome)

    def _graft_crash_evidence(self, worker, span, crash):
        """Preserve what a crashed remote attempt managed to produce.

        The transport attaches a ``remote_outcome`` to the crash when it
        has evidence — the error envelope's pre-exception deltas and
        truncated spans, or the synthesized span + flight-ring dump of a
        child that died without answering.  Replayed inside the still-
        open task span (the caller re-raises right after), so retries
        never lose the attempt's counters and the trace shows what the
        worker was doing when it died.
        """
        if isinstance(span, Span):  # a disabled tracer yields a null span
            span.truncated = True
        outcome = getattr(crash, "remote_outcome", None)
        if outcome is None:
            return
        self._apply_remote_deltas(worker, outcome)

    def _graft_remote_spans(self, outcome):
        """Attach a remote span batch under the currently open span."""
        parent = self.tracer.active
        if parent is None or not outcome.spans:
            return
        shift_s = outcome.span_base + outcome.clock_offset
        grafted = 0
        for payload in outcome.spans:
            try:
                span = Span.from_dict(payload)
            except (KeyError, TypeError, ValueError):  # pcsan: disable=PC005
                # Malformed span batch (torn by a dying child): the
                # counters already landed above, only the tree is lost.
                self.tracer.add("trace.span_graft_failures")
                continue
            span.shift(shift_s)
            span.parent_id = parent.span_id
            if span.pid is None:
                span.pid = outcome.pid
            parent.children.append(span)
            grafted += sum(1 for _ in span.walk())
        if grafted:
            self._c_remote_spans.inc(grafted)
            error_s = outcome.clock_error_s
            if error_s == error_s and error_s not in (float("inf"),):
                # Finite calibration error only: an uncalibrated child
                # (inf bound) would poison the span's JSON encoding.
                parent.counters["trace.clock_error_s"] = max(
                    parent.counters.get("trace.clock_error_s", 0.0),
                    error_s,
                )

    def _remote_task(self, worker, stages, source_builder, sink_spec,
                     run_inline, install, label=""):
        """Package one worker's stage portion for its back-end process.

        Returns None whenever the portion must run inline instead: the
        back-end is in-process, cloudpickle is unavailable, the sink or
        source is unshippable, or the spec fails to serialize.  The
        returned task's ``on_result`` replays the child's metric deltas
        and installs the result through ``install(result)``.
        """
        if self._remote_off or sink_spec is None or source_builder is None:
            return None
        if not getattr(worker.backend, "asynchronous", False):
            return None
        try:
            built = source_builder()
        except StorageError as fault:
            # Replay the export fault through the back-end so it books
            # as a crash (retry + re-fork), mirroring where the inline
            # scan would have raised it.
            def replay_fault(fault=fault):
                raise fault

            return replay_fault
        if built is None:
            return None
        source, cleanup = built
        engine = self.engine_for(worker)
        tables = {}
        for stage in stages:
            if isinstance(stage, JoinStmt):
                table = engine.hash_tables.get(stage.output)
                if table is None:
                    self._run_cleanup(cleanup)
                    return None
                tables[stage.output] = table

        def on_result(outcome):
            self._apply_remote_deltas(worker, outcome)
            install(outcome.result)

        active = self.tracer.active
        spec = {
            "program": self.program,
            "build_sides": dict(self.plan.build_sides),
            "batch_size": self.cluster.batch_size,
            "stages": list(stages),
            "source": source,
            "sink": sink_spec,
            "hash_tables": tables,
            # Trace context (DESIGN §14): the child's task span adopts
            # this job's trace id and hangs off the span open at build
            # time (the stage span; grafting re-parents onto the task
            # span the coordinator opens around the dispatch).
            "trace_ctx": {
                "trace_id": self.tracer.trace_id,
                "parent_span_id": active.span_id if active is not None
                else None,
            },
            # The master registry is authoritative and its codes are
            # cluster-consistent (local catalogs mirror them on their
            # simulated .so fetches); the worker-local registry may not
            # have lazily fetched every type the pages reference yet.
            "registry": self.cluster.catalog.registry,
        }
        try:
            blob = serialize_task(spec)
        except Exception:  # program/tables hold something unpicklable
            self._run_cleanup(cleanup)
            return None
        return RemoteTask(
            blob, run_inline, on_result,
            label="%s on %s" % (label, worker.worker_id),
            cleanup=cleanup,
        )

    @staticmethod
    def _run_cleanup(cleanup):
        if cleanup is not None:
            cleanup()

    # -- stage runners -----------------------------------------------------------------

    def _collect_attempt(self, worker, stages, batches_factory,
                         source_builder, result):
        """make_attempt for a collect run; the columns land in ``result``."""

        def make_attempt():
            acc = {"columns": None}
            result["acc"] = acc

            def run():
                engine = self.engine_for(worker)
                for batch in batches_factory():
                    engine.metrics.batches += 1
                    engine.metrics.rows_in += len(batch)
                    self.tracer.add("engine.batches")
                    self.tracer.add("engine.rows_in", len(batch))
                    current = batch
                    empty = False
                    for stage in stages:
                        engine.metrics.stage_invocations += 1
                        current = engine._apply_stage(stage, current)
                        if len(current) == 0:
                            empty = True
                            break
                    if empty:
                        continue
                    self.tracer.add("engine.rows_out", len(current))
                    if acc["columns"] is None:
                        acc["columns"] = {
                            name: [] for name in current.names()
                        }
                    for name in acc["columns"]:
                        # A columnar-lowered segment may end array-backed;
                        # the accumulator holds plain Python values.
                        acc["columns"][name].extend(
                            kernels.reify_column(current.column(name))
                        )

            def install(res):
                acc["columns"] = res

            task = self._remote_task(
                worker, stages, source_builder, ("collect",), run,
                install, label="collect",
            )
            return (task if task is not None else run), None

        return make_attempt

    def _sink_attempt(self, worker, stages, batches_factory, sink_factory,
                      source_builder=None):
        """make_attempt for a run that folds batches into a fresh sink."""

        def make_attempt():
            sink = sink_factory(worker)

            def run():
                engine = sink.engine
                for batch in batches_factory():
                    engine.metrics.batches += 1
                    engine.metrics.rows_in += len(batch)
                    pipeline = _StagesView(stages)
                    engine._process_batch(pipeline, batch, sink)
                sink.finish()

            def install(res):
                self._install_sink_result(sink, res)

            task = self._remote_task(
                worker, stages, source_builder, self._describe_sink(sink),
                run, install, label="sink",
            )
            return (task if task is not None else run), sink.abort

        return make_attempt

    def _run_stages_collect(self, worker, stages, batches_factory,
                            source_builder=None):
        """Run ``stages`` over fresh batches; returns collected columns."""
        result = {}
        self._run_worker_task(worker, self._collect_attempt(
            worker, stages, batches_factory, source_builder, result
        ))
        return result["acc"]["columns"] or {}

    def _run_stages_into_sink(self, worker, stages, batches_factory,
                              sink_factory, source_builder=None):
        """Run ``stages`` into a per-attempt sink built by ``sink_factory``."""
        self._run_worker_task(worker, self._sink_attempt(
            worker, stages, batches_factory, sink_factory, source_builder
        ))

    def _collect_from_workers(self, pipeline, stages):
        """Every worker's collected columns for one segment, in order."""
        workers = list(self.workers)
        holders = [dict() for _ in workers]
        items = [
            (worker, self._collect_attempt(
                worker, stages,
                self._scan_batches_factory(worker, pipeline),
                self._scan_source_builder(worker, pipeline),
                holders[index],
            ))
            for index, worker in enumerate(workers)
        ]
        self._run_worker_tasks(items)
        return [
            (holder.get("acc") or {}).get("columns") or {}
            for holder in holders
        ]

    def _shuffle_columns(self, per_worker_columns, hash_column):
        """Repartition rows by ``hash % n_workers``; returns per-worker columns."""
        workers = self.workers
        n = len(workers)
        received = [None] * n
        for src_index, columns in enumerate(per_worker_columns):
            if not columns:
                continue
            names = list(columns)
            hashes = columns[hash_column]
            buckets = [dict((name, []) for name in names) for _ in range(n)]
            for row, hash_value in enumerate(hashes):
                dest = hash_value % n
                bucket = buckets[dest]
                for name in names:
                    bucket[name].append(columns[name][row])
            for dst_index, bucket in enumerate(buckets):
                if not bucket[names[0]]:
                    continue
                rows = list(zip(*(bucket[name] for name in names)))
                self.cluster.network.ship_rows(
                    workers[src_index].worker_id,
                    workers[dst_index].worker_id,
                    rows,
                )
                target = received[dst_index]
                if target is None:
                    target = {name: [] for name in names}
                    received[dst_index] = target
                for name in names:
                    target[name].extend(bucket[name])
        return [r or {} for r in received]

    def _probe_segments(self, pipeline, per_worker_columns, segments,
                        sink_factory):
        """Run the remaining probe segments, shuffling between them."""
        for index, segment in enumerate(segments):
            join = segment[0]
            build_side = self.plan.build_sides.get(join.output, "right")
            probe_hash = (
                join.left_hash if build_side == "right" else join.right_hash
            )
            per_worker_columns = self._shuffle_columns(
                per_worker_columns, probe_hash
            )
            last = index == len(segments) - 1
            workers = list(self.workers)
            holders = [dict() for _ in workers]
            items = []
            for w_index, worker in enumerate(workers):
                cols = per_worker_columns[w_index]

                def batches_factory(_cols=cols):
                    return batches_of(_cols, self.cluster.batch_size)

                def source_builder(_cols=cols):
                    return ("columns", _cols), None

                if last:
                    items.append((worker, self._sink_attempt(
                        worker, segment, batches_factory, sink_factory,
                        source_builder,
                    )))
                else:
                    items.append((worker, self._collect_attempt(
                        worker, segment, batches_factory, source_builder,
                        holders[w_index],
                    )))
            self._run_worker_tasks(items)
            if not last:
                per_worker_columns = [
                    (holder.get("acc") or {}).get("columns") or {}
                    for holder in holders
                ]

    def _run_distributed_pipeline(self, pipeline, sink_factory):
        """Run a full pipeline on every worker, honoring join partitioning.

        Single-segment scan-sourced stages get the no-restart failover
        path: when a worker is declared lost mid-stage and every page it
        was scanning survives on a replica, the survivors *absorb* its
        orphaned pages (merge-aware sinks) and the stage completes without
        restarting the job.  Anything unabsorbable re-raises and falls
        back to the restart-from-scratch degradation.
        """
        segments = self._segments(pipeline.stages)
        first, rest = segments[0], segments[1:]
        if not rest:
            def on_lost(worker, lost, completed):
                if not self._can_absorb(lost, pipeline):
                    raise lost
                self._absorb_lost_worker(
                    lost, pipeline, first, sink_factory, completed
                )

            items = [
                (worker, self._sink_attempt(
                    worker, first,
                    self._scan_batches_factory(worker, pipeline),
                    sink_factory,
                    self._scan_source_builder(worker, pipeline),
                ))
                for worker in list(self.workers)
            ]
            self._run_worker_tasks(items, on_lost=on_lost)
            return
        collected = self._collect_from_workers(pipeline, first)
        self._probe_segments(pipeline, collected, rest, sink_factory)

    def _can_absorb(self, lost, pipeline):
        """Whether a lost worker's stage portion can move to survivors.

        Absorption needs (a) a scan source whose pages are governed by
        the catalog replica map — so the lost worker's input survives
        elsewhere — and (b) no unrecoverable per-worker state from
        earlier stages: a checkpointed *partitioned* hash-table shard or
        materialized store partition died with the worker, forcing the
        restart fallback.  Broadcast hash tables are identical on every
        worker, so losing one copy loses nothing.
        """
        if pipeline.source_kind != SOURCE_SCAN:
            return False
        scan = pipeline.source
        if not self.cluster.replication.has_page_map(
            scan.database, scan.set_name
        ):
            return False
        checkpoint = self._checkpoints.get(lost.worker_id)
        if checkpoint is not None:
            if checkpoint["store"]:
                return False
            for output in checkpoint["hash_tables"]:
                if self.join_modes.get(output) != "broadcast":
                    return False
        return True

    def _absorb_lost_worker(self, lost, pipeline, stages, sink_factory,
                            completed):
        """Decommission a lost worker and re-run its orphans on survivors.

        The worker's scan assignment (the pages it was reading) is
        captured before decommissioning; afterwards those pages' first
        live replicas sit on survivors.  Survivors that already finished
        this stage run *only* the orphaned pages through merge-aware
        sinks; survivors still queued pick the orphans up automatically
        through their refreshed scan assignments.
        """
        scan = pipeline.source
        repl = self.cluster.replication
        before = repl.scan_assignments(scan.database, scan.set_name)
        orphans = {
            uid for uid, worker_id in before.items()
            if worker_id == lost.worker_id
        }
        moved = self.cluster.decommission_worker(
            lost.worker_id, reason=lost.reason
        )
        self._checkpoints.pop(lost.worker_id, None)
        with self.tracer.span(
            "absorb", kind="fault",
            detail="worker %s lost (%s); %d orphaned page(s) absorbed by "
            "survivors, no restart" % (
                lost.worker_id, lost.reason, len(orphans)
            ),
        ):
            self.fault_metrics.workers_blacklisted.inc()
            self.fault_metrics.workers_absorbed.inc()
        self.job_log.append(JobStage(
            "WorkerAbsorbedEvent",
            "%s decommissioned mid-stage; %d orphaned page(s) absorbed "
            "by %d survivor(s) without a job restart"
            % (lost.worker_id, len(orphans), len(self.workers)),
        ))
        if not orphans:
            return
        after = repl.scan_assignments(scan.database, scan.set_name)
        for worker in self.workers:
            if worker.worker_id not in completed:
                # Still queued in the stage loop: its refreshed scan
                # assignment already includes any orphans routed to it.
                continue
            assigned = {
                uid for uid in orphans
                if after.get(uid) == worker.worker_id
            }
            if assigned:
                self._run_orphan_pages(
                    worker, scan, stages, sink_factory, assigned
                )

    def _run_orphan_pages(self, worker, scan, stages, sink_factory, uids):
        """Run ``stages`` over just the orphaned pages, merging results."""
        from repro.engine.pipeline import object_batches

        def batches_factory():
            objects = self.cluster.replication.scan_objects(
                scan.database, scan.set_name,
                worker_id=worker.worker_id, only_uids=uids,
            )
            return object_batches(
                objects, scan.column, self.cluster.batch_size
            )

        def merge_sink_factory(w):
            sink = sink_factory(w)
            if hasattr(sink, "merge"):
                sink.merge = True
            return sink

        self._run_stages_into_sink(
            worker, stages, batches_factory, merge_sink_factory
        )

    # -- per-sink handlers ------------------------------------------------------------------

    def _estimate_source_bytes(self, pipeline):
        """Rough size of a pipeline's source for the broadcast decision."""
        if pipeline.source_kind == SOURCE_SCAN:
            scan = pipeline.source
            repl = self.cluster.replication
            if repl.has_page_map(scan.database, scan.set_name):
                # Replica-aware: count each page once, not once per copy.
                return repl.estimated_bytes(scan.database, scan.set_name)
            total = 0
            for worker in self.workers:
                # PC005 fix: probe first instead of swallowing the miss —
                # a worker simply not holding a partition is the normal
                # case, not an exception to discard.
                if not worker.storage.has_set(scan.database, scan.set_name):
                    continue
                page_set = worker.storage.get_set(
                    scan.database, scan.set_name
                )
                for page_id in page_set.page_ids:
                    try:
                        page = worker.storage.pool.pin(page_id)
                    except PageReloadError:  # pcsan: disable=PC005
                        # An estimate tolerates a flaky reload; the scan
                        # itself retries through the stage machinery.
                        continue
                    total += page.block.used if page.block else 0
                    worker.storage.pool.unpin(page_id)
            return total
        total_rows = 0
        for worker in self.workers:
            store = self.engine_for(worker).store.get(pipeline.source) or {}
            for column in store.values():
                total_rows += len(column)
                break
        return total_rows * 64

    def _run_build(self, pipeline):
        join = pipeline.sink
        size = self._estimate_source_bytes(pipeline)
        mode = (
            "broadcast" if size <= self.broadcast_threshold else "partition"
        )
        self.join_modes[join.output] = mode
        with self._stage(
            "BuildHashTableJobStage",
            "%s join build for %s (est %d bytes)" % (mode, join.output, size),
        ):
            self._run_build_stage(pipeline, join, mode)

    def _run_build_stage(self, pipeline, join, mode):
        if mode == "broadcast":
            def build_sink_factory(w):
                return HashBuildSink(self.engine_for(w), join)

            def ship_to_master(worker, merged):
                table = self.engine_for(worker).hash_tables[join.output]
                rows = [row for bucket in table.values() for row in bucket]
                self.cluster.network.ship_rows(
                    worker.worker_id, "master", rows
                )
                for hash_value, bucket in table.items():
                    merged.setdefault(hash_value, []).extend(bucket)

            merged = {}
            if self._parallel():
                # Builds overlap across back-end processes; the ship and
                # merge pass stays a serial coordinator loop.
                items = [
                    (worker, self._sink_attempt(
                        worker, pipeline.stages,
                        self._scan_batches_factory(worker, pipeline),
                        build_sink_factory,
                        self._scan_source_builder(worker, pipeline),
                    ))
                    for worker in self.workers
                ]
                self._run_worker_tasks(items)
                for worker in self.workers:
                    ship_to_master(worker, merged)
            else:
                # Deterministic simulator path: build and ship interleave
                # per worker, preserving the historical fault-draw order.
                for worker in self.workers:
                    self._run_stages_into_sink(
                        worker, pipeline.stages,
                        self._scan_batches_factory(worker, pipeline),
                        build_sink_factory,
                    )
                    ship_to_master(worker, merged)
            for worker in self.workers:
                rows = [r for b in merged.values() for r in b]
                self.cluster.network.ship_rows("master", worker.worker_id, rows)
                self.engine_for(worker).hash_tables[join.output] = merged
            return

        # Partitioned: collect (hash, row) per worker, shuffle, build shards.
        side = self.plan.build_sides[join.output]
        hash_column = join.right_hash if side == "right" else join.left_hash
        collected = self._collect_from_workers(pipeline, pipeline.stages)
        shuffled = self._shuffle_columns(collected, hash_column)
        columns_kept = (
            join.right_columns if side == "right" else join.left_columns
        )
        for w_index, worker in enumerate(self.workers):
            columns = shuffled[w_index]
            table = {}
            if columns:
                cols = [columns[c] for c in columns_kept]
                for row, hash_value in enumerate(columns[hash_column]):
                    table.setdefault(hash_value, []).append(
                        tuple(column[row] for column in cols)
                    )
            self.engine_for(worker).hash_tables[join.output] = table

    def _run_aggregate(self, pipeline):
        agg = pipeline.sink
        comp = self.program.computations[agg.computation]
        # Producing stage: per-worker pre-aggregation (pipelining threads).
        with self._stage(
            "PipelineJobStage", "pre-aggregation for %s" % agg.output,
        ):
            self._run_distributed_pipeline(
                pipeline,
                lambda worker: AggregateSink(self.engine_for(worker), agg),
            )

        # Shuffle combiner pages: hash-partition the pre-aggregated keys.
        workers = self.workers
        n = len(workers)
        with self._stage(
            "AggregationJobStage",
            "shuffled merge for %s over %d partitions" % (agg.output, n),
        ):
            final_groups = [dict() for _ in range(n)]
            for src_index, worker in enumerate(workers):
                engine = self.engine_for(worker)
                store = engine.store.pop(agg.output, None)
                if store is None:
                    continue
                partitions = [dict() for _ in range(n)]
                for key, value in zip(store["key"], store["val"]):
                    bucket = partitions[stable_hash(key) % n]
                    if key in bucket:
                        # A store can carry a key twice after a survivor
                        # absorbed a lost peer's portion — combine, never
                        # silently overwrite.
                        bucket[key] = comp.combine(bucket[key], value)
                    else:
                        bucket[key] = value
                for dst_index, partition in enumerate(partitions):
                    if not partition:
                        continue
                    self._ship_aggregate_partition(
                        comp, worker, workers[dst_index], partition,
                        final_groups[dst_index],
                    )
            for w_index, worker in enumerate(workers):
                groups = final_groups[w_index]
                self.tracer.add("agg.merged_keys", len(final_groups[w_index]))
                self.engine_for(worker).store[agg.output] = {
                    "key": list(groups.keys()),
                    "val": list(groups.values()),
                }

    def _ship_aggregate_partition(self, comp, src, dst, partition, into):
        """Move one hash partition of pre-aggregated data src -> dst.

        When the aggregation declares PC key/value descriptors, the
        partition travels as a real PC Map on a combiner page: the bytes
        are shipped verbatim, and the receiver reads the Map out of the
        arrived page with no deserialization (Figure 5).
        """
        network = self.cluster.network
        if comp.key_type is not None and comp.value_type is not None:
            map_type = MapType(comp.key_type, comp.value_type)
            pending = list(partition.items())
            while pending:
                block = AllocationBlock(
                    self.cluster.combiner_page_size,
                    registry=src.local_catalog.registry,
                )
                handle = make_object_on(block, map_type, None)
                combiner = handle.deref()
                shipped = 0
                from repro.errors import BlockFullError

                try:
                    for key, value in pending:
                        combiner.put(key, value)
                        shipped += 1
                except BlockFullError:
                    if shipped == 0:
                        raise
                block.set_root(handle.offset, handle.type_code)
                payload = block.to_bytes()
                # Checksummed transfer: a corrupted combiner page is
                # detected on receipt and re-sent, never merged.
                data = network.ship_page(
                    src.worker_id, dst.worker_id, payload,
                    checksum=page_checksum(payload),
                )
                arrived = AllocationBlock.from_bytes(
                    data, registry=dst.local_catalog.registry
                )
                offset, _code = arrived.root()
                arrived_map = map_type.facade(arrived, offset)
                for key, value in arrived_map.items():
                    key = comp.decode_key(key)
                    value = comp.decode_value(value)
                    if key in into:
                        into[key] = comp.combine(into[key], value)
                    else:
                        into[key] = value
                pending = pending[shipped:]
        else:
            rows = list(partition.items())
            network.ship_rows(src.worker_id, dst.worker_id, rows)
            for key, value in rows:
                if key in into:
                    into[key] = comp.combine(into[key], value)
                else:
                    into[key] = value

    def _run_materialize(self, pipeline):
        with self._stage(
            "PipelineJobStage", "materialize %s" % pipeline.sink,
        ):
            self._run_distributed_pipeline(
                pipeline,
                lambda worker: MaterializeSink(self.engine_for(worker),
                                               pipeline.sink),
            )

    def _run_output(self, pipeline):
        output = pipeline.sink
        self.cluster.ensure_set(output.database, output.set_name)
        agg_comp = self._aggregate_behind(output)

        def sink_factory(worker):
            page_set = worker.storage.get_set(
                output.database, output.set_name
            )
            if agg_comp is not None:
                return MapPageOutputSink(
                    self.engine_for(worker), output, page_set, agg_comp
                )
            return ClusterOutputSink(
                self.engine_for(worker), output, page_set, self.cluster
            )

        with self._stage(
            "PipelineJobStage",
            "pipeline into %s.%s" % (output.database, output.set_name),
        ):
            premarks = {
                worker.worker_id: len(
                    worker.storage.get_set(
                        output.database, output.set_name
                    ).page_ids
                )
                for worker in self.workers
            }
            self._run_distributed_pipeline(pipeline, sink_factory)
            self._register_output_pages(output, premarks)

    def _register_output_pages(self, output, premarks):
        """Checksum, record, and replicate the pages this stage wrote.

        Sink pages are written in place on each worker; before the stage
        is declared complete they are stamped into the catalog's replica
        map and copied to their ring replicas, so output sets get the
        same durability as loaded ones.  The new-page lists are snapshot
        *before* any replica is shipped — replica copies land in peer
        partitions and must not be mistaken for freshly written output.
        """
        new_pages = {}
        for worker in self.workers:
            page_set = worker.storage.get_set(
                output.database, output.set_name
            )
            mark = premarks.get(worker.worker_id, 0)
            pages = list(page_set.page_ids[mark:])
            if pages:
                new_pages[worker.worker_id] = pages
        for worker_id, pages in new_pages.items():
            self.cluster.replication.register_local_pages(
                output.database, output.set_name, worker_id, pages
            )

    def _aggregate_behind(self, output_stmt):
        """The AggregateComp whose pairs this OUTPUT writes, if any."""
        for statement in self.program.statements:
            if (
                isinstance(statement, ApplyStmt)
                and statement.new_column == output_stmt.column
                and statement.info.get("type") == "pairUp"
            ):
                comp = self.program.computations.get(statement.computation)
                if isinstance(comp, AggregateComp) and comp.key_type is not None:
                    return comp
        return None


class _StagesView:
    """Adapter giving scheduler stage lists the Pipeline interface."""

    def __init__(self, stages):
        self.stages = stages


class ClusterOutputSink(Sink):
    """Writes pipeline output to the worker-local partition of a set.

    PC objects (handles / facades) are stored in place on set pages;
    plain Python values fall back to a worker-local Python list that the
    client gathers on :meth:`PCCluster.read`.  The sink records where the
    partition stood at creation, so :meth:`abort` can roll a failed
    attempt's half-written pages back before a retry.
    """

    def __init__(self, engine, output_stmt, page_set, cluster):
        super().__init__(engine)
        self.statement = output_stmt
        self.page_set = page_set
        self.cluster = cluster
        self._writer = None
        self._key = (output_stmt.database, output_stmt.set_name)
        self._pages_mark = len(page_set.page_ids)
        self._objects_mark = page_set.object_count
        self._python_mark = len(cluster.python_outputs.get(self._key, ()))

    def _ensure_writer(self):
        if self._writer is None:
            self._writer = self.page_set.writer().__enter__()
        return self._writer

    def allocation_block(self):
        return self._ensure_writer()._page.block

    def roll_page(self):
        writer = self._ensure_writer()
        writer._seal_page()
        writer._open_page()
        self.engine.metrics.zombie_pages += 1

    def consume(self, batch):
        writer = self._ensure_writer()
        key = (self.statement.database, self.statement.set_name)
        for value in kernels.reify_column(batch.column(self.statement.column)):
            if hasattr(value, "pc_page"):
                # A columnar scan's row view is page-backed but not a
                # handle: store its detached form as a Python output
                # (columnar *output* sets are not written in v1).
                self.cluster.python_outputs.setdefault(key, []).append(
                    value.detach()
                )
            elif hasattr(value, "pc_block") or hasattr(value, "deref"):
                writer._root.append(value)
                self.page_set.object_count += 1
            else:
                self.cluster.python_outputs.setdefault(key, []).append(value)

    def finish(self):
        if self._writer is not None:
            self._writer.__exit__(None, None, None)
            self.engine.metrics.pages_written += len(self.page_set.page_ids)

    def abort(self):
        if self._writer is not None and self._writer._page is not None:
            self.page_set.pool.free_page(self._writer._page.page_id)
            self._writer._page = None
            self._writer._root = None
        self._writer = None
        _rollback_pages(self.page_set, self._pages_mark, self._objects_mark)
        outputs = self.cluster.python_outputs.get(self._key)
        if outputs is not None:
            del outputs[self._python_mark:]


class MapPageOutputSink(Sink):
    """Writes aggregation pairs as a PC Map object in the destination set.

    This reproduces the paper's aggregation sink: the stored set holds
    ``Map`` objects (one per worker partition), readable with zero
    deserialization and expanded back into pairs on scan.
    """

    def __init__(self, engine, output_stmt, page_set, comp):
        super().__init__(engine)
        self.statement = output_stmt
        self.page_set = page_set
        self.map_type = MapType(comp.key_type, comp.value_type)
        self.pairs = []
        self._pages_mark = len(page_set.page_ids)
        self._objects_mark = page_set.object_count

    def consume(self, batch):
        self.pairs.extend(
            kernels.reify_column(batch.column(self.statement.column))
        )

    def finish(self):
        if not self.pairs:
            return
        from repro.errors import BlockFullError, ExecutionError

        pending = list(self.pairs)
        shipped = 0
        with self.page_set.writer() as writer:
            while pending:
                def build(block):
                    nonlocal shipped
                    shipped = 0
                    handle = make_object_on(block, self.map_type, None)
                    view = handle.deref()
                    for key, value in pending:
                        try:
                            view.put(key, value)
                        except BlockFullError:
                            if shipped == 0:
                                raise
                            break
                        shipped += 1
                    return handle

                writer.append_built(build)
                if shipped == 0:
                    raise ExecutionError(
                        "one aggregation pair exceeds the page size"
                    )
                pending = pending[shipped:]
        self.engine.metrics.pages_written += len(self.page_set.page_ids)

    def abort(self):
        _rollback_pages(self.page_set, self._pages_mark, self._objects_mark)


def _rollback_pages(page_set, pages_mark, objects_mark):
    """Free every page a failed attempt appended past ``pages_mark``."""
    for page_id in page_set.page_ids[pages_mark:]:
        page_set.pool.free_page(page_id)
    del page_set.page_ids[pages_mark:]
    page_set.object_count = objects_mark
