"""Allocation blocks: the page-as-a-heap allocator.

An :class:`AllocationBlock` wraps a ``bytearray`` and hands out object
allocations from it (Section 6.1 / 6.4 of the paper).  Blocks come in three
flavours, mirroring the paper exactly:

* the single **active** block of a thread, receiving all ``make_object``
  calls;
* **inactive, managed** blocks: previously-active blocks still holding
  reachable objects; they are reference counted and are reclaimed as a
  whole once their active-object counter drops to zero;
* **inactive, un-managed** blocks: pages loaded from storage or the
  network; no reference counting happens on them, the execution engine
  (buffer pool) owns their lifetime.

Three *allocator policies* (Appendix B) control what "deallocate" means
inside a block:

* ``LIGHTWEIGHT_REUSE`` (default): freed space goes into power-of-two
  freelist buckets and is handed out again;
* ``NO_REUSE``: classic region allocation — freed space is abandoned, the
  bump pointer only moves forward;
* ``RECYCLING``: layered on lightweight reuse; freed *fixed-length* objects
  are kept on per-type-code recycle lists and handed back verbatim to the
  next ``make_object`` of the same type.

The bytes of the block are the only authoritative object representation:
:meth:`AllocationBlock.to_bytes` / :meth:`AllocationBlock.from_bytes`
implement the paper's zero-cost data movement — a straight memory copy
with no per-object work.
"""

from __future__ import annotations

import itertools
import struct

from repro.analysis.sanitizer import current_sanitizer
from repro.errors import BlockFullError, DanglingHandleError
from repro.memory import layout
from repro.memory.layout import (
    BLOCK_HEADER_SIZE,
    OBJECT_HEADER_SIZE,
    REFCOUNT_FREED,
    REFCOUNT_UNIQUE,
    align8,
)

#: Allocator policies (block level, Appendix B).
LIGHTWEIGHT_REUSE = 0
NO_REUSE = 1
RECYCLING = 2

_POLICY_NAMES = {
    LIGHTWEIGHT_REUSE: "lightweight-reuse",
    NO_REUSE: "no-reuse",
    RECYCLING: "recycling",
}

#: Per-object policies (Appendix B).
FULL_REF_COUNT = "full_ref_count"
NO_REF_COUNT = "no_ref_count"
UNIQUE_OWNERSHIP = "unique_ownership"

_FREE_CHUNK = struct.Struct("<qQ")  # next free chunk offset (-1 = end), size

_block_ids = itertools.count(1)


class AllocationBlock:
    """A contiguous region of bytes that PC objects are allocated into."""

    __slots__ = (
        "buf",
        "block_id",
        "size",
        "policy",
        "managed",
        "on_empty",
        "_free_buckets",
        "_recycle_lists",
        "registry",
        "freed_bytes",
        "alloc_count",
        "free_count",
        "metrics",
        "_m_allocs",
        "_m_frees",
        "_san",
    )

    def __init__(self, size, policy=LIGHTWEIGHT_REUSE, registry=None,
                 managed=True, buf=None, on_empty=None, metrics=None,
                 init_header=False):
        if buf is None:
            if size < BLOCK_HEADER_SIZE + OBJECT_HEADER_SIZE:
                raise ValueError("block size %d too small" % size)
            buf = bytearray(size)
            init_header = True
        if init_header:
            layout.pack_block_header(buf, size, BLOCK_HEADER_SIZE, 0, policy)
            layout.write_handle_slot(buf, layout.ROOT_HANDLE_OFFSET, None, 0)
        self.buf = buf
        self.block_id = next(_block_ids)
        self.size = size
        self.policy = policy
        #: managed blocks maintain refcounts / active-object counters; pages
        #: arriving from storage or network are un-managed (Section 6.4).
        self.managed = managed
        #: callback fired when the active-object count of a managed block
        #: falls to zero (the whole-block reclamation of Section 6.4).
        self.on_empty = on_empty
        self._free_buckets = [-1] * 64  # head offsets of per-size freelists
        self._recycle_lists = {}  # type code -> [offsets]
        self.registry = registry
        self.freed_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        # Optional *aggregate* allocator metrics (a MetricsRegistry).  The
        # per-block counters above stay exact plain ints — stats() is the
        # per-block view, the registry sums allocator work pool-wide.
        self.metrics = metrics
        if metrics is not None:
            self._m_allocs = metrics.counter(
                "pc_alloc_allocations_total",
                help="Objects allocated across all blocks")
            self._m_frees = metrics.counter(
                "pc_alloc_frees_total",
                help="Objects freed across all blocks")
            metrics.counter(
                "pc_alloc_blocks_total",
                help="Allocation blocks created").inc()
        else:
            self._m_allocs = None
            self._m_frees = None
        # PCSan: blocks created while the sanitizer is active carry a
        # shadow (generations, poison map, shadow refcounts); otherwise
        # every hook site below is one `is not None` test.
        san = current_sanitizer()
        self._san = san.watch_block(self) if san is not None else None

    # -- introspection ------------------------------------------------------

    @property
    def used(self):
        """Current bump-pointer position."""
        return layout.read_used(self.buf)

    @property
    def bytes_free(self):
        """Bytes remaining past the bump pointer."""
        return self.size - self.used

    @property
    def active_objects(self):
        """Number of live reference-counted objects on this block."""
        return layout.read_active_objects(self.buf)

    @property
    def policy_name(self):
        """Human-readable allocator policy name."""
        return _POLICY_NAMES[self.policy]

    def __repr__(self):
        return "<AllocationBlock #%d %s used=%d/%d objects=%d>" % (
            self.block_id,
            self.policy_name,
            self.used,
            self.size,
            self.active_objects,
        )

    # -- root handle --------------------------------------------------------

    def set_root(self, offset, type_code):
        """Record the block's root object so shipped pages are self-describing."""
        layout.write_handle_slot(
            self.buf, layout.ROOT_HANDLE_OFFSET, offset, type_code
        )

    def root(self):
        """Return ``(offset, type_code)`` of the root object, or (None, 0)."""
        return layout.read_handle_slot(self.buf, layout.ROOT_HANDLE_OFFSET)

    # -- allocation ---------------------------------------------------------

    def allocate(self, payload_size, type_code, refcount=0):
        """Allocate an object with ``payload_size`` bytes of payload.

        Returns the absolute offset of the object header.  Raises
        :class:`BlockFullError` when the request does not fit — the caller
        (typically the execution engine) reacts by retiring the page.
        """
        # Minimum 24 bytes so a freed object can hold both its tombstone
        # (refcount/typecode) and the freelist record that follows them.
        total = max(align8(OBJECT_HEADER_SIZE + payload_size), 24)
        offset = None
        if self.policy == RECYCLING:
            recycled = self._recycle_lists.get(type_code)
            if recycled:
                offset = recycled.pop()
                # Recycled slots are exact-fit by construction (fixed-length
                # objects only join a recycle list).
        if offset is None and self.policy in (LIGHTWEIGHT_REUSE, RECYCLING):
            offset = self._take_from_freelist(total)
        if offset is None:
            used = self.used
            if used + total > self.size:
                raise BlockFullError(total, self.size - used)
            offset = used
            layout.write_used(self.buf, used + total)
        if self._san is not None:
            # Verify the reused chunk's poison survived (wild-write check)
            # before the header/zeroing below overwrites it.
            self._san.on_alloc(offset, type_code, refcount)
        layout.write_object_header(
            self.buf, offset, refcount, type_code, payload_size
        )
        # Zero the payload: recycled/reused space may hold stale bytes and
        # handle slots must start out null.
        start = offset + OBJECT_HEADER_SIZE
        self.buf[start:start + payload_size] = bytes(payload_size)
        if self.managed and refcount >= 0:
            layout.write_active_objects(self.buf, self.active_objects + 1)
        self.alloc_count += 1
        if self._m_allocs is not None:
            self._m_allocs.inc()
        return offset

    def _bucket_for(self, total):
        return max(total.bit_length() - 1, 4)

    def _take_from_freelist(self, total):
        """Pop a free chunk large enough for ``total`` bytes, or None.

        Free-chunk records live 8 bytes into the chunk so the freed
        object's tombstone (refcount + type code) stays intact for
        dangling-handle detection.
        """
        for bucket in range(self._bucket_for(total), 64):
            head = self._free_buckets[bucket]
            prev = None
            while head != -1:
                nxt, chunk_size = _FREE_CHUNK.unpack_from(self.buf, head + 8)
                if chunk_size >= total:
                    if prev is None:
                        self._free_buckets[bucket] = nxt
                    else:
                        prev_nxt, prev_size = _FREE_CHUNK.unpack_from(
                            self.buf, prev + 8
                        )
                        _FREE_CHUNK.pack_into(
                            self.buf, prev + 8, nxt, prev_size
                        )
                    self.freed_bytes -= chunk_size
                    return head
                prev, head = head, nxt
        return None

    # -- deallocation -------------------------------------------------------

    def free_object(self, offset, recycle_type_code=None):
        """Release the storage of the object at ``offset``.

        The caller is responsible for having already released embedded
        handles (see :func:`repro.memory.objects.destroy_object`).  What
        happens to the bytes depends on the block policy.
        """
        refcount, type_code, payload_size = layout.read_object_header(
            self.buf, offset
        )
        if refcount == REFCOUNT_FREED:
            raise DanglingHandleError(
                "object at offset %d was already freed" % offset
            )
        total = max(align8(OBJECT_HEADER_SIZE + payload_size), 24)
        layout.write_refcount(self.buf, offset, REFCOUNT_FREED)
        self.free_count += 1
        if self._m_frees is not None:
            self._m_frees.inc()
        if self.managed and refcount >= 0:
            remaining = self.active_objects - 1
            layout.write_active_objects(self.buf, remaining)
            if remaining == 0 and self.on_empty is not None:
                self.on_empty(self)
        if self._san is not None:
            # Poison past the tombstone + freelist record; bumps the
            # offset's generation so stale handles fail deref.
            self._san.on_free(offset, total)
        if self.policy == NO_REUSE:
            self.freed_bytes += total
            return
        if self.policy == RECYCLING and recycle_type_code is not None:
            self._recycle_lists.setdefault(recycle_type_code, []).append(offset)
            return
        self._add_to_freelist(offset, total)

    def _add_to_freelist(self, offset, total):
        bucket = self._bucket_for(total)
        # The record sits past the 8-byte tombstone; every chunk is at
        # least 24 bytes (see allocate), so the record always fits.
        _FREE_CHUNK.pack_into(
            self.buf, offset + 8, self._free_buckets[bucket], total
        )
        self._free_buckets[bucket] = offset
        self.freed_bytes += total

    # -- refcount plumbing ---------------------------------------------------

    def refcount_of(self, offset):
        """Raw refcount field of the object at ``offset``."""
        return layout.read_refcount(self.buf, offset)

    def retain(self, offset):
        """Increment the refcount of the object at ``offset``.

        Un-managed blocks, uncounted objects, and uniquely-owned objects
        are left untouched, mirroring Section 6.5: a block is only managed
        by its home thread, so cross-thread copies never touch counters.
        """
        if not self.managed:
            return
        refcount = layout.read_refcount(self.buf, offset)
        if refcount == REFCOUNT_FREED:
            raise DanglingHandleError(
                "retain of freed object at offset %d" % offset
            )
        if refcount < 0:
            return
        if self._san is not None:
            self._san.on_refcount(offset, refcount, refcount + 1)
        layout.write_refcount(self.buf, offset, refcount + 1)

    def release(self, offset):
        """Decrement the refcount; returns True when it hit zero.

        The caller is expected to destroy the object (releasing embedded
        handles first) when this returns True.
        """
        if not self.managed:
            return False
        refcount = layout.read_refcount(self.buf, offset)
        if refcount == REFCOUNT_FREED:
            raise DanglingHandleError(
                "release of freed object at offset %d" % offset
            )
        if refcount == REFCOUNT_UNIQUE:
            return True
        if refcount < 0:
            return False
        if refcount == 0:
            raise DanglingHandleError(
                "refcount underflow at offset %d" % offset
            )
        if self._san is not None:
            self._san.on_refcount(offset, refcount, refcount - 1)
        refcount -= 1
        layout.write_refcount(self.buf, offset, refcount)
        return refcount == 0

    # -- zero-cost movement ---------------------------------------------------

    def to_bytes(self):
        """The block's entire representation as immutable bytes.

        This is the paper's zero-cost data movement: no per-object work,
        just one memory copy of the occupied prefix (plus header).
        """
        if self._san is not None:
            self._san.on_seal()
        return bytes(self.buf[: self.used])

    @classmethod
    def from_bytes(cls, data, registry=None, managed=False, metrics=None):
        """Reconstitute a block shipped from another process.

        The returned block is *un-managed* by default — exactly the
        "inactive, un-managed" category of Section 6.4: pages arriving
        from disk or network are owned by the buffer pool, not the object
        model.
        """
        block_size, used, active, policy = layout.unpack_block_header(data)
        buf = bytearray(block_size)
        buf[: len(data)] = data
        block = cls(
            block_size,
            policy=policy,
            registry=registry,
            managed=managed,
            buf=buf,
            metrics=metrics,
        )
        return block

    @classmethod
    def from_buffer(cls, buf, registry=None, managed=False, metrics=None):
        """Wrap an existing writable buffer *without copying it*.

        This is how a back-end process attaches to a sealed page that
        lives in shared memory: the buffer (a ``memoryview`` over the
        mapped segment) becomes the block's storage verbatim, so the page
        is readable with zero (de)serialization.  The caller must hand in
        a buffer whose length equals the block size in its header.
        """
        block_size, _used, _active, policy = layout.unpack_block_header(buf)
        if len(buf) != block_size:
            raise ValueError(
                "buffer length %d does not match block size %d"
                % (len(buf), block_size)
            )
        return cls(
            block_size,
            policy=policy,
            registry=registry,
            managed=managed,
            buf=buf,
            metrics=metrics,
        )

    def stats(self):
        """Allocator statistics, used by the ablation benchmarks."""
        return {
            "block_id": self.block_id,
            "policy": self.policy_name,
            "size": self.size,
            "used": self.used,
            "freed_bytes": self.freed_bytes,
            "active_objects": self.active_objects,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
        }
