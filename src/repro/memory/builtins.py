"""Built-in PC object types: String, Array, Vector, and Map.

These are the generic container types of Section 6.1.  Every instantiation
(``VectorType(Float64)``, ``MapType(String, Int32)``, ...) is registered as
its own type code, mirroring C++ template instantiation: the element
accessors of each instantiation are specialized closures with no per-object
dispatch.

Layouts (all little-endian, offsets relative to the object's payload):

* ``String``  — ``uint32 length`` + UTF-8 bytes.  Strings deliberately do
  *not* cache their hash value (Section 8.4.3 calls this out as a PC design
  choice that keeps them small at some CPU cost).
* ``Array<T>`` — ``capacity`` tightly packed element slots; the capacity is
  implied by the payload size.  Arrays back vectors and map buckets and are
  never recycled (they are the paper's variable-length internal type).
* ``Vector<T>`` — ``uint64 count`` + handle to a backing ``Array<T>``.
* ``Map<K,V>`` — ``uint64 count`` + handle to a bucket ``Array``; open
  addressing with linear probing over
  ``(occupied:u8, pad:7, hash:u64, K slot, V slot)`` entries.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ObjectModelError
from repro.memory import layout
from repro.memory.handle import Handle
from repro.memory.layout import OBJECT_HEADER_SIZE, align8
from repro.memory.objects import (
    ObjectTypeDescriptor,
    as_descriptor,
    deep_copy_object,
    release_reference,
)
from repro.memory.types import numpy_dtype_for

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_HASH_MASK = (1 << 64) - 1


def stable_hash(value):
    """A deterministic 64-bit hash usable across processes and runs.

    Python's built-in ``hash`` for strings is randomized per process; PC
    hashes must stay valid when a page full of hashed entries is shipped to
    another (simulated) process, so strings use FNV-1a instead.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value) & _HASH_MASK
    if isinstance(value, (float, np.floating)):
        return hash(float(value)) & _HASH_MASK
    if isinstance(value, str):
        h = _FNV_OFFSET
        for byte in value.encode("utf-8"):
            h ^= byte
            h = (h * _FNV_PRIME) & _HASH_MASK
        return h
    if isinstance(value, tuple):
        h = _FNV_OFFSET
        for item in value:
            h ^= stable_hash(item)
            h = (h * _FNV_PRIME) & _HASH_MASK
        return h
    raise ObjectModelError("unhashable PC map key: %r" % (value,))


# ---------------------------------------------------------------------------
# String
# ---------------------------------------------------------------------------

class StringType(ObjectTypeDescriptor):
    """UTF-8 string object.  Slots decode straight to Python ``str``."""

    name = "string"

    #: Fixed well-known code so string bytes mean the same thing in every
    #: registry, with no registration handshake (built-ins ship with PC).
    FIXED_CODE = 1

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self, code=self.FIXED_CODE)
        return code

    def facade(self, block, offset):
        payload = offset + OBJECT_HEADER_SIZE
        length = _U32.unpack_from(block.buf, payload)[0]
        start = payload + 4
        return bytes(block.buf[start:start + length]).decode("utf-8")

    def _slot_value(self, block, target_offset, type_code):
        return self.facade(block, target_offset)

    def allocate_value(self, block, value):
        if not isinstance(value, str):
            raise ObjectModelError("expected str, got %r" % (value,))
        encoded = value.encode("utf-8")
        offset = block.allocate(4 + len(encoded), self.type_code(block))
        payload = offset + OBJECT_HEADER_SIZE
        _U32.pack_into(block.buf, payload, len(encoded))
        block.buf[payload + 4:payload + 4 + len(encoded)] = encoded
        return offset


String = StringType()


# ---------------------------------------------------------------------------
# Array<T>
# ---------------------------------------------------------------------------

class ArrayType(ObjectTypeDescriptor):
    """Raw element storage backing vectors and map buckets."""

    def __init__(self, elem):
        self.elem = as_descriptor(elem)
        self.name = "array<%s>" % self.elem.name

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self)
        return code

    def facade(self, block, offset):
        return ArrayFacade(block, offset, self)

    def dependents(self):
        return [self.elem]

    def allocate_value(self, block, capacity):
        payload = capacity * self.elem.slot_size
        return block.allocate(payload, self.type_code(block))

    def capacity_of(self, block, offset):
        """Number of element slots, derived from the payload size."""
        payload_size = layout.read_object_header(block.buf, offset)[2]
        return payload_size // self.elem.slot_size

    def destroy_payload(self, block, payload_offset, payload_size):
        if not self.elem.is_object_type:
            return
        slot = payload_offset
        end = payload_offset + payload_size
        while slot < end:
            target, _code = layout.read_handle_slot(block.buf, slot)
            if target is not None:
                release_reference(block, target)
            slot += self.elem.slot_size
        # Null every slot so a recycled/zombie array cannot double-release.
        block.buf[payload_offset:end] = bytes(payload_size)

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        if not self.elem.is_object_type:
            return
        step = self.elem.slot_size
        for delta in range(0, payload_size - payload_size % step, step):
            target, _code = layout.read_handle_slot(
                src_block.buf, src_payload + delta
            )
            if target is None:
                layout.write_handle_slot(
                    dst_block.buf, dst_payload + delta, None, 0
                )
                continue
            copied = deep_copy_object(src_block, target, dst_block, memo)
            code = layout.read_object_header(dst_block.buf, copied)[1]
            dst_block.retain(copied)
            layout.write_handle_slot(
                dst_block.buf, dst_payload + delta, copied, code
            )


class ArrayFacade:
    """Typed element view over an Array<T> object (internal helper)."""

    __slots__ = ("pc_block", "pc_offset", "descriptor")

    def __init__(self, block, offset, descriptor):
        self.pc_block = block
        self.pc_offset = offset
        self.descriptor = descriptor

    def _slot(self, index):
        return (
            self.pc_offset
            + OBJECT_HEADER_SIZE
            + index * self.descriptor.elem.slot_size
        )

    def __len__(self):
        return self.descriptor.capacity_of(self.pc_block, self.pc_offset)

    def __getitem__(self, index):
        return self.descriptor.elem.read_slot(self.pc_block, self._slot(index))

    def __setitem__(self, index, value):
        self.descriptor.elem.write_slot(self.pc_block, self._slot(index), value)


# ---------------------------------------------------------------------------
# Vector<T>
# ---------------------------------------------------------------------------

_VECTOR_COUNT = 0  # payload offset of the count field
_VECTOR_ARRAY = 8  # payload offset of the backing-array handle slot


class VectorType(ObjectTypeDescriptor):
    """Growable sequence of ``T`` stored entirely on one block."""

    def __init__(self, elem):
        self.elem = as_descriptor(elem)
        self.name = "vector<%s>" % self.elem.name
        self.array_type = ArrayType(self.elem)
        self.fixed_payload = align8(_VECTOR_ARRAY + layout.HANDLE_SLOT_SIZE)

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self)
        return code

    def facade(self, block, offset):
        return VectorFacade(block, offset, self)

    def dependents(self):
        return [self.elem, self.array_type]

    def _slot_value(self, block, target_offset, type_code):
        return self.facade(block, target_offset)

    def allocate_value(self, block, value):
        offset = block.allocate(self.fixed_payload, self.type_code(block))
        if value is not None:
            view = self.facade(block, offset)
            view.extend(value)
        return offset

    def destroy_payload(self, block, payload_offset, payload_size):
        slot = payload_offset + _VECTOR_ARRAY
        target, _code = layout.read_handle_slot(block.buf, slot)
        if target is not None:
            release_reference(block, target)
            layout.write_handle_slot(block.buf, slot, None, 0)

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        src_slot = src_payload + _VECTOR_ARRAY
        dst_slot = dst_payload + _VECTOR_ARRAY
        target, _code = layout.read_handle_slot(src_block.buf, src_slot)
        if target is None:
            layout.write_handle_slot(dst_block.buf, dst_slot, None, 0)
            return
        copied = deep_copy_object(src_block, target, dst_block, memo)
        code = layout.read_object_header(dst_block.buf, copied)[1]
        dst_block.retain(copied)
        layout.write_handle_slot(dst_block.buf, dst_slot, copied, code)


class VectorFacade:
    """List-like view over a Vector<T> living on a block."""

    __slots__ = ("pc_block", "pc_offset", "descriptor")

    def __init__(self, block, offset, descriptor):
        self.pc_block = block
        self.pc_offset = offset
        self.descriptor = descriptor

    # -- internals -------------------------------------------------------------

    @property
    def _payload(self):
        return self.pc_offset + OBJECT_HEADER_SIZE

    def _array_offset(self):
        target, _code = layout.read_handle_slot(
            self.pc_block.buf, self._payload + _VECTOR_ARRAY
        )
        return target

    def _capacity(self):
        array_offset = self._array_offset()
        if array_offset is None:
            return 0
        return self.descriptor.array_type.capacity_of(
            self.pc_block, array_offset
        )

    def _element_slot(self, array_offset, index):
        return (
            array_offset
            + OBJECT_HEADER_SIZE
            + index * self.descriptor.elem.slot_size
        )

    def _grow(self, minimum):
        block = self.pc_block
        old_offset = self._array_offset()
        old_capacity = self._capacity()
        new_capacity = max(4, old_capacity * 2, minimum)
        array_type = self.descriptor.array_type
        new_offset = array_type.allocate_value(block, new_capacity)
        count = len(self)
        elem = self.descriptor.elem
        if old_offset is not None and count:
            if elem.is_object_type:
                # Transfer handle slots by re-encoding; the targets stay
                # put, so no refcount traffic is needed.
                for index in range(count):
                    src = self._element_slot(old_offset, index)
                    dst = self._element_slot(new_offset, index)
                    target, _code = layout.read_handle_slot(block.buf, src)
                    if target is None:
                        continue
                    code = layout.read_object_header(block.buf, target)[1]
                    layout.write_handle_slot(block.buf, dst, target, code)
                    layout.write_handle_slot(block.buf, src, None, 0)
            else:
                src = old_offset + OBJECT_HEADER_SIZE
                dst = new_offset + OBJECT_HEADER_SIZE
                nbytes = count * elem.slot_size
                block.buf[dst:dst + nbytes] = block.buf[src:src + nbytes]
        slot = self._payload + _VECTOR_ARRAY
        code = layout.read_object_header(block.buf, new_offset)[1]
        block.retain(new_offset)
        layout.write_handle_slot(block.buf, slot, new_offset, code)
        if old_offset is not None:
            # Old slots were nulled above, so destroying the old array will
            # not release the transferred targets.
            release_reference(block, old_offset)

    # -- sequence protocol -------------------------------------------------------

    def __len__(self):
        return _U64.unpack_from(self.pc_block.buf, self._payload + _VECTOR_COUNT)[0]

    def _set_count(self, count):
        _U64.pack_into(self.pc_block.buf, self._payload + _VECTOR_COUNT, count)

    def _check_index(self, index):
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("vector index %d out of range (%d)" % (index, count))
        return index

    def __getitem__(self, index):
        index = self._check_index(index)
        slot = self._element_slot(self._array_offset(), index)
        return self.descriptor.elem.read_slot(self.pc_block, slot)

    def __setitem__(self, index, value):
        index = self._check_index(index)
        slot = self._element_slot(self._array_offset(), index)
        self.descriptor.elem.write_slot(self.pc_block, slot, value)

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def reserve(self, capacity):
        """Ensure room for ``capacity`` elements without reallocation.

        Writers reserve their root vector's slots *before* filling a page
        with objects, so recording an object never needs an allocation on
        an already-full page.
        """
        if self._capacity() < capacity:
            self._grow(capacity)

    def append(self, value):
        """Append ``value``, growing the backing array if needed."""
        count = len(self)
        if count >= self._capacity():
            self._grow(count + 1)
        slot = self._element_slot(self._array_offset(), count)
        self.descriptor.elem.write_slot(self.pc_block, slot, value)
        self._set_count(count + 1)

    def extend(self, values):
        """Append every item of ``values``.

        Numeric numpy input takes a bulk path: the array's bytes are
        blitted straight into the page (the write-side counterpart of
        :meth:`as_numpy`), so filling a MatrixBlock never loops in Python.
        """
        elem = self.descriptor.elem
        dtype = numpy_dtype_for(elem)
        if dtype is not None and isinstance(values, np.ndarray):
            flat = np.ascontiguousarray(values, dtype=dtype).reshape(-1)
            count = len(self)
            if count + flat.size > self._capacity():
                self._grow(count + flat.size)
            array_offset = self._array_offset()
            start = (
                array_offset + OBJECT_HEADER_SIZE + count * elem.slot_size
            )
            nbytes = flat.size * elem.slot_size
            self.pc_block.buf[start:start + nbytes] = flat.tobytes()
            self._set_count(count + flat.size)
            return
        values = list(values)
        count = len(self)
        if count + len(values) > self._capacity():
            self._grow(count + len(values))
        array_offset = self._array_offset()
        for index, value in enumerate(values, start=count):
            elem.write_slot(
                self.pc_block, self._element_slot(array_offset, index), value
            )
        self._set_count(count + len(values))

    def to_list(self):
        """Decode the whole vector into a Python list."""
        return list(self)

    def as_numpy(self):
        """A zero-copy numpy view over the element bytes.

        This is the reproduction of ``Eigen::Map`` over raw page memory
        (Section 8.3.1): the returned array aliases the block's bytes, so
        writes through it mutate the page with no copying.
        """
        dtype = numpy_dtype_for(self.descriptor.elem)
        if dtype is None:
            raise ObjectModelError(
                "as_numpy requires a numeric element type, not %s"
                % self.descriptor.elem.name
            )
        count = len(self)
        array_offset = self._array_offset()
        if array_offset is None or count == 0:
            return np.empty(0, dtype=dtype)
        start = array_offset + OBJECT_HEADER_SIZE
        nbytes = count * self.descriptor.elem.slot_size
        view = memoryview(self.pc_block.buf)[start:start + nbytes]
        return np.frombuffer(view, dtype=dtype)

    def __repr__(self):
        preview = ", ".join(repr(v) for v in list(self)[:6])
        if len(self) > 6:
            preview += ", ..."
        return "Vector<%s>[%s]" % (self.descriptor.elem.name, preview)


# ---------------------------------------------------------------------------
# Map<K, V>
# ---------------------------------------------------------------------------

_MAP_COUNT = 0
_MAP_BUCKETS = 8
_ENTRY_FLAGS = struct.Struct("<BxxxxxxxQ")  # occupied flag + stored hash


class MapBucketsType(ObjectTypeDescriptor):
    """The bucket array backing a Map instantiation (internal)."""

    def __init__(self, key, val):
        self.key = as_descriptor(key)
        self.val = as_descriptor(val)
        self.name = "mapbuckets<%s,%s>" % (self.key.name, self.val.name)
        self.entry_size = align8(16 + self.key.slot_size + self.val.slot_size)
        self.key_offset = 16
        self.val_offset = 16 + self.key.slot_size

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self)
        return code

    def facade(self, block, offset):
        return Handle(block, offset, self.type_code(block))

    def dependents(self):
        return [self.key, self.val]

    def allocate_value(self, block, nbuckets):
        return block.allocate(
            nbuckets * self.entry_size, self.type_code(block)
        )

    def capacity_of(self, block, offset):
        payload_size = layout.read_object_header(block.buf, offset)[2]
        return payload_size // self.entry_size

    def _each_occupied(self, block, payload_offset, payload_size):
        entry = payload_offset
        end = payload_offset + payload_size - payload_size % self.entry_size
        while entry < end:
            occupied, stored_hash = _ENTRY_FLAGS.unpack_from(block.buf, entry)
            if occupied:
                yield entry, stored_hash
            entry += self.entry_size

    def destroy_payload(self, block, payload_offset, payload_size):
        for entry, _h in self._each_occupied(block, payload_offset, payload_size):
            for descriptor, delta in (
                (self.key, self.key_offset),
                (self.val, self.val_offset),
            ):
                if descriptor.is_object_type:
                    target, _code = layout.read_handle_slot(
                        block.buf, entry + delta
                    )
                    if target is not None:
                        release_reference(block, target)
        block.buf[payload_offset:payload_offset + payload_size] = bytes(
            payload_size
        )

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        for entry, _h in self._each_occupied(src_block, src_payload, payload_size):
            delta_from_start = entry - src_payload
            for descriptor, delta in (
                (self.key, self.key_offset),
                (self.val, self.val_offset),
            ):
                if not descriptor.is_object_type:
                    continue
                target, _code = layout.read_handle_slot(
                    src_block.buf, entry + delta
                )
                dst_slot = dst_payload + delta_from_start + delta
                if target is None:
                    layout.write_handle_slot(dst_block.buf, dst_slot, None, 0)
                    continue
                copied = deep_copy_object(src_block, target, dst_block, memo)
                code = layout.read_object_header(dst_block.buf, copied)[1]
                dst_block.retain(copied)
                layout.write_handle_slot(dst_block.buf, dst_slot, copied, code)


class MapType(ObjectTypeDescriptor):
    """Open-addressing hash map stored entirely on one block.

    PC implements aggregation with exactly this structure: per-thread Maps
    are built on output pages, shipped whole (zero serialization), and
    merged at the receiver (Section 3, Appendix D.2).
    """

    #: Grow the bucket array when count / capacity exceeds this.
    LOAD_FACTOR = 0.7

    def __init__(self, key, val):
        self.key = as_descriptor(key)
        self.val = as_descriptor(val)
        self.name = "map<%s,%s>" % (self.key.name, self.val.name)
        self.buckets_type = MapBucketsType(self.key, self.val)
        self.fixed_payload = align8(_MAP_BUCKETS + layout.HANDLE_SLOT_SIZE)

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self)
        return code

    def facade(self, block, offset):
        return MapFacade(block, offset, self)

    def dependents(self):
        return [self.key, self.val, self.buckets_type]

    def _slot_value(self, block, target_offset, type_code):
        return self.facade(block, target_offset)

    def allocate_value(self, block, value):
        offset = block.allocate(self.fixed_payload, self.type_code(block))
        if value:
            view = self.facade(block, offset)
            for key, item in value.items() if isinstance(value, dict) else value:
                view.put(key, item)
        return offset

    def destroy_payload(self, block, payload_offset, payload_size):
        slot = payload_offset + _MAP_BUCKETS
        target, _code = layout.read_handle_slot(block.buf, slot)
        if target is not None:
            release_reference(block, target)
            layout.write_handle_slot(block.buf, slot, None, 0)

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        src_slot = src_payload + _MAP_BUCKETS
        dst_slot = dst_payload + _MAP_BUCKETS
        target, _code = layout.read_handle_slot(src_block.buf, src_slot)
        if target is None:
            layout.write_handle_slot(dst_block.buf, dst_slot, None, 0)
            return
        copied = deep_copy_object(src_block, target, dst_block, memo)
        code = layout.read_object_header(dst_block.buf, copied)[1]
        dst_block.retain(copied)
        layout.write_handle_slot(dst_block.buf, dst_slot, copied, code)


class MapFacade:
    """Dict-like view over a Map<K,V> living on a block."""

    __slots__ = ("pc_block", "pc_offset", "descriptor")

    def __init__(self, block, offset, descriptor):
        self.pc_block = block
        self.pc_offset = offset
        self.descriptor = descriptor

    @property
    def _payload(self):
        return self.pc_offset + OBJECT_HEADER_SIZE

    def _buckets_offset(self):
        target, _code = layout.read_handle_slot(
            self.pc_block.buf, self._payload + _MAP_BUCKETS
        )
        return target

    def __len__(self):
        return _U64.unpack_from(self.pc_block.buf, self._payload + _MAP_COUNT)[0]

    def _set_count(self, count):
        _U64.pack_into(self.pc_block.buf, self._payload + _MAP_COUNT, count)

    def _capacity(self):
        buckets = self._buckets_offset()
        if buckets is None:
            return 0
        return self.descriptor.buckets_type.capacity_of(self.pc_block, buckets)

    def _entry_offset(self, buckets_offset, index):
        return (
            buckets_offset
            + OBJECT_HEADER_SIZE
            + index * self.descriptor.buckets_type.entry_size
        )

    def _find(self, key, key_hash):
        """Locate ``key``; returns ``(entry_offset, found)``.

        When not found, ``entry_offset`` is the insertion slot (or None if
        there are no buckets yet).
        """
        buckets_offset = self._buckets_offset()
        if buckets_offset is None:
            return None, False
        capacity = self._capacity()
        buckets = self.descriptor.buckets_type
        index = key_hash % capacity
        for _probe in range(capacity):
            entry = self._entry_offset(buckets_offset, index)
            occupied, stored_hash = _ENTRY_FLAGS.unpack_from(
                self.pc_block.buf, entry
            )
            if not occupied:
                return entry, False
            if stored_hash == key_hash:
                stored_key = buckets.key.read_slot(
                    self.pc_block, entry + buckets.key_offset
                )
                if _keys_equal(stored_key, key):
                    return entry, True
            index = (index + 1) % capacity
        return None, False

    def _rehash(self, minimum_buckets):
        block = self.pc_block
        buckets_type = self.descriptor.buckets_type
        old_offset = self._buckets_offset()
        old_capacity = self._capacity()
        new_capacity = max(8, old_capacity * 2, minimum_buckets)
        new_offset = buckets_type.allocate_value(block, new_capacity)
        if old_offset is not None:
            payload_size = layout.read_object_header(block.buf, old_offset)[2]
            payload = old_offset + OBJECT_HEADER_SIZE
            for entry, stored_hash in buckets_type._each_occupied(
                block, payload, payload_size
            ):
                index = stored_hash % new_capacity
                while True:
                    new_entry = self._entry_offset(new_offset, index)
                    occupied, _h = _ENTRY_FLAGS.unpack_from(
                        block.buf, new_entry
                    )
                    if not occupied:
                        break
                    index = (index + 1) % new_capacity
                _ENTRY_FLAGS.pack_into(block.buf, new_entry, 1, stored_hash)
                self._transfer_slot(
                    buckets_type.key, entry + buckets_type.key_offset,
                    new_entry + buckets_type.key_offset,
                )
                self._transfer_slot(
                    buckets_type.val, entry + buckets_type.val_offset,
                    new_entry + buckets_type.val_offset,
                )
                _ENTRY_FLAGS.pack_into(block.buf, entry, 0, 0)
        slot = self._payload + _MAP_BUCKETS
        code = layout.read_object_header(block.buf, new_offset)[1]
        block.retain(new_offset)
        layout.write_handle_slot(block.buf, slot, new_offset, code)
        if old_offset is not None:
            release_reference(block, old_offset)

    def _transfer_slot(self, descriptor, src_slot, dst_slot):
        """Move one entry slot without refcount traffic (same block)."""
        block = self.pc_block
        if descriptor.is_object_type:
            target, _code = layout.read_handle_slot(block.buf, src_slot)
            if target is None:
                layout.write_handle_slot(block.buf, dst_slot, None, 0)
            else:
                code = layout.read_object_header(block.buf, target)[1]
                layout.write_handle_slot(block.buf, dst_slot, target, code)
                layout.write_handle_slot(block.buf, src_slot, None, 0)
        else:
            size = descriptor.slot_size
            block.buf[dst_slot:dst_slot + size] = block.buf[
                src_slot:src_slot + size
            ]

    # -- dict protocol -----------------------------------------------------------

    def put(self, key, value):
        """Insert or overwrite ``key`` with ``value``."""
        count = len(self)
        capacity = self._capacity()
        if capacity == 0 or (count + 1) > capacity * self.descriptor.LOAD_FACTOR:
            self._rehash(count + 1)
        key_hash = stable_hash(key)
        entry, found = self._find(key, key_hash)
        buckets = self.descriptor.buckets_type
        if not found:
            # Write the slots before raising the occupied flag: if an
            # allocation faults mid-insert (page full), the entry stays
            # unoccupied and the map remains consistent.
            buckets.key.write_slot(
                self.pc_block, entry + buckets.key_offset, key
            )
            buckets.val.write_slot(
                self.pc_block, entry + buckets.val_offset, value
            )
            _ENTRY_FLAGS.pack_into(self.pc_block.buf, entry, 1, key_hash)
            self._set_count(count + 1)
        else:
            buckets.val.write_slot(
                self.pc_block, entry + buckets.val_offset, value
            )

    def get(self, key, default=None):
        """Return the value stored for ``key`` or ``default``."""
        entry, found = self._find(key, stable_hash(key))
        if not found:
            return default
        buckets = self.descriptor.buckets_type
        return buckets.val.read_slot(self.pc_block, entry + buckets.val_offset)

    def __contains__(self, key):
        return self._find(key, stable_hash(key))[1]

    def __getitem__(self, key):
        entry, found = self._find(key, stable_hash(key))
        if not found:
            raise KeyError(key)
        buckets = self.descriptor.buckets_type
        return buckets.val.read_slot(self.pc_block, entry + buckets.val_offset)

    def __setitem__(self, key, value):
        self.put(key, value)

    def items(self):
        """Iterate ``(key, value)`` pairs in bucket order."""
        buckets_offset = self._buckets_offset()
        if buckets_offset is None:
            return
        buckets = self.descriptor.buckets_type
        payload_size = layout.read_object_header(
            self.pc_block.buf, buckets_offset
        )[2]
        payload = buckets_offset + OBJECT_HEADER_SIZE
        for entry, _h in buckets._each_occupied(
            self.pc_block, payload, payload_size
        ):
            key = buckets.key.read_slot(self.pc_block, entry + buckets.key_offset)
            value = buckets.val.read_slot(
                self.pc_block, entry + buckets.val_offset
            )
            yield key, value

    def keys(self):
        """Iterate keys in bucket order."""
        for key, _value in self.items():
            yield key

    def values(self):
        """Iterate values in bucket order."""
        for _key, value in self.items():
            yield value

    def to_dict(self):
        """Decode the whole map into a Python dict (values stay facades)."""
        return dict(self.items())

    def __repr__(self):
        return "Map<%s,%s>(%d entries)" % (
            self.descriptor.key.name,
            self.descriptor.val.name,
            len(self),
        )


def _keys_equal(stored, probe):
    if isinstance(stored, float) or isinstance(probe, float):
        return float(stored) == float(probe)
    return stored == probe


# ---------------------------------------------------------------------------
# AnyObject: Handle<Object> slots
# ---------------------------------------------------------------------------

class AnyObjectType(ObjectTypeDescriptor):
    """Slot type for handles to objects of *any* PC type.

    This is ``Handle<Object>`` in the paper: a container like the
    per-page root ``Vector<Handle<Object>>`` stores handles whose concrete
    type is only discovered at dereference time via the object header's
    type code (dynamic dispatch, Section 6.3).
    """

    name = "object"

    #: Fixed well-known code (see StringType.FIXED_CODE).
    FIXED_CODE = 2

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self, code=self.FIXED_CODE)
        return code

    def facade(self, block, offset):
        code = layout.read_object_header(block.buf, offset)[1]
        return Handle(block, offset, code)

    def allocate_value(self, block, value):
        raise ObjectModelError(
            "cannot allocate a value of unknown type; pass a Handle"
        )


AnyObject = AnyObjectType()
