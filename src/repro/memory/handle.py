"""Handles: PC's pointer-like objects.

A :class:`Handle` is the Python-side proxy for the paper's ``Handle<T>``:
it names an object by *(block, offset)* rather than by machine address, so
it stays meaningful when the underlying page travels between simulated
processes.  The on-page representation of a handle (inside another object's
field or a container element) is the 12-byte relative-offset slot encoded
by :mod:`repro.memory.layout`; this class is only the transient host-
language view of one.

Root handles returned by :func:`repro.memory.objects.make_object` own one
reference count on their target (when the target's block is managed and
the object is reference counted).  Call :meth:`Handle.release` to drop it —
the Python-side analogue of ``myVec = nullptr`` in the paper's example.
"""

from __future__ import annotations

from repro.errors import DanglingHandleError, NullHandleError
from repro.memory import layout
from repro.memory.types import registry_of


class Handle:
    """A pointer-like reference to a PC object on an allocation block."""

    __slots__ = ("block", "offset", "type_code", "_owns_ref", "generation")

    def __init__(self, block, offset, type_code, owns_ref=False):
        self.block = block
        self.offset = offset
        self.type_code = type_code
        self._owns_ref = owns_ref
        # PCSan: under the sanitizer a handle remembers which generation
        # of its offset it was created for, so deref can tell a live
        # object from a reallocation of the same slot.
        shadow = getattr(block, "_san", None)
        if shadow is not None:
            self.generation = shadow.generation_of(offset)
        else:
            self.generation = None

    # -- null handling -------------------------------------------------------

    @classmethod
    def null(cls):
        """The null handle."""
        return cls(None, None, 0)

    @property
    def is_null(self):
        """True for the null handle."""
        return self.block is None

    def __bool__(self):
        return not self.is_null

    # -- dereference ----------------------------------------------------------

    def deref(self):
        """Return the typed facade for the referenced object.

        Dispatch happens on the type code stored in the *object header*
        (not the handle), so a ``Handle`` declared at a supertype still
        dereferences to the concrete subclass — the paper's dynamic
        dispatch via type codes (Section 6.3).  The registry lookup is the
        simulated vtable-pointer fix-up; a miss triggers the catalog fetch.
        """
        if self.is_null:
            raise NullHandleError("dereference of null handle")
        refcount, code, _size = layout.read_object_header(
            self.block.buf, self.offset
        )
        shadow = getattr(self.block, "_san", None)
        if shadow is not None:
            shadow.on_deref(self.offset, self.generation, refcount)
        if refcount == layout.REFCOUNT_FREED:
            raise DanglingHandleError(
                "handle to freed object at offset %d" % self.offset
            )
        descriptor = registry_of(self.block).lookup(code)
        return descriptor.facade(self.block, self.offset)

    def __getattr__(self, name):
        # Delegation sugar: ``handle.salary`` reads the field through the
        # facade, matching the ergonomics of C++'s ``handle->salary``.
        # Dunder probes (copy/pickle looking up ``__deepcopy__``,
        # ``__getstate__``...) must fail with AttributeError, never with
        # Null/DanglingHandleError — the protocols treat AttributeError
        # as "not supported" and anything else as a real failure.
        if name in Handle.__slots__ or (
            name.startswith("__") and name.endswith("__")
        ):
            raise AttributeError(name)
        return getattr(self.deref(), name)

    # -- reference counting ----------------------------------------------------

    def copy(self):
        """A new root handle to the same object (takes its own reference)."""
        if self.is_null:
            return Handle.null()
        self.block.retain(self.offset)
        return Handle(self.block, self.offset, self.type_code, owns_ref=True)

    def release(self):
        """Drop this handle's reference; destroys the target at zero.

        Safe to call on null or non-owning handles (no-op).  After release
        the handle is fully null on every path: block, offset, type code,
        and ownership are all cleared.
        """
        if self.is_null or not self._owns_ref:
            self.block = None
            self.offset = None
            self.type_code = 0
            self._owns_ref = False
            return
        from repro.memory.objects import release_reference

        release_reference(self.block, self.offset)
        self._owns_ref = False
        self.block = None
        self.offset = None
        self.type_code = 0

    # -- misc -------------------------------------------------------------------

    def same_object(self, other):
        """True when both handles reference the identical on-page object."""
        if self.is_null or other.is_null:
            return self.is_null and other.is_null
        return self.block is other.block and self.offset == other.offset

    def header(self):
        """``(refcount, type_code, payload_size)`` of the target object."""
        if self.is_null:
            raise NullHandleError("header of null handle")
        return layout.read_object_header(self.block.buf, self.offset)

    def __repr__(self):
        if self.is_null:
            return "<Handle null>"
        return "<Handle block=%d offset=%d code=%d>" % (
            self.block.block_id,
            self.offset,
            self.type_code,
        )
