"""The PCType descriptor protocol and primitive type descriptors.

A *type descriptor* knows how values of one type are stored inside an
allocation block.  Two kinds exist:

* **inline types** (primitives): the value's bytes live directly in the
  field or element slot;
* **object types** (strings, containers, ``PCObject`` subclasses): the slot
  holds a 12-byte embedded handle and the value itself is a separately
  allocated object on the same block.

The protocol is what PC's C++ binding achieves with template
metaprogramming: every container instantiation (``Vector[Float64]``,
``Map[PCString, Int32]`` ...) is its own registered descriptor with its own
type code, so fully "compiled" element accessors exist per instantiation.
"""

from __future__ import annotations

import struct

from repro.errors import TypeRegistrationError
from repro.memory.typecodes import default_registry, simple_code


def registry_of(block):
    """The registry that governs type codes for ``block``."""
    return block.registry if block.registry is not None else default_registry()


class PCType:
    """Base descriptor.  Subclasses fill in the slot codec.

    Attributes
    ----------
    name:
        Registry name; container instantiations embed their parameters
        (``Vector<float64>``), mirroring C++ template instantiation names.
    slot_size:
        Bytes this type occupies inline as a field or container element.
    is_object_type:
        True when values are page-allocated objects referenced by handles.
    fixed_payload:
        Payload size for object types whose payload never varies (these are
        the only objects eligible for the recycling allocator policy);
        ``None`` for variable-length types.
    """

    name = "?"
    slot_size = 0
    is_object_type = False
    fixed_payload = None

    def type_code(self, block_or_registry):
        """The type code for this descriptor under the relevant registry."""
        raise NotImplementedError

    def read_slot(self, block, offset):
        """Decode the value stored in the slot at ``offset``."""
        raise NotImplementedError

    def write_slot(self, block, offset, value):
        """Encode ``value`` into the slot at ``offset``."""
        raise NotImplementedError

    def default_value(self):
        """The value a zero-initialized slot decodes to."""
        raise NotImplementedError

    def dependents(self):
        """Descriptors this type's on-page layout refers to.

        Used by the catalog to register a type's whole closure: a real
        ``.so`` carries the template instantiations a class uses, so
        registering ``Customer`` must also make ``vector<order>`` et al.
        resolvable cluster-wide.
        """
        return []

    def __repr__(self):
        return "<pc-type %s>" % self.name


class PrimitiveType(PCType):
    """A fixed-width value stored inline (int, float, bool...).

    Primitives are the paper's "simple types": no virtual functions, a
    ``memmove`` suffices, and their type code encodes their size.
    """

    def __init__(self, name, fmt, default=0, caster=None):
        self.name = name
        self._codec = struct.Struct("<" + fmt)
        self.slot_size = self._codec.size
        self._default = default
        self._caster = caster

    def type_code(self, block_or_registry):
        return simple_code(self.slot_size)

    def read_slot(self, block, offset):
        return self._codec.unpack_from(block.buf, offset)[0]

    def write_slot(self, block, offset, value):
        if self._caster is not None:
            value = self._caster(value)
        self._codec.pack_into(block.buf, offset, value)

    def default_value(self):
        return self._default

    # ``struct.Struct`` objects refuse to pickle, but primitive
    # descriptors ride inside every registry shipped to a back-end
    # process (they become container element descriptors the first time
    # a Vector<float64> et al. is registered mid-job).  Swap the codec
    # for its format string in transit and rebuild it on arrival.

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_codec"] = self._codec.format
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._codec = struct.Struct(state["_codec"])


class BoolType(PrimitiveType):
    """One-byte boolean."""

    def __init__(self):
        super().__init__("bool", "B", default=False)

    def read_slot(self, block, offset):
        return bool(super().read_slot(block, offset))

    def write_slot(self, block, offset, value):
        super().write_slot(block, offset, 1 if value else 0)


Int8 = PrimitiveType("int8", "b", caster=int)
Int16 = PrimitiveType("int16", "h", caster=int)
Int32 = PrimitiveType("int32", "i", caster=int)
Int64 = PrimitiveType("int64", "q", caster=int)
UInt32 = PrimitiveType("uint32", "I", caster=int)
UInt64 = PrimitiveType("uint64", "Q", caster=int)
Float32 = PrimitiveType("float32", "f", default=0.0, caster=float)
Float64 = PrimitiveType("float64", "d", default=0.0, caster=float)
Bool = BoolType()

_PRIMITIVES_BY_NAME = {
    t.name: t
    for t in (Int8, Int16, Int32, Int64, UInt32, UInt64, Float32, Float64, Bool)
}


def primitive_by_name(name):
    """Look up a primitive descriptor by its registry name."""
    try:
        return _PRIMITIVES_BY_NAME[name]
    except KeyError as missing:
        raise TypeRegistrationError(
            "unknown primitive type %r" % name
        ) from missing


#: numpy dtype strings for primitives, used for the zero-copy
#: ``numpy.frombuffer`` views that play the role of ``Eigen::Map`` over raw
#: page bytes (Section 8.3.1).
NUMPY_DTYPES = {
    "int8": "i1",
    "int16": "i2",
    "int32": "i4",
    "int64": "i8",
    "uint32": "u4",
    "uint64": "u8",
    "float32": "f4",
    "float64": "f8",
}


def numpy_dtype_for(descriptor):
    """The numpy dtype string matching ``descriptor``, or None."""
    return NUMPY_DTYPES.get(descriptor.name)
