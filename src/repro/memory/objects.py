"""PC objects: composite types, allocation, destruction, deep copy.

This module hosts the generic object-model machinery:

* :class:`PCObject` — the base class every complex user type descends from,
  with declarative field layout (the Python stand-in for the paper's
  requirement that complex types descend from PC's ``Object``);
* the thread-local *active allocation block* and :func:`make_object`
  (Section 6.4: each thread has exactly one active block receiving all
  allocations);
* reference-count release, recursive destruction, and the recursive
  deep-copy that enforces the paper's no-dangling-handles invariant: an
  embedded handle may never point outside its own block, so assigning a
  foreign handle into a slot deep-copies the target into the slot's block.
"""

from __future__ import annotations

import threading

from repro.errors import (
    NoActiveBlockError,
    TypeRegistrationError,
)
from repro.memory import layout
from repro.memory.block import (
    FULL_REF_COUNT,
    LIGHTWEIGHT_REUSE,
    NO_REF_COUNT,
    UNIQUE_OWNERSHIP,
    AllocationBlock,
)
from repro.memory.handle import Handle
from repro.memory.layout import (
    HANDLE_SLOT_SIZE,
    OBJECT_HEADER_SIZE,
    REFCOUNT_UNCOUNTED,
    REFCOUNT_UNIQUE,
)
from repro.memory.types import PCType, registry_of

_POLICY_INITIAL_REFCOUNT = {
    FULL_REF_COUNT: 0,
    NO_REF_COUNT: REFCOUNT_UNCOUNTED,
    UNIQUE_OWNERSHIP: REFCOUNT_UNIQUE,
}


# ---------------------------------------------------------------------------
# Generic reference-count / destroy / deep-copy machinery
# ---------------------------------------------------------------------------

def release_reference(block, offset):
    """Drop one reference to the object at ``offset``; destroy at zero."""
    if block.release(offset):
        destroy_object(block, offset)


def destroy_object(block, offset):
    """Destroy the object at ``offset``: release children, free storage."""
    _refcount, code, _size = layout.read_object_header(block.buf, offset)
    descriptor = registry_of(block).lookup(code)
    descriptor.destroy_payload(block, offset + OBJECT_HEADER_SIZE,
                               layout.read_object_header(block.buf, offset)[2])
    recycle = code if descriptor.fixed_payload is not None else None
    block.free_object(offset, recycle_type_code=recycle)


def deep_copy_object(src_block, src_offset, dst_block, memo=None):
    """Recursively copy the object at ``src_offset`` into ``dst_block``.

    Returns the new object's offset (refcount 0 — the caller stores a
    reference and retains).  ``memo`` preserves sharing and breaks cycles:
    two handles to one source object become two handles to one copy.
    """
    if memo is None:
        memo = {}
    key = (id(src_block), src_offset)
    if key in memo:
        return memo[key]
    refcount, code, payload_size = layout.read_object_header(
        src_block.buf, src_offset
    )
    initial = 0
    if refcount in (REFCOUNT_UNCOUNTED, REFCOUNT_UNIQUE):
        initial = refcount
    new_offset = dst_block.allocate(payload_size, code, refcount=initial)
    memo[key] = new_offset
    src_start = src_offset + OBJECT_HEADER_SIZE
    dst_start = new_offset + OBJECT_HEADER_SIZE
    dst_block.buf[dst_start:dst_start + payload_size] = (
        src_block.buf[src_start:src_start + payload_size]
    )
    descriptor = registry_of(src_block).lookup(code)
    descriptor.rewrite_handles(
        src_block, src_start, dst_block, dst_start, payload_size, memo
    )
    return new_offset


class ObjectTypeDescriptor(PCType):
    """Shared slot semantics for all object (handle-referenced) types.

    Assigning into a slot applies the paper's cross-block rule: a handle
    physically located on block *B* may only reference an object on *B*;
    foreign targets are deep-copied in (Section 6.4).
    """

    is_object_type = True
    slot_size = HANDLE_SLOT_SIZE

    # -- to be provided by concrete descriptors ------------------------------

    def facade(self, block, offset):
        """The typed view over the object at ``offset``."""
        raise NotImplementedError

    def allocate_value(self, block, value):
        """Allocate ``value`` (a host-language value) as a new object."""
        raise NotImplementedError

    def destroy_payload(self, block, payload_offset, payload_size):
        """Release embedded handles before the object's storage is freed."""

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        """Fix embedded handle slots after a raw payload copy."""

    # -- slot codec -----------------------------------------------------------

    def _slot_value(self, block, target_offset, type_code):
        return Handle(block, target_offset, type_code)

    def read_slot(self, block, offset):
        target, code = layout.read_handle_slot(block.buf, offset)
        if target is None:
            return None
        return self._slot_value(block, target, code)

    def write_slot(self, block, offset, value):
        new_target = self._resolve_target(block, value)
        old_target, _old_code = layout.read_handle_slot(block.buf, offset)
        if new_target is None:
            layout.write_handle_slot(block.buf, offset, None, 0)
        else:
            code = layout.read_object_header(block.buf, new_target)[1]
            block.retain(new_target)
            layout.write_handle_slot(block.buf, offset, new_target, code)
        if old_target is not None:
            release_reference(block, old_target)

    def _resolve_target(self, block, value):
        """Map ``value`` to an offset on ``block``, deep-copying if foreign."""
        if value is None:
            return None
        ref = _as_reference(value)
        if ref is not None:
            src_block, src_offset = ref
            if src_block is block:
                return src_offset
            return deep_copy_object(src_block, src_offset, block)
        return self.allocate_value(block, value)

    def default_value(self):
        return None


def _as_reference(value):
    """Extract ``(block, offset)`` from a Handle or facade, else None."""
    if isinstance(value, Handle):
        if value.is_null:
            return None
        return value.block, value.offset
    block = getattr(value, "pc_block", None)
    offset = getattr(value, "pc_offset", None)
    if block is not None and offset is not None:
        return block, offset
    return None


# ---------------------------------------------------------------------------
# Composite (user) types
# ---------------------------------------------------------------------------

class _FieldAccessor:
    """Python descriptor translating attribute access into slot codecs."""

    __slots__ = ("name", "pc_type", "byte_offset")

    def __init__(self, name, pc_type, byte_offset):
        self.name = name
        self.pc_type = pc_type
        self.byte_offset = byte_offset

    def _slot(self, instance):
        return instance.pc_offset + OBJECT_HEADER_SIZE + self.byte_offset

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return self.pc_type.read_slot(instance.pc_block, self._slot(instance))

    def __set__(self, instance, value):
        self.pc_type.write_slot(instance.pc_block, self._slot(instance), value)


class ClassDescriptor(ObjectTypeDescriptor):
    """The PCType descriptor for one PCObject subclass."""

    def __init__(self, cls):
        self.cls = cls
        self.name = cls.__name__
        self.fixed_payload = cls.pc_payload_size

    def type_code(self, block_or_registry):
        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self)
        return code

    def facade(self, block, offset):
        return self.cls._from_location(block, offset)

    def dependents(self):
        return [a.pc_type for a in self.cls.pc_accessors]

    def allocate_value(self, block, value):
        if isinstance(value, dict):
            offset = allocate_composite(block, self.cls)
            view = self.facade(block, offset)
            for key, item in value.items():
                setattr(view, key, item)
            return offset
        raise TypeRegistrationError(
            "cannot coerce %r into a %s" % (value, self.name)
        )

    def destroy_payload(self, block, payload_offset, payload_size):
        for accessor in self.cls.pc_accessors:
            if accessor.pc_type.is_object_type:
                slot = payload_offset + accessor.byte_offset
                target, _code = layout.read_handle_slot(block.buf, slot)
                if target is not None:
                    release_reference(block, target)

    def rewrite_handles(self, src_block, src_payload, dst_block, dst_payload,
                        payload_size, memo):
        for accessor in self.cls.pc_accessors:
            if not accessor.pc_type.is_object_type:
                continue
            src_slot = src_payload + accessor.byte_offset
            dst_slot = dst_payload + accessor.byte_offset
            target, _code = layout.read_handle_slot(src_block.buf, src_slot)
            if target is None:
                layout.write_handle_slot(dst_block.buf, dst_slot, None, 0)
                continue
            copied = deep_copy_object(src_block, target, dst_block, memo)
            code = layout.read_object_header(dst_block.buf, copied)[1]
            dst_block.retain(copied)
            layout.write_handle_slot(dst_block.buf, dst_slot, copied, code)


def _registry_from(block_or_registry):
    from repro.memory.typecodes import TypeRegistry, default_registry

    if block_or_registry is None:
        return default_registry()
    if isinstance(block_or_registry, TypeRegistry):
        return block_or_registry
    return registry_of(block_or_registry)


class PCObjectMeta(type):
    """Collects ``fields`` declarations and computes the byte layout."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        inherited = []
        for base in bases:
            inherited.extend(getattr(base, "pc_accessors", []))
        own_specs = namespace.get("fields", [])
        accessors = list(inherited)
        offset = accessors[-1].byte_offset + accessors[-1].pc_type.slot_size \
            if accessors else 0
        seen = {a.name for a in accessors}
        for spec in own_specs:
            field_name, field_type = spec
            if field_name in seen:
                raise TypeRegistrationError(
                    "duplicate field %r in %s" % (field_name, name)
                )
            descriptor = as_descriptor(field_type)
            accessor = _FieldAccessor(field_name, descriptor, offset)
            offset += descriptor.slot_size
            accessors.append(accessor)
            setattr(cls, field_name, accessor)
            seen.add(field_name)
        # Re-install inherited accessors so subclasses resolve them without
        # walking the MRO into a stale parent layout.
        for accessor in inherited:
            setattr(cls, accessor.name, accessor)
        cls.pc_accessors = accessors
        cls.pc_payload_size = layout.align8(offset) if offset else 0
        cls.pc_descriptor = ClassDescriptor(cls)
        return cls


class PCObject(metaclass=PCObjectMeta):
    """Base class for complex PC types.

    Subclasses declare their layout with a ``fields`` list::

        class DataPoint(PCObject):
            fields = [("dims", Int32), ("data", VectorType(Float64))]

    Instances are *facades*: lightweight views over bytes living on an
    allocation block.  They are created by :func:`make_object` (allocation)
    or by dereferencing a handle, never detached from a block.
    """

    fields = []

    __slots__ = ("pc_block", "pc_offset")

    def __init__(self):
        raise TypeError(
            "PC objects are created with make_object(), not instantiated"
        )

    @classmethod
    def _from_location(cls, block, offset):
        instance = object.__new__(cls)
        instance.pc_block = block
        instance.pc_offset = offset
        return instance

    @classmethod
    def type_code(cls, block_or_registry=None):
        """This class' type code under the given registry."""
        return cls.pc_descriptor.type_code(block_or_registry)

    def handle(self):
        """A non-owning handle to this object."""
        code = layout.read_object_header(self.pc_block.buf, self.pc_offset)[1]
        return Handle(self.pc_block, self.pc_offset, code)

    def field_names(self):
        """Names of this object's declared fields, in layout order."""
        return [a.name for a in self.pc_accessors]

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (a.name, getattr(self, a.name))
            for a in self.pc_accessors[:4]
        )
        suffix = ", ..." if len(self.pc_accessors) > 4 else ""
        return "%s(%s%s)" % (type(self).__name__, parts, suffix)


def as_descriptor(field_type):
    """Normalize a field spec entry into a PCType descriptor."""
    if isinstance(field_type, PCType):
        return field_type
    if isinstance(field_type, type) and issubclass(field_type, PCObject):
        return field_type.pc_descriptor
    raise TypeRegistrationError("invalid field type %r" % (field_type,))


def allocate_composite(block, cls):
    """Allocate a zeroed instance of ``cls`` on ``block``; returns offset."""
    code = cls.pc_descriptor.type_code(block)
    return block.allocate(cls.pc_payload_size, code)


# ---------------------------------------------------------------------------
# The active allocation block (thread local)
# ---------------------------------------------------------------------------

_active = threading.local()


def _stack():
    if not hasattr(_active, "stack"):
        _active.stack = []
    return _active.stack


def current_allocation_block():
    """The thread's active allocation block."""
    stack = _stack()
    if not stack:
        raise NoActiveBlockError(
            "no active allocation block; call make_allocation_block() first"
        )
    return stack[-1]


def make_allocation_block(size, policy=LIGHTWEIGHT_REUSE, registry=None,
                          managed=True, on_empty=None):
    """Create a block and make it the thread's active allocation block.

    This is the paper's ``makeObjectAllocatorBlock``: the previously active
    block (if any) becomes inactive-managed and keeps living as long as it
    holds reachable objects.
    """
    block = AllocationBlock(
        size, policy=policy, registry=registry, managed=managed,
        on_empty=on_empty,
    )
    _stack().append(block)
    return block


class use_allocation_block:
    """Context manager installing ``block`` as the active allocation block."""

    def __init__(self, block):
        self.block = block

    def __enter__(self):
        _stack().append(self.block)
        return self.block

    def __exit__(self, exc_type, exc, tb):
        _stack().pop()
        return False


def pop_allocation_block():
    """Remove the current active block from the stack (it becomes inactive)."""
    stack = _stack()
    if stack:
        stack.pop()


def make_object(type_or_class, init=None, policy=FULL_REF_COUNT, **fields):
    """Allocate a new PC object on the active block; returns an owning Handle.

    ``type_or_class`` is either a :class:`PCObject` subclass (optionally
    with ``**fields`` initializers) or a container/string descriptor with a
    single ``value`` to encode.  ``policy`` selects the per-object
    allocation policy of Appendix B.
    """
    block = current_allocation_block()
    return make_object_on(block, type_or_class, init, policy=policy, **fields)


def make_object_on(block, type_or_class, init=None, policy=FULL_REF_COUNT,
                   **fields):
    """Like :func:`make_object` but targeting an explicit block."""
    initial = _POLICY_INITIAL_REFCOUNT[policy]
    if isinstance(type_or_class, type) and issubclass(type_or_class, PCObject):
        cls = type_or_class
        code = cls.pc_descriptor.type_code(block)
        offset = block.allocate(cls.pc_payload_size, code, refcount=initial)
        view = cls._from_location(block, offset)
        if init is not None:
            if not isinstance(init, dict):
                raise TypeRegistrationError(
                    "positional initializer for a composite must be a dict"
                )
            fields = {**init, **fields}
        for name, item in fields.items():
            setattr(view, name, item)
    else:
        descriptor = as_descriptor(type_or_class)
        if fields:
            raise TypeRegistrationError(
                "field initializers are only valid for composite types"
            )
        offset = descriptor.allocate_value(block, init)
        if initial != 0:
            layout.write_refcount(block.buf, offset, initial)
            if block.managed and initial < 0:
                # allocate() counted it as refcounted; undo.
                layout.write_active_objects(
                    block.buf, layout.read_active_objects(block.buf) - 1
                )
        code = layout.read_object_header(block.buf, offset)[1]
        if policy == FULL_REF_COUNT:
            block.retain(offset)
        owns = policy in (FULL_REF_COUNT, UNIQUE_OWNERSHIP)
        return Handle(block, offset, code, owns_ref=owns)
    if policy == FULL_REF_COUNT:
        block.retain(offset)
    owns = policy in (FULL_REF_COUNT, UNIQUE_OWNERSHIP)
    return Handle(block, offset, code, owns_ref=owns)
