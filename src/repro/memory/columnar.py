"""Columnar (struct-of-arrays) page layout for fixed-stride types.

A :class:`ColumnarPage` stores a batch of rows column-major inside an
ordinary :class:`~repro.memory.block.AllocationBlock`: one raw allocation
per column, plus a *columnar root* object whose payload records the row
count and each column's name, dtype, and payload offset.  Because the root
travels in the block's root-handle slot like any other page root, the
page keeps every zero-cost-movement property of the row layout —
``to_bytes``/``from_bytes`` shipping, CRC checks, buffer-pool spill, and
zero-copy :meth:`~repro.memory.block.AllocationBlock.from_buffer`
attachment from a process-backed worker's shared-memory mapping.

Column data is exposed as ``numpy.frombuffer`` views that alias the page
bytes — the read side of the paper's ``Eigen::Map`` trick (Section 8.3.1),
applied to whole sets instead of single matrix objects.  The views are
marked read-only: sealed pages are immutable.

Two small row-compatible facades bridge back to the object path:
:class:`ColumnarRows` (a sliceable batch of rows, consumed whole by the
vectorized kernels in :mod:`repro.engine.kernels`) and :class:`RowView`
(a per-row facade with schema-named attributes, used wherever an operator
falls back to per-row execution).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ObjectModelError
from repro.memory.block import AllocationBlock
from repro.memory.layout import (
    BLOCK_HEADER_SIZE,
    OBJECT_HEADER_SIZE,
    REFCOUNT_UNCOUNTED,
    align8,
)
from repro.memory.objects import ObjectTypeDescriptor
from repro.memory.typecodes import simple_code
from repro.memory.types import NUMPY_DTYPES

#: root payload header: column count, reserved, row count
_ROOT_HEADER = struct.Struct("<IIQ")
#: per-column record: payload offset, dtype string, name length (+ name)
_COL_RECORD = struct.Struct("<Q8sH")


class ColumnarRootType(ObjectTypeDescriptor):
    """The root object of a columnar page: its self-describing directory."""

    name = "columnar_root"

    #: Fixed well-known code (see StringType.FIXED_CODE): a shipped page's
    #: root slot must identify the layout with no registration handshake.
    FIXED_CODE = 3

    def type_code(self, block_or_registry):
        from repro.memory.objects import _registry_from

        registry = _registry_from(block_or_registry)
        code = registry.code_for_name(self.name)
        if code is None:
            code = registry.register(self.name, self, code=self.FIXED_CODE)
        return code

    def facade(self, block, offset):
        return ColumnarPage._parse(block, offset)

    def allocate_value(self, block, value):
        raise ObjectModelError(
            "columnar roots are built by ColumnarPage.build(), "
            "not allocated directly"
        )


ColumnarRoot = ColumnarRootType()


class ColumnarPage:
    """A sealed struct-of-arrays page; columns are zero-copy numpy views."""

    __slots__ = ("block", "count", "_names", "_dtypes", "_offsets")

    def __init__(self, block, names, dtypes, offsets, count):
        self.block = block
        self.count = count
        self._names = names
        self._dtypes = dtypes
        self._offsets = offsets

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, schema, columns, page_size, registry=None):
        """Lay ``columns`` (name -> array-like, equal lengths) onto a page.

        The page is built exactly-sized: column allocations hold the given
        rows and nothing more, so ``to_bytes`` ships only occupied bytes.
        """
        names = schema.names()
        arrays = []
        count = None
        for name, descriptor in schema:
            dtype = NUMPY_DTYPES[descriptor.name]
            arr = np.ascontiguousarray(columns[name], dtype=dtype).reshape(-1)
            if count is None:
                count = len(arr)
            elif len(arr) != count:
                raise ObjectModelError(
                    "ragged columnar build: column %r has %d rows, "
                    "expected %d" % (name, len(arr), count)
                )
            arrays.append((name, dtype, arr))
        block = AllocationBlock(page_size, registry=registry, managed=False)
        dtypes = []
        offsets = []
        for name, dtype, arr in arrays:
            offset = block.allocate(
                arr.nbytes, simple_code(arr.itemsize),
                refcount=REFCOUNT_UNCOUNTED,
            )
            start = offset + OBJECT_HEADER_SIZE
            block.buf[start:start + arr.nbytes] = arr.tobytes()
            dtypes.append(dtype)
            offsets.append(start)
        payload = _ROOT_HEADER.pack(len(arrays), 0, count)
        for (name, dtype, _arr), start in zip(arrays, offsets):
            encoded = name.encode("utf-8")
            payload += _COL_RECORD.pack(
                start, dtype.encode("ascii").ljust(8, b"\0"), len(encoded)
            ) + encoded
        root_code = ColumnarRoot.type_code(block)
        root_offset = block.allocate(
            len(payload), root_code, refcount=REFCOUNT_UNCOUNTED
        )
        start = root_offset + OBJECT_HEADER_SIZE
        block.buf[start:start + len(payload)] = payload
        block.set_root(root_offset, root_code)
        return cls(block, names, dtypes, offsets, count)

    @classmethod
    def attach(cls, block):
        """The page's columnar view, or None when ``block`` is row-layout."""
        offset, code = block.root()
        if offset is None or code != ColumnarRootType.FIXED_CODE:
            return None
        return cls._parse(block, offset)

    @classmethod
    def _parse(cls, block, root_offset):
        buf = block.buf
        cursor = root_offset + OBJECT_HEADER_SIZE
        ncols, _reserved, count = _ROOT_HEADER.unpack_from(buf, cursor)
        cursor += _ROOT_HEADER.size
        names, dtypes, offsets = [], [], []
        for _ in range(ncols):
            start, dtype, name_len = _COL_RECORD.unpack_from(buf, cursor)
            cursor += _COL_RECORD.size
            names.append(bytes(buf[cursor:cursor + name_len]).decode("utf-8"))
            dtypes.append(dtype.rstrip(b"\0").decode("ascii"))
            offsets.append(start)
            cursor += name_len
        return cls(block, names, dtypes, offsets, count)

    @staticmethod
    def capacity_for(schema, page_size):
        """Rows of ``schema`` that fit on a page of ``page_size`` bytes."""
        root_payload = _ROOT_HEADER.size + sum(
            _COL_RECORD.size + len(name.encode("utf-8"))
            for name in schema.names()
        )
        fixed = BLOCK_HEADER_SIZE + max(
            align8(OBJECT_HEADER_SIZE + root_payload), 24
        )
        per_column = len(schema) * (OBJECT_HEADER_SIZE + 8)
        available = page_size - fixed - per_column
        return max(available // schema.row_stride, 0)

    # -- access -------------------------------------------------------------

    def names(self):
        """Column names in schema order."""
        return list(self._names)

    def column(self, name):
        """Zero-copy read-only numpy view over column ``name``."""
        try:
            index = self._names.index(name)
        except ValueError:
            raise KeyError(name) from None
        view = np.frombuffer(
            self.block.buf, dtype=self._dtypes[index], count=self.count,
            offset=self._offsets[index],
        )
        view.flags.writeable = False
        return view

    def rows(self):
        """All rows of the page as one :class:`ColumnarRows` batch."""
        return ColumnarRows(self)

    def __len__(self):
        return self.count

    def __repr__(self):
        return "<ColumnarPage %d rows x [%s]>" % (
            self.count, ", ".join(self._names)
        )


class RowView:
    """Per-row facade over a columnar page (the object-path bridge).

    Attribute access is schema-named, mirroring the field accessors of a
    row-layout PCObject facade, so per-row fallback operators run on
    columnar rows unchanged.  Like any facade it aliases page memory —
    ``pc_block`` marks it as page-backed for the transport reject checks.
    """

    __slots__ = ("pc_page", "pc_row")

    def __init__(self, page, row):
        object.__setattr__(self, "pc_page", page)
        object.__setattr__(self, "pc_row", row)

    @property
    def pc_block(self):
        return self.pc_page.block

    def __getattr__(self, name):
        try:
            column = self.pc_page.column(name)
        except KeyError:
            raise AttributeError(name) from None
        return column[self.pc_row].item()

    def field_names(self):
        """Schema column names, mirroring PCObject.field_names()."""
        return self.pc_page.names()

    def as_tuple(self):
        """The row's values as a plain tuple, in schema order."""
        return tuple(
            self.pc_page.column(name)[self.pc_row].item()
            for name in self.pc_page.names()
        )

    def detach(self):
        """This row copied out of page memory (no block references)."""
        return DetachedRow(self.pc_page.names(), self.as_tuple())

    def __eq__(self, other):
        if isinstance(other, (RowView, DetachedRow)):
            other = other.as_tuple()
        if isinstance(other, tuple):
            return self.as_tuple() == other
        return NotImplemented

    def __hash__(self):
        return hash(self.as_tuple())

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (name, value)
            for name, value in zip(self.pc_page.names(), self.as_tuple())
        )
        return "RowView(%s)" % parts


class DetachedRow:
    """A row copied out of page memory: plain values, schema-named attrs.

    What a :class:`RowView` becomes when it must outlive its page — a
    stored python output, a collect result pickled across a process
    boundary.  Same attribute surface and tuple equality; no ``pc_block``
    and no page references, so transport reject checks let it through.
    """

    __slots__ = ("_names", "_values")

    def __init__(self, names, values):
        object.__setattr__(self, "_names", tuple(names))
        object.__setattr__(self, "_values", tuple(values))

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            index = self._names.index(name)
        except ValueError:
            raise AttributeError(name) from None
        return self._values[index]

    def field_names(self):
        """Schema column names, mirroring PCObject.field_names()."""
        return list(self._names)

    def as_tuple(self):
        """The row's values as a plain tuple, in schema order."""
        return self._values

    def detach(self):
        """Already detached; returns self."""
        return self

    def __eq__(self, other):
        if isinstance(other, (RowView, DetachedRow)):
            other = other.as_tuple()
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, (RowView, DetachedRow)):
            other = other.as_tuple()
        if isinstance(other, tuple):
            return self._values < other
        return NotImplemented

    def __hash__(self):
        return hash(self._values)

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (name, value)
            for name, value in zip(self._names, self._values)
        )
        return "DetachedRow(%s)" % parts


class ColumnarRows:
    """A batch of rows of one columnar page, optionally index-selected.

    This is what flows through the pipeline in place of a list of objects
    when a scan is columnar: kernels consume whole batches via
    :meth:`column`, while per-row fallback operators iterate it and get
    :class:`RowView` facades.
    """

    __slots__ = ("page", "_indices")

    def __init__(self, page, indices=None):
        self.page = page
        self._indices = indices

    def __len__(self):
        if self._indices is None:
            return self.page.count
        return len(self._indices)

    def column(self, name):
        """Column values for the selected rows (a view when unfiltered)."""
        column = self.page.column(name)
        if self._indices is None:
            return column
        return column[self._indices]

    def names(self):
        """Column names in schema order."""
        return self.page.names()

    def _row_index(self, index):
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(
                "row index %d out of range (%d)" % (index, length)
            )
        if self._indices is None:
            return index
        return int(self._indices[index])

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ObjectModelError("columnar batches slice by step 1")
            return self.slice(start, stop)
        return RowView(self.page, self._row_index(index))

    def __iter__(self):
        for index in range(len(self)):
            yield RowView(self.page, self._row_index(index))

    def slice(self, start, stop):
        """Rows ``[start:stop)`` of this batch as a new batch."""
        if self._indices is None:
            indices = np.arange(start, min(stop, self.page.count))
        else:
            indices = self._indices[start:stop]
        return ColumnarRows(self.page, indices)

    def mask(self, keep):
        """The rows where boolean ``keep`` is True, as a new batch."""
        keep = np.asarray(keep, dtype=bool)
        if self._indices is None:
            return ColumnarRows(self.page, np.nonzero(keep)[0])
        return ColumnarRows(self.page, self._indices[keep])

    def __repr__(self):
        return "<ColumnarRows %d of %r>" % (len(self), self.page)
