"""Type codes and the process-local type registry.

Every PC ``Object`` carries a 32-bit *type code* (Section 6.3 of the paper).
The code is what makes dynamic dispatch survive a move between processes:
a raw vtable pointer dies in transit, but a type code can be looked up in
the receiving process' registry to recover the local class.

Following the paper, a type code either

* has its high bit set, in which case the referenced value is a *simple*
  type (no virtual functions, a ``memmove`` suffices to copy it) and the
  remaining 31 bits encode the value's size in bytes; or
* is an ordinary registry code naming a type descended from PC's ``Object``
  base class (including the built-in container instantiations, which play
  the role of C++ template instantiations).

The registry is deliberately *process local*.  In a simulated cluster each
worker owns one registry; a lookup miss triggers the catalog's ``.so``
fetch path (see :mod:`repro.catalog`).
"""

from __future__ import annotations

import threading

from repro.errors import TypeRegistrationError, UnknownTypeCodeError

SIMPLE_FLAG = 0x80000000
SIMPLE_SIZE_MASK = 0x7FFFFFFF

#: Type code 0 is reserved for "no type" / null handles.
NULL_TYPE_CODE = 0

#: First code handed out to registered object types.  Codes 1..63 are
#: reserved so the built-in containers always get stable codes regardless
#: of registration order (mirroring PC's built-ins shipping with the
#: system rather than user ``.so`` files).
FIRST_USER_TYPE_CODE = 64


def simple_code(size):
    """Return the type code for a simple (memmove-able) value of ``size``."""
    if not 0 <= size <= SIMPLE_SIZE_MASK:
        raise TypeRegistrationError("simple type size %r out of range" % size)
    return SIMPLE_FLAG | size


def is_simple_code(code):
    """True when ``code`` denotes a simple type rather than an Object type."""
    return bool(code & SIMPLE_FLAG)


def simple_size(code):
    """Size in bytes encoded in a simple type code."""
    return code & SIMPLE_SIZE_MASK


class TypeRegistry:
    """Maps type names and codes to type descriptors.

    A *descriptor* is anything exposing the :class:`repro.memory.types.PCType`
    protocol; for user classes it is the class itself (PCObject subclasses
    double as their own descriptors).

    The ``miss_handler`` hook lets a worker's local registry fall back to
    the master catalog when it sees a code for the first time — the
    reproduction of PC's dynamic ``.so`` loading.
    """

    def __init__(self, miss_handler=None, register_delegate=None):
        self._by_code = {}
        self._by_name = {}
        self._next_code = FIRST_USER_TYPE_CODE
        self._builtin_next = 1
        self._lock = threading.Lock()
        self.miss_handler = miss_handler
        #: When set, registrations of brand-new names are forwarded here to
        #: obtain an authoritative code (worker registries forward to the
        #: master catalog so codes agree cluster-wide).
        self.register_delegate = register_delegate

    def __contains__(self, code):
        return code in self._by_code

    def register(self, name, descriptor, code=None, builtin=False):
        """Register ``descriptor`` under ``name`` and return its code.

        Re-registering the same name returns the existing code if the
        descriptor matches, otherwise raises.  When ``code`` is given the
        registry honors it (used when a worker installs a type fetched
        from the master catalog: codes must agree cluster-wide).
        """
        with self._lock:
            if name in self._by_name:
                existing = self._by_name[name]
                if code is not None and existing != code:
                    raise TypeRegistrationError(
                        "type %r already registered with code %d, not %d"
                        % (name, existing, code)
                    )
                return existing
            if code is None and self.register_delegate is not None:
                delegate = self.register_delegate
            else:
                delegate = None
        if delegate is not None:
            code = delegate(name, descriptor)
        with self._lock:
            if name in self._by_name:
                return self._by_name[name]
            if code is None:
                if builtin:
                    code = self._builtin_next
                    self._builtin_next += 1
                    if code >= FIRST_USER_TYPE_CODE:
                        raise TypeRegistrationError("built-in code space full")
                else:
                    code = self._next_code
                    self._next_code += 1
            else:
                if code in self._by_code:
                    raise TypeRegistrationError(
                        "code %d already taken by %r"
                        % (code, self._by_code[code][0])
                    )
                self._next_code = max(self._next_code, code + 1)
            self._by_name[name] = code
            self._by_code[code] = (name, descriptor)
            return code

    def code_for_name(self, name):
        """Return the code registered for ``name`` or None."""
        return self._by_name.get(name)

    def lookup(self, code):
        """Return the descriptor for ``code``.

        On a miss, the ``miss_handler`` (if any) is invoked with this
        registry and the code; it is expected to install the type (the
        simulated ``.so`` load) so the retry succeeds.
        """
        entry = self._by_code.get(code)
        if entry is None and self.miss_handler is not None:
            self.miss_handler(self, code)
            entry = self._by_code.get(code)
        if entry is None:
            raise UnknownTypeCodeError(code)
        return entry[1]

    def name_of(self, code):
        """Return the registered name for ``code``."""
        entry = self._by_code.get(code)
        if entry is None:
            raise UnknownTypeCodeError(code)
        return entry[0]

    def entries(self):
        """Snapshot of ``(code, name, descriptor)`` triples."""
        with self._lock:
            return [
                (code, name, desc)
                for code, (name, desc) in sorted(self._by_code.items())
            ]

    # A registry must survive pickling so a real back-end *process* can
    # receive the coordinator's type table (the paper's .so shipping,
    # Section 6.3).  The lock and the catalog hooks are process-local:
    # the copy gets a fresh lock and no hooks.

    def __getstate__(self):
        with self._lock:
            return {
                "by_code": dict(self._by_code),
                "by_name": dict(self._by_name),
                "next_code": self._next_code,
                "builtin_next": self._builtin_next,
            }

    def __setstate__(self, state):
        self.__init__()
        self._by_code.update(state["by_code"])
        self._by_name.update(state["by_name"])
        self._next_code = state["next_code"]
        self._builtin_next = state["builtin_next"]


_default_registry = TypeRegistry()


def default_registry():
    """The process-wide default registry used outside cluster simulations."""
    return _default_registry
