"""The PC object model (Sections 3, 6 and Appendix B of the paper).

Public surface::

    from repro.memory import (
        make_allocation_block, use_allocation_block, make_object,
        PCObject, Handle, Int32, Int64, Float64, Bool, String,
        VectorType, MapType,
    )

    block = make_allocation_block(1024 * 1024)

    class DataPoint(PCObject):
        fields = [("dims", Int32), ("data", VectorType(Float64))]

    point = make_object(DataPoint, dims=3, data=[1.0, 2.0, 3.0])
    raw = block.to_bytes()          # zero-cost movement: just the bytes
"""

from repro.memory.block import (
    FULL_REF_COUNT,
    LIGHTWEIGHT_REUSE,
    NO_REF_COUNT,
    NO_REUSE,
    RECYCLING,
    UNIQUE_OWNERSHIP,
    AllocationBlock,
)
from repro.memory.builtins import (
    ArrayType,
    MapFacade,
    MapType,
    String,
    VectorFacade,
    VectorType,
    stable_hash,
)
from repro.memory.columnar import ColumnarPage, ColumnarRows, RowView
from repro.memory.handle import Handle
from repro.memory.layout import BLOCK_HEADER_SIZE, OBJECT_HEADER_SIZE
from repro.memory.objects import (
    PCObject,
    current_allocation_block,
    deep_copy_object,
    make_allocation_block,
    make_object,
    make_object_on,
    pop_allocation_block,
    release_reference,
    use_allocation_block,
)
from repro.memory.typecodes import TypeRegistry, default_registry
from repro.memory.types import (
    Bool,
    Float32,
    Float64,
    Int8,
    Int16,
    Int32,
    Int64,
    UInt32,
    UInt64,
)

__all__ = [
    "AllocationBlock",
    "ArrayType",
    "BLOCK_HEADER_SIZE",
    "Bool",
    "ColumnarPage",
    "ColumnarRows",
    "FULL_REF_COUNT",
    "Float32",
    "Float64",
    "Handle",
    "Int16",
    "Int32",
    "Int64",
    "Int8",
    "LIGHTWEIGHT_REUSE",
    "MapFacade",
    "MapType",
    "NO_REF_COUNT",
    "NO_REUSE",
    "OBJECT_HEADER_SIZE",
    "PCObject",
    "RECYCLING",
    "RowView",
    "String",
    "TypeRegistry",
    "UInt32",
    "UInt64",
    "UNIQUE_OWNERSHIP",
    "VectorFacade",
    "VectorType",
    "current_allocation_block",
    "deep_copy_object",
    "default_registry",
    "make_allocation_block",
    "make_object",
    "make_object_on",
    "pop_allocation_block",
    "release_reference",
    "stable_hash",
    "use_allocation_block",
]
