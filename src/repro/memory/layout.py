"""Byte-level layout constants and codecs for the PC object model.

Everything the object model stores lives inside a ``bytearray`` owned by an
allocation block.  This module defines the on-page formats:

* the **block header** at offset 0 of every allocation block;
* the **object header** preceding every allocated PC object;
* the 12-byte **embedded handle** slot (relative offset + type code) that is
  the on-page representation of a ``Handle``.

Offsets inside embedded handles are *relative to the slot itself*, the
paper's "offset pointer" (Section 6.2): as long as a handle and its target
travel together on one block, copying the block's bytes anywhere — another
process, disk, the network — leaves every handle valid.
"""

from __future__ import annotations

import struct

# ---------------------------------------------------------------------------
# Block header
# ---------------------------------------------------------------------------

BLOCK_MAGIC = b"PCBK"

#: magic(4s) version(I) block_size(Q) used(Q) active_objects(Q) policy(I)
_BLOCK_HEADER = struct.Struct("<4sIQQQI")

#: The root handle slot sits right after the fixed header fields, so a page
#: shipped to another process can find its contents (typically a
#: ``Vector[Handle[Object]]``) without side-channel metadata.
ROOT_HANDLE_OFFSET = _BLOCK_HEADER.size

HANDLE_STRUCT = struct.Struct("<qI")  # relative offset (q), type code (I)
HANDLE_SLOT_SIZE = HANDLE_STRUCT.size  # 12 bytes

# ---------------------------------------------------------------------------
# Object header
# ---------------------------------------------------------------------------

#: refcount(i) type_code(I) payload_size(Q)
OBJECT_HEADER = struct.Struct("<iIQ")
OBJECT_HEADER_SIZE = OBJECT_HEADER.size  # 16 bytes

#: Sentinel refcounts for the per-object allocation policies (Appendix B).
REFCOUNT_UNCOUNTED = -1  # ObjectPolicy.no_ref_count
REFCOUNT_UNIQUE = -2  # ObjectPolicy.unique_ownership
REFCOUNT_FREED = -3  # written when the object is deallocated

ALIGNMENT = 8


def align8(n):
    """Round ``n`` up to the next multiple of 8."""
    return (n + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


BLOCK_HEADER_SIZE = align8(ROOT_HANDLE_OFFSET + HANDLE_SLOT_SIZE)


def pack_block_header(buf, block_size, used, active_objects, policy):
    """Write the fixed block header fields into ``buf``."""
    _BLOCK_HEADER.pack_into(
        buf, 0, BLOCK_MAGIC, 1, block_size, used, active_objects, policy
    )


def unpack_block_header(buf):
    """Return ``(block_size, used, active_objects, policy)`` from ``buf``."""
    magic, version, block_size, used, active, policy = _BLOCK_HEADER.unpack_from(
        buf, 0
    )
    if magic != BLOCK_MAGIC:
        raise ValueError("buffer does not contain a PC allocation block")
    if version != 1:
        raise ValueError("unsupported block version %d" % version)
    return block_size, used, active, policy


# Field offsets for in-place updates without re-packing the whole header.
_USED_OFFSET = struct.calcsize("<4sIQ")
_ACTIVE_OFFSET = struct.calcsize("<4sIQQ")
_U64 = struct.Struct("<Q")


def write_used(buf, used):
    """Update the bump-pointer field of the block header in place."""
    _U64.pack_into(buf, _USED_OFFSET, used)


def read_used(buf):
    """Read the bump-pointer field of the block header."""
    return _U64.unpack_from(buf, _USED_OFFSET)[0]


def write_active_objects(buf, count):
    """Update the active-object counter of the block header in place."""
    _U64.pack_into(buf, _ACTIVE_OFFSET, count)


def read_active_objects(buf):
    """Read the active-object counter of the block header."""
    return _U64.unpack_from(buf, _ACTIVE_OFFSET)[0]


def write_handle_slot(buf, slot_offset, target_offset, type_code):
    """Encode an embedded handle at ``slot_offset``.

    ``target_offset`` is the absolute offset of the target object within the
    same block, or ``None`` for a null handle.  The stored delta is relative
    to the slot, so the encoding is position independent.
    """
    if target_offset is None:
        HANDLE_STRUCT.pack_into(buf, slot_offset, 0, 0)
    else:
        HANDLE_STRUCT.pack_into(
            buf, slot_offset, target_offset - slot_offset, type_code
        )


def read_handle_slot(buf, slot_offset):
    """Decode an embedded handle; returns ``(target_offset, type_code)``.

    ``target_offset`` is ``None`` for a null handle.
    """
    delta, type_code = HANDLE_STRUCT.unpack_from(buf, slot_offset)
    if delta == 0:
        return None, 0
    return slot_offset + delta, type_code


def write_object_header(buf, offset, refcount, type_code, payload_size):
    """Write an object header at ``offset``."""
    OBJECT_HEADER.pack_into(buf, offset, refcount, type_code, payload_size)


def read_object_header(buf, offset):
    """Return ``(refcount, type_code, payload_size)`` at ``offset``."""
    return OBJECT_HEADER.unpack_from(buf, offset)


_I32 = struct.Struct("<i")


def write_refcount(buf, offset, refcount):
    """Rewrite only the refcount field of an object header."""
    _I32.pack_into(buf, offset, refcount)


def read_refcount(buf, offset):
    """Read only the refcount field of an object header."""
    return _I32.unpack_from(buf, offset)[0]
