"""Per-stage / per-operator execution profiling.

The scheduler wraps every distributed job stage, and the pipeline engine
every TCAP operator application, in a :class:`StageProfiler` scope.  Each
scope records:

* **wall time** (``time.perf_counter``) into a log-bucketed histogram
  (``pc_sched_stage_seconds{stage=...}`` / ``pc_op_seconds{operator=...}``),
  the series the Figure 4/5 style breakdowns and every later perf PR are
  judged against (p50/p95/p99 come out of the bucket math);
* **CPU time** (``time.process_time``) — in the single-process simulation
  the wall/CPU gap is time spent sleeping or in I/O;
* **pages touched** — the delta of buffer-pool pins across all provided
  pools while the scope was open;
* **peak-bytes watermark** — the high-water mark of total buffer-pool
  occupancy inside the scope.  Scopes nest correctly: a child scope's
  peak also counts toward its parent's.

Every quantity is *also* attached to the active trace span
(``prof.wall_ms`` / ``prof.cpu_ms`` / ``prof.pages_touched`` /
``prof.peak_bytes`` and ``op.<name>.*``), so one job's trace and the
cluster-lifetime metrics tell the same story.

Profiling is dropped wholesale when disabled
(``PCCluster(profiling=False)``): the engine and scheduler then call the
wrapped function directly, paying nothing.  The enabled-path overhead is
bounded by the CI metrics leg at <5% of the Figure-4 runtime benchmark.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry


class StageProfiler:
    """Times stages and operators into histograms and trace spans."""

    def __init__(self, registry=None, tracer=None, pools=None):
        self.registry = registry if registry is not None else \
            MetricsRegistry()
        self.tracer = tracer
        #: buffer pools observed for pages-touched / peak-bytes; the
        #: cluster appends each worker's pool (duck-typed: ``pins``,
        #: ``in_memory_bytes``, ``peak_in_memory_bytes`` attributes).
        self.pools = list(pools) if pools is not None else []
        self.stage_seconds = self.registry.histogram(
            "pc_sched_stage_seconds",
            help="Wall seconds per distributed job stage",
            labelnames=("stage",),
        )
        self.stages_total = self.registry.counter(
            "pc_sched_stages_total",
            help="Distributed job stages executed",
            labelnames=("stage",),
        )
        self.stage_cpu_seconds = self.registry.counter(
            "pc_sched_stage_cpu_seconds_total",
            help="CPU seconds per distributed job stage",
            labelnames=("stage",),
        )
        self.stage_pages = self.registry.counter(
            "pc_sched_stage_pages_touched_total",
            help="Buffer-pool pins during each job stage",
            labelnames=("stage",),
        )
        self.stage_peak_bytes = self.registry.gauge(
            "pc_sched_stage_peak_bytes",
            help="Max peak buffer-pool occupancy seen in any one stage run",
            labelnames=("stage",),
        )
        self.op_seconds = self.registry.histogram(
            "pc_op_seconds",
            help="Wall seconds per TCAP operator application",
            labelnames=("operator",),
        )
        self.op_cpu_seconds = self.registry.counter(
            "pc_op_cpu_seconds_total",
            help="CPU seconds per TCAP operator",
            labelnames=("operator",),
        )
        self.op_rows = self.registry.counter(
            "pc_op_rows_total",
            help="Rows emitted per TCAP operator",
            labelnames=("operator",),
        )
        self.op_pages = self.registry.counter(
            "pc_op_pages_touched_total",
            help="Buffer-pool pins during operator applications",
            labelnames=("operator",),
        )
        self.op_columnar_rows = self.registry.counter(
            "pc_op_columnar_rows_total",
            help="Rows each operator processed on the columnar "
                 "(whole-page array kernel) path; compare against "
                 "pc_op_rows_total for the columnar-vs-object split",
            labelnames=("operator",),
        )
        self.op_peak_bytes = self.registry.gauge(
            "pc_op_peak_bytes",
            help="Max peak buffer-pool occupancy in any one operator run",
            labelnames=("operator",),
        )
        #: hot-path caches, keyed by operator/stage name: pre-resolved
        #: per-series metric handles, pre-formatted trace-counter names,
        #: and the peak watermark already exported (avoids a labeled
        #: gauge read on every application).
        self._op_handles = {}
        self._stage_handles = {}
        self._op_trace_names = {}
        self._op_columnar_handles = {}
        self._op_peak_seen = {}
        self._stage_peak_seen = {}

    def add_pool(self, pool):
        self.pools.append(pool)

    # -- nesting-aware pool watermarks ---------------------------------------------

    def _pins_total(self):
        return sum(pool.pins for pool in self.pools)

    def _begin_scope(self):
        """Snapshot pin counts and reset peak watermarks (restorable)."""
        saved_peaks = []
        for pool in self.pools:
            saved_peaks.append(pool.peak_in_memory_bytes)
            pool.peak_in_memory_bytes = pool.in_memory_bytes
        return self._pins_total(), saved_peaks

    def _end_scope(self, begin_state):
        """(pages_touched, peak_bytes); restores parent-scope watermarks."""
        pins_before, saved_peaks = begin_state
        peak = 0
        for pool, saved in zip(self.pools, saved_peaks):
            peak += pool.peak_in_memory_bytes
            # A parent scope's watermark must reflect this child's peak.
            pool.peak_in_memory_bytes = max(saved, pool.peak_in_memory_bytes)
        return self._pins_total() - pins_before, peak

    # -- stage profiling ------------------------------------------------------------

    def stage(self, stage_name):
        """Context manager profiling one distributed job stage."""
        return _Scope(self, stage_name, kind="stage")

    # -- operator profiling -----------------------------------------------------------

    def _op_handle(self, name):
        handles = self._op_handles.get(name)
        if handles is None:
            handles = self._op_handles[name] = (
                self.op_seconds.child(operator=name),
                self.op_cpu_seconds.child(operator=name),
                self.op_rows.child(operator=name),
                self.op_pages.child(operator=name),
            )
            self._op_trace_names[name] = (
                "op.%s.calls" % name, "op.%s.wall_ms" % name,
                "op.%s.cpu_ms" % name, "op.%s.rows" % name,
            )
        return handles

    def note_columnar_rows(self, name, rows):
        """Record ``rows`` handled by operator ``name``'s array kernel."""
        handle = self._op_columnar_handles.get(name)
        if handle is None:
            handle = self._op_columnar_handles[name] = \
                self.op_columnar_rows.child(operator=name)
        handle.inc(rows)
        tracer = self.tracer
        if tracer is not None and tracer.active is not None:
            tracer.add("op.%s.columnar_rows" % name, rows)

    def operator(self, name, fn, *args, **kwargs):
        """Run ``fn`` inside a profiled operator scope; returns its result."""
        seconds, cpu_seconds, op_rows, op_pages = self._op_handle(name)
        begin = self._begin_scope()
        cpu0 = time.process_time()
        wall0 = time.perf_counter()
        result = fn(*args, **kwargs)
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        pages, peak = self._end_scope(begin)
        seconds.observe(wall)
        cpu_seconds.inc(cpu)
        rows = len(result) if result is not None else 0
        if rows:
            op_rows.inc(rows)
        if pages:
            op_pages.inc(pages)
        if peak > self._op_peak_seen.get(name, -1):
            self._op_peak_seen[name] = peak
            self.op_peak_bytes.set(peak, operator=name)
        tracer = self.tracer
        if tracer is not None and tracer.active is not None:
            names = self._op_trace_names[name]
            tracer.add(names[0])
            tracer.add(names[1], wall * 1e3)
            tracer.add(names[2], cpu * 1e3)
            if rows:
                tracer.add(names[3], rows)
        return result


class _Scope:
    """One profiled stage scope (wall/cpu/pages/peak on exit)."""

    def __init__(self, profiler, name, kind):
        self.profiler = profiler
        self.name = name
        self.kind = kind

    def __enter__(self):
        self._begin = self.profiler._begin_scope()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        profiler = self.profiler
        name = self.name
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        pages, peak = profiler._end_scope(self._begin)
        handles = profiler._stage_handles.get(name)
        if handles is None:
            handles = profiler._stage_handles[name] = (
                profiler.stage_seconds.child(stage=name),
                profiler.stages_total.child(stage=name),
                profiler.stage_cpu_seconds.child(stage=name),
                profiler.stage_pages.child(stage=name),
            )
        seconds, total, cpu_seconds, stage_pages = handles
        seconds.observe(wall)
        total.inc()
        cpu_seconds.inc(cpu)
        if pages:
            stage_pages.inc(pages)
        if peak > profiler._stage_peak_seen.get(name, -1):
            profiler._stage_peak_seen[name] = peak
            profiler.stage_peak_bytes.set(peak, stage=name)
        tracer = profiler.tracer
        if tracer is not None and tracer.active is not None:
            tracer.add("prof.wall_ms", wall * 1e3)
            tracer.add("prof.cpu_ms", cpu * 1e3)
            tracer.add("prof.pages_touched", pages)
            tracer.add("prof.peak_bytes", peak)
        return False
