"""Typed metrics: Counter / Gauge / Histogram behind a process registry.

The trace layer (:mod:`repro.obs.tracer`) attributes quantities to the
job stage that caused them; this module is the *continuous* complement —
monotonic counters, point-in-time gauges, and log-bucketed latency
histograms that survive across jobs, merge across the simulated
processes, and export in Prometheus text-exposition format
(:mod:`repro.obs.export`).

Design points:

* **One registry per simulated process.**  The master and every worker
  front-end own a :class:`MetricsRegistry`; a registry can carry
  *constant labels* (``{"worker": "worker-3"}``) stamped onto every
  series at snapshot time, so ``PCCluster.metrics()`` can merge all
  registries into one cluster-wide :class:`MetricsSnapshot` without name
  collisions.

* **Trace mirrors.**  A counter may declare the dotted trace-counter
  name it historically reported through :meth:`Tracer.add`
  (``trace="repl.replica_writes"``).  Incrementing the counter then
  *also* reports into the active trace span — the metric name, the trace
  counter, and the ``stats()`` key are all derived from one declaration,
  so they can no longer drift apart.  Labeled mirrors may use a format
  template (``trace="net.link.{src}->{dst}"``).

* **Histograms** use fixed log-scaled buckets (upper bounds, ``le``
  semantics: an observation equal to a bound lands in that bound's
  bucket).  ``quantile(q)`` interpolates linearly inside the bucket the
  rank falls into, exactly like PromQL's ``histogram_quantile``; the
  overflow bucket reports the maximum observed value.
"""

from __future__ import annotations

import bisect


def exponential_buckets(start, factor, count):
    """``count`` log-scaled upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds, bound = [], start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return bounds


#: Default latency buckets: 1 µs .. ~33 s, doubling.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 26)

#: The quantiles exported as Prometheus ``quantile=`` series.
EXPORT_QUANTILES = (0.5, 0.95, 0.99)


class _Metric:
    """Shared bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name, help="", labelnames=(), trace=None):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.trace_name = trace
        self._registry = None  # set on registration (for trace mirrors)

    def _key(self, labels):
        # Fast path: kwargs arrive in declaration order (the hot-path
        # callers — profiler, network — always do), so a tuple compare
        # avoids building two sets per increment.
        if tuple(labels) == self.labelnames:
            return tuple(str(value) for value in labels.values())
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(labels))
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _mirror(self, amount, labels):
        """Report into the active trace span, if a mirror is declared."""
        if self.trace_name is None or self._registry is None:
            return
        tracer = self._registry.tracer
        if tracer is None:
            return
        name = self.trace_name
        if labels and "{" in name:
            name = name.format(**labels)
        tracer.add(name, amount)


class _CounterChild:
    """One pre-resolved labeled series: the allocation-free hot path.

    Obtained via :meth:`Counter.child`; skips per-call label validation
    and trace-name formatting (both are done once, at resolution time).
    """

    __slots__ = ("_metric", "_values", "_series_key", "_trace_name")

    def __init__(self, metric, series_key, labels):
        self._metric = metric
        self._values = metric._values
        self._series_key = series_key
        name = metric.trace_name
        if name is not None and labels and "{" in name:
            name = name.format(**labels)
        self._trace_name = name

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(
                "counter %s cannot decrease" % self._metric.name
            )
        key = self._series_key
        self._values[key] = self._values.get(key, 0) + amount
        if self._trace_name is not None:
            registry = self._metric._registry
            if registry is not None and registry.tracer is not None:
                registry.tracer.add(self._trace_name, amount)


class Counter(_Metric):
    """A monotonically increasing count (optionally labeled)."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=(), trace=None):
        super().__init__(name, help, labelnames, trace)
        self._values = {}  # label-values tuple -> number

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount
        self._mirror(amount, labels)

    def child(self, **labels):
        """A pre-resolved handle on one labeled series (hot paths)."""
        return _CounterChild(self, self._key(labels), labels)

    @property
    def value(self):
        """Sum over every labeled series (the unlabeled total)."""
        return sum(self._values.values())

    def value_for(self, **labels):
        return self._values.get(self._key(labels), 0)

    def series(self):
        return dict(self._values)

    def reset(self):
        self._values.clear()


class Gauge(_Metric):
    """A value that can go up and down (capacity, occupancy, flags)."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=(), trace=None):
        super().__init__(name, help, labelnames, trace)
        self._values = {}

    def set(self, value, **labels):
        self._values[self._key(labels)] = value
        self._mirror_set(value, labels)

    def _mirror_set(self, value, labels):
        """Last-write-wins mirror into the active span.

        Counters *add* into their trace mirror; a gauge is a level, so
        each set overwrites the span counter instead — the span keeps
        the value the gauge had when the span closed.
        """
        if self.trace_name is None or self._registry is None:
            return
        tracer = self._registry.tracer
        if tracer is None:
            return
        span = tracer.active
        if span is None:
            return
        name = self.trace_name
        if labels and "{" in name:
            name = name.format(**labels)
        span.counters[name] = value

    def inc(self, amount=1, **labels):
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount=1, **labels):
        self.inc(-amount, **labels)

    @property
    def value(self):
        values = list(self._values.values())
        if not values:
            return 0
        return values[0] if len(values) == 1 else sum(values)

    def value_for(self, **labels):
        return self._values.get(self._key(labels), 0)

    def series(self):
        return dict(self._values)

    def reset(self):
        self._values.clear()


class _HistogramSeries:
    """One labeled child of a histogram: bucket counts + sum/count/min/max."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets):
        self.counts = [0] * (n_buckets + 1)  # + overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def observe(self, value, bounds):
        # le semantics: value == bound lands in that bound's bucket.
        self.counts[bisect.bisect_left(bounds, value)] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self):
        return {
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


def quantile_from_buckets(q, bounds, counts, count, max_observed=None):
    """PromQL-style ``histogram_quantile`` over explicit bucket counts.

    ``bounds`` are the finite upper bounds; ``counts`` has one extra
    trailing entry (the overflow bucket).  Linear interpolation inside
    the target bucket, from the previous bound (0.0 before the first).
    A rank landing in the overflow bucket returns the max observed value
    when known, else the last finite bound.
    """
    if count <= 0:
        return None
    if not 0 <= q <= 1:
        raise ValueError("quantile must be in [0, 1], got %r" % (q,))
    rank = q * count
    cumulative, previous = 0, 0.0
    for bound, bucket_count in zip(bounds, counts):
        if bucket_count and cumulative + bucket_count >= rank:
            fraction = (rank - cumulative) / bucket_count
            return previous + (bound - previous) * max(0.0, fraction)
        cumulative += bucket_count
        previous = bound
    return max_observed if max_observed is not None else bounds[-1]


class _HistogramChild:
    """One pre-resolved labeled histogram series (see ``Histogram.child``)."""

    __slots__ = ("_metric", "_series", "_bounds", "_trace_name")

    def __init__(self, metric, series, labels):
        self._metric = metric
        self._series = series
        self._bounds = metric.bounds
        name = metric.trace_name
        if name is not None and labels and "{" in name:
            name = name.format(**labels)
        self._trace_name = name

    def observe(self, value):
        self._series.observe(value, self._bounds)
        if self._trace_name is not None:
            registry = self._metric._registry
            if registry is not None and registry.tracer is not None:
                registry.tracer.add(self._trace_name, value)


class Histogram(_Metric):
    """Fixed log-scaled buckets with p50/p95/p99 via interpolation."""

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), trace=None,
                 buckets=None):
        super().__init__(name, help, labelnames, trace)
        self.bounds = list(buckets) if buckets else list(
            DEFAULT_LATENCY_BUCKETS
        )
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted")
        self._series = {}  # label-values tuple -> _HistogramSeries

    def _child(self, labels):
        key = self._key(labels)
        child = self._series.get(key)
        if child is None:
            child = self._series[key] = _HistogramSeries(len(self.bounds))
        return child

    def observe(self, value, **labels):
        self._child(labels).observe(value, self.bounds)
        self._mirror(value, labels)

    def child(self, **labels):
        """A pre-resolved handle on one labeled series (hot paths)."""
        return _HistogramChild(self, self._child(labels), labels)

    def quantile(self, q, **labels):
        """The q-quantile of one labeled series (all merged when unlabeled
        and the histogram has labels)."""
        if not labels and self.labelnames:
            merged = _HistogramSeries(len(self.bounds))
            for child in self._series.values():
                merged.counts = [
                    a + b for a, b in zip(merged.counts, child.counts)
                ]
                merged.count += child.count
                if child.max is not None:
                    merged.max = (
                        child.max if merged.max is None
                        else max(merged.max, child.max)
                    )
            child = merged
        else:
            child = self._series.get(self._key(labels))
        if child is None:
            return None
        return quantile_from_buckets(
            q, self.bounds, child.counts, child.count, child.max
        )

    def count_for(self, **labels):
        child = self._series.get(self._key(labels))
        return child.count if child is not None else 0

    def series(self):
        return {key: child.as_dict() for key, child in self._series.items()}

    def reset(self):
        self._series.clear()


class MetricsRegistry:
    """Per-process home of every metric; snapshot/merge for aggregation."""

    def __init__(self, labels=None, tracer=None):
        #: constant labels stamped on every series at snapshot time
        self.constant_labels = dict(labels or {})
        #: optional tracer for counters declaring a trace mirror
        self.tracer = tracer
        self._metrics = {}  # name -> metric
        self._collect_hooks = []

    # -- registration (get-or-create) ------------------------------------------

    def _register(self, cls, name, help, labelnames, trace, **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    "metric %s already registered as %s, not %s"
                    % (name, metric.kind, cls.kind)
                )
            return metric
        metric = cls(name, help=help, labelnames=labelnames, trace=trace,
                     **kwargs)
        metric._registry = self
        self._metrics[name] = metric
        return metric

    def counter(self, name, help="", labelnames=(), trace=None):
        return self._register(Counter, name, help, labelnames, trace)

    def gauge(self, name, help="", labelnames=(), trace=None):
        return self._register(Gauge, name, help, labelnames, trace)

    def histogram(self, name, help="", labelnames=(), trace=None,
                  buckets=None):
        return self._register(Histogram, name, help, labelnames, trace,
                              buckets=buckets)

    # -- introspection -----------------------------------------------------------

    def metrics(self):
        return list(self._metrics.values())

    def get(self, name):
        return self._metrics.get(name)

    def trace_names(self, prefix=""):
        """Every declared trace-mirror name under ``prefix``.

        This is the single source both the trace counters and the
        ``stats()`` views derive from; tests assert the two key sets
        match by comparing against it.
        """
        return {
            m.trace_name for m in self._metrics.values()
            if m.trace_name is not None and m.trace_name.startswith(prefix)
        }

    def stats_view(self, trace_prefix):
        """``{trace-suffix: value}`` for counters mirrored under a prefix.

        The thin-view backbone of the legacy ``stats()`` dicts: keys are
        derived from the same declarations as the trace counters, values
        read straight from the registry, so the two surfaces cannot
        drift.  Templated (per-label) mirrors are skipped — they surface
        through their own structured entries.
        """
        view = {}
        for metric in self._metrics.values():
            trace = metric.trace_name
            if trace is None or "{" in trace or \
                    not trace.startswith(trace_prefix):
                continue
            view[trace[len(trace_prefix):]] = metric.value
        return view

    # -- snapshots ----------------------------------------------------------------

    def on_collect(self, hook):
        """Register a callable run just before every snapshot (gauges)."""
        self._collect_hooks.append(hook)

    def snapshot(self):
        """An immutable :class:`MetricsSnapshot` of this registry."""
        for hook in self._collect_hooks:
            hook()
        constant = tuple(sorted(self.constant_labels.items()))
        families = {}
        for name, metric in sorted(self._metrics.items()):
            series = {}
            for key, value in metric.series().items():
                labels = constant + tuple(
                    zip(metric.labelnames, key)
                )
                series[labels] = value
            family = {
                "kind": metric.kind,
                "help": metric.help,
                "series": series,
            }
            if metric.kind == "histogram":
                family["bounds"] = list(metric.bounds)
            families[name] = family
        return MetricsSnapshot(families)


class MetricsSnapshot:
    """A merged, serializable view over one or more registries.

    Series are keyed by ``(name, ((label, value), ...))``; merging sums
    counters and gauges and adds histograms bucket-wise, so snapshots
    from the master and every worker process collapse into one
    cluster-wide surface.
    """

    def __init__(self, families=None):
        self.families = families or {}

    # -- merging -------------------------------------------------------------------

    @classmethod
    def merge(cls, snapshots):
        merged = cls()
        for snapshot in snapshots:
            merged._merge_one(snapshot)
        return merged

    def _merge_one(self, snapshot):
        for name, family in snapshot.families.items():
            mine = self.families.get(name)
            if mine is None:
                self.families[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "series": dict(family["series"]),
                }
                if "bounds" in family:
                    self.families[name]["bounds"] = list(family["bounds"])
                continue
            if mine["kind"] != family["kind"]:
                raise ValueError(
                    "metric %s merged with conflicting kinds %s/%s"
                    % (name, mine["kind"], family["kind"])
                )
            for labels, value in family["series"].items():
                existing = mine["series"].get(labels)
                if existing is None:
                    mine["series"][labels] = value
                elif mine["kind"] == "histogram":
                    mine["series"][labels] = _merge_histogram_series(
                        existing, value
                    )
                else:
                    mine["series"][labels] = existing + value

    # -- queries -------------------------------------------------------------------

    def names(self):
        return sorted(self.families)

    def value(self, name, default=0, **labels):
        """Sum of a family's series matching the given label subset."""
        family = self.families.get(name)
        if family is None:
            return default
        if family["kind"] == "histogram":
            raise ValueError("use quantile()/count() for histogram %s" % name)
        want = {(k, str(v)) for k, v in labels.items()}
        total, seen = 0, False
        for series_labels, value in family["series"].items():
            if want <= set(series_labels):
                total += value
                seen = True
        return total if seen else default

    def labels(self, name):
        """Every label set a family has a series for."""
        family = self.families.get(name)
        if family is None:
            return []
        return [dict(key) for key in family["series"]]

    def quantile(self, name, q, **labels):
        """q-quantile over the matching histogram series, merged."""
        family = self.families.get(name)
        if family is None or family["kind"] != "histogram":
            return None
        bounds = family["bounds"]
        counts, count, max_observed = None, 0, None
        want = {(k, str(v)) for k, v in labels.items()}
        for series_labels, series in family["series"].items():
            if not want <= set(series_labels):
                continue
            if counts is None:
                counts = list(series["counts"])
            else:
                counts = [a + b for a, b in zip(counts, series["counts"])]
            count += series["count"]
            if series["max"] is not None:
                max_observed = (
                    series["max"] if max_observed is None
                    else max(max_observed, series["max"])
                )
        if counts is None:
            return None
        return quantile_from_buckets(q, bounds, counts, count, max_observed)

    # -- export (delegates; see repro.obs.export) -----------------------------------

    def to_prometheus(self):
        from repro.obs.export import to_prometheus

        return to_prometheus(self)

    def to_json(self, indent=2):
        from repro.obs.export import to_json

        return to_json(self, indent=indent)

    def render(self):
        from repro.obs.export import render_metrics

        return render_metrics(self)


def _merge_histogram_series(a, b):
    merged = {
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "sum": a["sum"] + b["sum"],
        "count": a["count"] + b["count"],
        "min": a["min"] if b["min"] is None else (
            b["min"] if a["min"] is None else min(a["min"], b["min"])
        ),
        "max": a["max"] if b["max"] is None else (
            b["max"] if a["max"] is None else max(a["max"], b["max"])
        ),
    }
    return merged
