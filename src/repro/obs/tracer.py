"""Job tracing: nestable spans with typed counters.

The paper's evaluation (Figures 4-5) is built from per-stage numbers —
wall time of every job stage, how many bytes each shuffle moved and how
(zero-copy pages vs. structured rows), and how hard each worker's buffer
pool worked.  The runtime components keep global counters for those
quantities; this module adds *attribution*: a :class:`Tracer` maintains a
stack of open :class:`Span`\\ s (``job -> stage -> worker task``) and any
component can report a counter into whatever span is currently active.

The tracer is deliberately simple: the simulated cluster runs in one
thread, so the active span is a plain stack.  Components hold a tracer
reference and call :meth:`Tracer.add`; with no open span the call is a
no-op, so standalone use of (say) a :class:`~repro.storage.BufferPool`
outside a job costs one dictionary miss per event.

A finished top-level span becomes a :class:`Trace` (``tracer.last_trace``,
surfaced as ``PCCluster.last_trace``) that serializes with
:meth:`Trace.to_json` — the format written by ``BENCH_trace.json`` and
documented in README.md's Observability section.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager


class Span:
    """One timed node of a trace tree.

    ``kind`` classifies the span (``job``, ``phase``, ``stage``,
    ``task``); ``name`` identifies it within its kind (a stage kind, a
    worker id); ``detail`` is free-form human text.  ``counters`` holds
    only what was reported *directly* into this span; :meth:`totals`
    rolls descendants up.
    """

    __slots__ = ("name", "kind", "detail", "start", "end", "counters",
                 "children")

    def __init__(self, name, kind="span", detail=None):
        self.name = name
        self.kind = kind
        self.detail = detail
        self.start = time.perf_counter()
        self.end = None
        self.counters = {}
        self.children = []

    @property
    def duration_s(self):
        """Wall-clock seconds; live spans report time-so-far."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def inc(self, counter, value=1):
        """Add ``value`` to a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def totals(self):
        """This span's counters merged with all descendants' counters."""
        merged = dict(self.counters)
        for child in self.children:
            for name, value in child.totals().items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self):
        """JSON-ready representation (recursive)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "detail": self.detail,
            "duration_s": round(self.duration_s, 9),
            "counters": dict(self.counters),
            "totals": self.totals(),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a span (and its subtree) from :meth:`to_dict` output.

        The reconstructed span carries the serialized duration (anchored
        at ``start = 0``), counters, and children; derived quantities
        (``totals``) recompute identically, so a trace round-trips
        through JSON bit-for-bit.
        """
        span = cls(payload["name"], kind=payload.get("kind", "span"),
                   detail=payload.get("detail"))
        span.start = 0.0
        span.end = payload.get("duration_s", 0.0)
        span.counters = dict(payload.get("counters", {}))
        span.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span

    def __repr__(self):
        return "<Span %s:%s %.3fms>" % (
            self.kind, self.name, self.duration_s * 1e3
        )


class Trace:
    """A completed top-level span, ready for export and queries."""

    def __init__(self, root):
        self.root = root

    def spans(self, kind=None):
        """All spans (optionally of one kind), depth-first."""
        return [
            span for span in self.root.walk()
            if kind is None or span.kind == kind
        ]

    def totals(self):
        """Every counter in the trace, rolled up to one dict."""
        return self.root.totals()

    def to_dict(self):
        return self.root.to_dict()

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(Span.from_dict(payload))

    @classmethod
    def from_json(cls, text):
        """Parse a trace serialized with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


class Tracer:
    """Stack of open spans; the innermost one receives counters."""

    def __init__(self):
        self._stack = []
        #: the :class:`Trace` of the most recently closed top-level span.
        self.last_trace = None

    @property
    def active(self):
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name, kind="span", detail=None):
        """Open a child span of the current one for the with-block."""
        span = Span(name, kind=kind, detail=detail)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = time.perf_counter()
            self._stack.pop()
            if not self._stack:
                self.last_trace = Trace(span)

    def add(self, counter, value=1):
        """Report into the active span; no-op when no span is open."""
        if self._stack:
            stack_top = self._stack[-1]
            stack_top.counters[counter] = (
                stack_top.counters.get(counter, 0) + value
            )

    def event(self, name, kind="event", detail=None, counters=None):
        """Record an instantaneous child span carrying ``counters``.

        Used for point-in-time facts that deserve their own node in the
        trace tree — a worker blacklisted, a partition redistributed —
        rather than a bare counter on whatever span happens to be open.
        Returns the recorded span.
        """
        with self.span(name, kind=kind, detail=detail) as span:
            for counter, value in (counters or {}).items():
                span.inc(counter, value)
        return span
