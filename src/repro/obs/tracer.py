"""Job tracing: nestable spans with typed counters.

The paper's evaluation (Figures 4-5) is built from per-stage numbers —
wall time of every job stage, how many bytes each shuffle moved and how
(zero-copy pages vs. structured rows), and how hard each worker's buffer
pool worked.  The runtime components keep global counters for those
quantities; this module adds *attribution*: a :class:`Tracer` maintains a
stack of open :class:`Span`\\ s (``job -> stage -> worker task``) and any
component can report a counter into whatever span is currently active.

The tracer is deliberately simple: the simulated cluster runs in one
thread, so the active span is a plain stack.  Components hold a tracer
reference and call :meth:`Tracer.add`; with no open span the call is a
no-op, so standalone use of (say) a :class:`~repro.storage.BufferPool`
outside a job costs one dictionary miss per event.

A finished top-level span becomes a :class:`Trace` (``tracer.last_trace``,
surfaced as ``PCCluster.last_trace``) that serializes with
:meth:`Trace.to_json` — the format written by ``BENCH_trace.json`` and
documented in README.md's Observability section.  The last few completed
traces stay reachable through a small ring (``Tracer.recent_traces``,
surfaced as ``PCCluster.traces``), so back-to-back jobs do not clobber
each other's evidence.

Since PR 9 the trace layer is *distributed* (DESIGN §14): spans carry a
``pid`` and ``time.monotonic()`` timestamps, back-end processes run
their own :class:`Tracer` whose finished span batches ship back in the
result envelope, and the coordinator grafts them (clock-aligned) into
the job tree.  A span cut short by a worker death is marked
``truncated`` — it is evidence, not an error.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from contextlib import contextmanager

#: process-local span identity; unique per (pid, span_id) pair.
_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)

#: completed traces kept reachable per tracer (PCCluster.traces(n)).
TRACE_RING_SIZE = 16


class Span:
    """One timed node of a trace tree.

    ``kind`` classifies the span (``job``, ``phase``, ``stage``,
    ``task``, ``op`` for remote operators); ``name`` identifies it
    within its kind (a stage kind, a worker id); ``detail`` is free-form
    human text.  ``counters`` holds only what was reported *directly*
    into this span; :meth:`totals` rolls descendants up.

    Timestamps are ``time.monotonic()`` — the same clock the heartbeat
    slot publishes, so spans recorded in a back-end process can be
    shifted into the coordinator's frame by one per-child offset.
    ``pid`` is set on spans recorded in (or synthesized for) a back-end
    process; ``truncated`` marks a span closed by a crash or kill rather
    than completion; ``events`` carries flight-recorder dumps attached
    to this span (each a dict with at least ``ts`` and ``kind``).
    """

    __slots__ = ("name", "kind", "detail", "start", "end", "counters",
                 "children", "span_id", "parent_id", "pid", "truncated",
                 "events", "_duration")

    def __init__(self, name, kind="span", detail=None):
        self.name = name
        self.kind = kind
        self.detail = detail
        self.start = time.monotonic()
        self.end = None
        self.counters = {}
        self.children = []
        self.span_id = next(_span_ids)
        self.parent_id = None
        self.pid = None
        self.truncated = False
        self.events = []
        # Deserialized spans pin their duration so round-tripping is a
        # fixed point: start + duration - start loses the last float bit,
        # and to_json is asserted bit-identical across a round trip.
        self._duration = None

    @property
    def duration_s(self):
        """Wall-clock seconds; live spans report time-so-far."""
        if self._duration is not None:
            return self._duration
        end = self.end if self.end is not None else time.monotonic()
        return end - self.start

    def inc(self, counter, value=1):
        """Add ``value`` to a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def totals(self):
        """This span's counters merged with all descendants' counters."""
        merged = dict(self.counters)
        for child in self.children:
            for name, value in child.totals().items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def shift(self, delta_s):
        """Shift this subtree's timestamps (and event times) by a delta.

        The coordinator uses this to move a remote span batch from the
        child's ``time.monotonic()`` frame into its own, after the
        heartbeat clock-offset handshake estimated ``delta_s``.
        """
        for span in self.walk():
            span.start += delta_s
            if span.end is not None:
                span.end += delta_s
            for event in span.events:
                event["ts"] = event.get("ts", 0.0) + delta_s
        return self

    def to_dict(self, t0=None):
        """JSON-ready representation (recursive).

        Timestamps serialize *relative to the root's start* (``start_s``
        offsets), so a trace is position-independent: two processes'
        monotonic bases never leak into the JSON, and a deserialized
        trace is anchored at 0.  Optional facts (``pid``, ``truncated``,
        ``parent_id``, ``events``) appear only when set, keeping the
        format stable for traces that never crossed a process boundary.
        """
        if t0 is None:
            t0 = self.start
        payload = {
            "name": self.name,
            "kind": self.kind,
            "detail": self.detail,
            "span_id": self.span_id,
            "start_s": round(self.start - t0, 9),
            "duration_s": round(self.duration_s, 9),
            "counters": dict(self.counters),
            "totals": self.totals(),
            "children": [child.to_dict(t0) for child in self.children],
        }
        if self.pid is not None:
            payload["pid"] = self.pid
        if self.truncated:
            payload["truncated"] = True
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.events:
            payload["events"] = [
                dict(event, ts=round(event.get("ts", 0.0) - t0, 9))
                for event in self.events
            ]
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a span (and its subtree) from :meth:`to_dict` output.

        The reconstructed tree is anchored at the root's ``start = 0``
        with every descendant at its serialized relative offset; derived
        quantities (``totals``) recompute identically, so a trace
        round-trips through JSON bit-for-bit.
        """
        span = cls(payload["name"], kind=payload.get("kind", "span"),
                   detail=payload.get("detail"))
        span.start = payload.get("start_s", 0.0)
        span._duration = payload.get("duration_s", 0.0)
        span.end = span.start + span._duration
        span.counters = dict(payload.get("counters", {}))
        if "span_id" in payload:
            span.span_id = payload["span_id"]
        span.pid = payload.get("pid")
        span.truncated = bool(payload.get("truncated", False))
        span.parent_id = payload.get("parent_id")
        span.events = [dict(event) for event in payload.get("events", [])]
        span.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span

    def __repr__(self):
        return "<Span %s:%s %.3fms>" % (
            self.kind, self.name, self.duration_s * 1e3
        )


class Trace:
    """A completed top-level span, ready for export and queries."""

    def __init__(self, root):
        self.root = root

    def spans(self, kind=None):
        """All spans (optionally of one kind), depth-first."""
        return [
            span for span in self.root.walk()
            if kind is None or span.kind == kind
        ]

    def totals(self):
        """Every counter in the trace, rolled up to one dict."""
        return self.root.totals()

    def to_dict(self):
        return self.root.to_dict()

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a trace from :meth:`to_dict` output."""
        return cls(Span.from_dict(payload))

    @classmethod
    def from_json(cls, text):
        """Parse a trace serialized with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


class _NullSpan:
    """The span handed out by a disabled tracer: accepts, records nothing."""

    __slots__ = ()
    name = kind = detail = None
    start = 0.0
    end = 0.0
    duration_s = 0.0
    counters = {}
    children = ()
    events = ()
    span_id = parent_id = pid = None
    truncated = False

    def inc(self, counter, value=1):
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Stack of open spans; the innermost one receives counters.

    ``enabled=False`` turns the tracer into a sink: :meth:`span` yields
    a shared null span, :meth:`add` no-ops (the stack stays empty), and
    no trace is ever built — the zero-overhead baseline the tracing
    overhead budget in ``BENCH_trace.json`` is measured against.
    """

    def __init__(self, enabled=True):
        self._stack = []
        self.enabled = enabled
        #: the :class:`Trace` of the most recently closed top-level span.
        self.last_trace = None
        #: ring of the last few completed traces, oldest first.
        self.trace_ring = deque(maxlen=TRACE_RING_SIZE)
        #: identifies the current (or most recent) top-level span's
        #: trace; propagated to back-end processes inside task specs.
        self.trace_id = None

    @property
    def active(self):
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name, kind="span", detail=None):
        """Open a child span of the current one for the with-block."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = Span(name, kind=kind, detail=detail)
        if self._stack:
            parent = self._stack[-1]
            parent.children.append(span)
            span.parent_id = parent.span_id
        else:
            self.trace_id = "t%d-%d" % (os.getpid(), next(_trace_ids))
        self._stack.append(span)
        try:
            yield span
        finally:
            # abandon() may have force-closed this span already (crash
            # path); its end timestamp and truncated mark then stand.
            if self._stack and self._stack[-1] is span:
                span.end = time.monotonic()
                self._stack.pop()
                if not self._stack:
                    self.last_trace = Trace(span)
                    self.trace_ring.append(self.last_trace)

    def recent_traces(self, n=1):
        """The last ``n`` completed traces, most recent first."""
        ring = self.trace_ring
        if n <= 0:
            return []
        return [ring[-i] for i in range(1, min(n, len(ring)) + 1)]

    def abandon(self, truncated=True):
        """Force-close every open span (crash path in a back-end process).

        The spans get real end timestamps and, by default, the
        ``truncated`` mark; the bottom span's :class:`Trace` is returned
        (and becomes ``last_trace``) so partial evidence can ship in an
        error envelope.  No-op returning None when nothing is open.
        """
        if not self._stack:
            return None
        now = time.monotonic()
        bottom = self._stack[0]
        for span in self._stack:
            span.end = now
            span.truncated = truncated
        del self._stack[:]
        self.last_trace = Trace(bottom)
        self.trace_ring.append(self.last_trace)
        return self.last_trace

    def add(self, counter, value=1):
        """Report into the active span; no-op when no span is open."""
        if self._stack:
            stack_top = self._stack[-1]
            stack_top.counters[counter] = (
                stack_top.counters.get(counter, 0) + value
            )

    def event(self, name, kind="event", detail=None, counters=None):
        """Record an instantaneous child span carrying ``counters``.

        Used for point-in-time facts that deserve their own node in the
        trace tree — a worker blacklisted, a partition redistributed —
        rather than a bare counter on whatever span happens to be open.
        Returns the recorded span.
        """
        with self.span(name, kind=kind, detail=detail) as span:
            for counter, value in (counters or {}).items():
                span.inc(counter, value)
        return span
