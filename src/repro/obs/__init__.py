"""Observability: job traces, typed metrics, profiling, and exposition."""

from repro.obs.export import (
    HealthCheck,
    HealthStatus,
    render_metrics,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.obs.profiler import StageProfiler
from repro.obs.report import render_trace
from repro.obs.tracer import Span, Trace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "HealthCheck",
    "HealthStatus",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "StageProfiler",
    "Trace",
    "Tracer",
    "exponential_buckets",
    "render_metrics",
    "render_trace",
    "to_json",
    "to_prometheus",
]
