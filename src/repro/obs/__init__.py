"""Observability: job traces, typed metrics, profiling, and exposition."""

from repro.obs.events import FlightRecorder, read_ring
from repro.obs.export import (
    HealthCheck,
    HealthStatus,
    render_metrics,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.obs.profiler import StageProfiler
from repro.obs.report import render_trace
from repro.obs.timeline import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.top import ClusterTop
from repro.obs.tracer import Span, Trace, Tracer

__all__ = [
    "ClusterTop",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthCheck",
    "HealthStatus",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "StageProfiler",
    "Trace",
    "Tracer",
    "exponential_buckets",
    "read_ring",
    "render_metrics",
    "render_trace",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
]
