"""Observability: job traces, typed counters, and report rendering."""

from repro.obs.report import render_trace
from repro.obs.tracer import Span, Trace, Tracer

__all__ = ["Span", "Trace", "Tracer", "render_trace"]
