"""Cluster timeline export: merged traces as Chrome Trace Event JSON.

A distributed trace (DESIGN §14) is a tree; a timeline is how humans
read one.  :func:`to_chrome_trace` renders a :class:`~repro.obs.Trace`
into the Chrome Trace Event format — the JSON dialect both
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) load
directly — with one *process track per worker pid* plus a coordinator
track (pid 0) carrying the scheduler's own spans and its instants:
re-forks, SUSPECT/DEAD verdicts, retry/backoff decisions, blacklists.

Layout decisions:

* Tree spans (``job``/``phase``/``stage``/``task``/``op``) become
  ``B``/``E`` duration pairs.  A span records on the track of the pid it
  ran in (``span.pid``), defaulting to the coordinator track.
* Remote ``op`` spans are *coalesced* per operator per task (one span
  covering every batch), so two ops of one task overlap in time; Chrome
  requires strict nesting within a (pid, tid) lane, so each op name gets
  its own tid lane under the worker's pid.
* Instant kinds (``event``/``fault``/``retry``) and flight-recorder
  events attached to spans become ``i`` instants with process scope.
* ``M`` metadata events name the tracks, so Perfetto shows
  ``coordinator`` / ``worker pid 12345`` instead of bare numbers.

Timestamps are microseconds relative to the root span's start — clock
alignment already happened when the coordinator grafted remote spans,
so here every span is in one time base.
"""

from __future__ import annotations

import json

#: Synthetic pid of the coordinator track (real pids are never 0).
COORDINATOR_PID = 0
#: Main lane of each track; op spans get lanes above this.
MAIN_TID = 1

#: Span kinds rendered as instants ("i") rather than duration pairs:
#: they are point-in-time facts recorded via ``Tracer.event``.
INSTANT_KINDS = ("event", "fault", "retry")


def to_chrome_trace(trace):
    """Render a merged trace as a Chrome Trace Event JSON object.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``; dump it
    with ``json.dumps`` (or use :func:`write_chrome_trace`) and load the
    file in chrome://tracing or Perfetto.
    """
    root = trace.root
    t0 = root.start
    events = []
    tracks = set()
    op_lanes = {}  # (pid, op name) -> tid

    def lane_for(span, track_pid):
        if span.kind != "op":
            return MAIN_TID
        key = (track_pid, span.name)
        if key not in op_lanes:
            op_lanes[key] = MAIN_TID + 1 + sum(
                1 for pid, _ in op_lanes if pid == track_pid
            )
        return op_lanes[key]

    def emit(span):
        track_pid = span.pid if span.pid is not None else COORDINATOR_PID
        tracks.add(track_pid)
        tid = lane_for(span, track_pid)
        ts = (span.start - t0) * 1e6
        args = {"counters": dict(span.counters)}
        if span.detail:
            args["detail"] = span.detail
        if span.truncated:
            args["truncated"] = True
        name = "%s:%s" % (span.kind, span.name)
        if span.kind in INSTANT_KINDS:
            events.append({"ph": "i", "name": name, "ts": ts, "s": "p",
                           "pid": track_pid, "tid": tid, "args": args})
        else:
            end_ts = ts + span.duration_s * 1e6
            events.append({"ph": "B", "name": name, "ts": ts,
                           "pid": track_pid, "tid": tid, "args": args})
            for child in span.children:
                emit(child)
            events.append({"ph": "E", "name": name, "ts": end_ts,
                           "pid": track_pid, "tid": tid})
            for record in span.events:
                events.append({
                    "ph": "i", "name": "flight:%s" % record.get("kind", "?"),
                    "ts": (record.get("ts", span.start) - t0) * 1e6,
                    "s": "p", "pid": track_pid, "tid": tid,
                    "args": {key: value for key, value in record.items()
                             if key not in ("ts",)},
                })
            return
        for child in span.children:
            emit(child)

    emit(root)

    # Stable sort keeps generation order on ties, so a parent's B stays
    # before its child's B and a child's E before its parent's E even
    # when the timestamps are equal — the nesting Chrome requires.
    events.sort(key=lambda event: event["ts"])

    meta = []
    for pid in sorted(tracks):
        label = ("coordinator" if pid == COORDINATOR_PID
                 else "worker pid %d" % pid)
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "tid": MAIN_TID, "args": {"name": label}})
    for (pid, op_name), tid in sorted(op_lanes.items(),
                                      key=lambda item: (item[0][0], item[1])):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid, "args": {"name": "op %s" % op_name}})

    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path):
    """Export ``trace`` to a chrome://tracing-loadable JSON file."""
    payload = to_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return payload


def validate_chrome_trace(payload):
    """Check a trace-event payload is loadable; returns problem strings.

    Enforces what chrome://tracing actually needs: required keys per
    phase, instants carrying a scope, timestamps in non-decreasing order
    (metadata aside), and — per (pid, tid) lane — strictly matched and
    properly nested ``B``/``E`` pairs.  An empty list means valid; CI
    asserts exactly that on the TPC-H acceptance trace.
    """
    problems = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a traceEvents list"]
    stacks = {}  # (pid, tid) -> [names]
    last_ts = None
    for index, event in enumerate(payload["traceEvents"]):
        where = "event %d" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        phase = event.get("ph")
        if phase == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                problems.append("%s: missing %r" % (where, key))
        if phase not in ("B", "E", "i"):
            problems.append("%s: unsupported phase %r" % (where, phase))
            continue
        ts = event.get("ts")
        if last_ts is not None and ts is not None and ts < last_ts:
            problems.append("%s: ts %.3f out of order (< %.3f)"
                            % (where, ts, last_ts))
        if ts is not None:
            last_ts = ts
        lane = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(lane, []).append(event.get("name"))
        elif phase == "E":
            stack = stacks.setdefault(lane, [])
            if not stack:
                problems.append("%s: E with no open B on lane %r"
                                % (where, lane))
            elif stack[-1] != event.get("name"):
                problems.append("%s: E %r does not match open B %r"
                                % (where, event.get("name"), stack[-1]))
            else:
                stack.pop()
        elif phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append("%s: instant without a valid scope" % where)
    for lane, stack in stacks.items():
        if stack:
            problems.append("lane %r left %d span(s) open: %r"
                            % (lane, len(stack), stack))
    return problems
