"""Exposition of a :class:`~repro.obs.metrics.MetricsSnapshot`.

Three surfaces over the same snapshot:

* :func:`to_prometheus` — Prometheus text-exposition format.  Counters
  and gauges render one sample per series; histograms render the
  ``_bucket``/``_sum``/``_count`` triple plus summary-style
  ``{quantile="0.5|0.95|0.99"}`` series computed from the buckets, so a
  scrape sees per-stage and per-operator p50/p95/p99 latency directly.
* :func:`to_json` — the snapshot as a JSON document (``BENCH_metrics.json``
  and test fixtures).
* :func:`render_metrics` — a terminal summary (top counters, per-operator
  latency table), the metrics sibling of
  :func:`~repro.obs.report.render_trace`.

Plus :class:`HealthCheck`: a rule set evaluated from the snapshot
(buffer-pool hit rate, replication factor satisfied, blacklisted
workers, outstanding corruption) that turns the same numbers into a
ready/degraded verdict — ``PCCluster.health()``.
"""

from __future__ import annotations

import json

from repro.obs.metrics import EXPORT_QUANTILES


def _escape_label_value(value):
    return str(value).replace("\\", "\\\\").replace("\n", "\\n") \
        .replace('"', '\\"')


def _format_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) and \
            abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(label_pairs):
    if not label_pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in label_pairs
    )


def to_prometheus(snapshot):
    """The snapshot in Prometheus text-exposition format."""
    lines = []
    for name in snapshot.names():
        family = snapshot.families[name]
        kind = family["kind"]
        if family["help"]:
            lines.append("# HELP %s %s" % (name, family["help"]))
        lines.append("# TYPE %s %s" % (name, kind))
        if kind != "histogram":
            for labels, value in sorted(family["series"].items()):
                lines.append(
                    "%s%s %s" % (name, _format_labels(labels),
                                 _format_value(value))
                )
            continue
        bounds = family["bounds"]
        for labels, series in sorted(family["series"].items()):
            cumulative = 0
            for bound, count in zip(bounds, series["counts"]):
                cumulative += count
                lines.append("%s_bucket%s %d" % (
                    name,
                    _format_labels(labels + (("le", "%g" % bound),)),
                    cumulative,
                ))
            lines.append("%s_bucket%s %d" % (
                name, _format_labels(labels + (("le", "+Inf"),)),
                series["count"],
            ))
            lines.append("%s_sum%s %s" % (
                name, _format_labels(labels), _format_value(series["sum"])
            ))
            lines.append("%s_count%s %d" % (
                name, _format_labels(labels), series["count"]
            ))
        # Summary-style quantiles computed from the buckets: the p50/p95
        # operator-latency series the acceptance bench asserts on.
        for labels in sorted(family["series"]):
            for q in EXPORT_QUANTILES:
                value = snapshot.quantile(name, q, **dict(labels))
                lines.append("%s%s %s" % (
                    name,
                    _format_labels(labels + (("quantile", "%g" % q),)),
                    _format_value(value),
                ))
    return "\n".join(lines) + "\n"


def to_json(snapshot, indent=2):
    """The snapshot as a JSON document (sorted, reproducible)."""
    families = {}
    for name in snapshot.names():
        family = snapshot.families[name]
        series = []
        for labels, value in sorted(family["series"].items()):
            entry = {"labels": dict(labels)}
            if family["kind"] == "histogram":
                entry.update(value)
                entry["quantiles"] = {
                    "%g" % q: snapshot.quantile(name, q, **dict(labels))
                    for q in EXPORT_QUANTILES
                }
            else:
                entry["value"] = value
            series.append(entry)
        families[name] = {
            "kind": family["kind"],
            "help": family["help"],
            "series": series,
        }
        if family["kind"] == "histogram":
            families[name]["bounds"] = family["bounds"]
    return json.dumps(families, indent=indent, sort_keys=True)


def render_metrics(snapshot, max_series=6):
    """A terminal summary: counters/gauges, then latency quantiles."""
    lines = []
    histograms = []
    for name in snapshot.names():
        family = snapshot.families[name]
        if family["kind"] == "histogram":
            histograms.append(name)
            continue
        for labels, value in sorted(family["series"].items())[:max_series]:
            lines.append("  %-44s %s" % (
                "%s%s" % (name, _format_labels(labels)),
                _format_value(value),
            ))
        extra = len(family["series"]) - max_series
        if extra > 0:
            lines.append("  %-44s (+%d more series)" % (name, extra))
    if histograms:
        lines.append("")
        lines.append("  %-44s %10s %10s %10s %8s" % (
            "latency", "p50_ms", "p95_ms", "p99_ms", "count"
        ))
        for name in histograms:
            family = snapshot.families[name]
            for labels in sorted(family["series"]):
                quantiles = [
                    snapshot.quantile(name, q, **dict(labels))
                    for q in EXPORT_QUANTILES
                ]
                count = family["series"][labels]["count"]
                lines.append("  %-44s %10.3f %10.3f %10.3f %8d" % (
                    "%s%s" % (name, _format_labels(labels)),
                    *(1e3 * (q or 0.0) for q in quantiles),
                    count,
                ))
    return "metrics (cluster-wide):\n" + "\n".join(lines)


# ---------------------------------------------------------------------------
# Health checks
# ---------------------------------------------------------------------------

class HealthStatus:
    """One evaluated rule: name, verdict, human detail."""

    def __init__(self, name, ok, detail):
        self.name = name
        self.ok = ok
        self.detail = detail

    def __repr__(self):
        return "<HealthStatus %s %s: %s>" % (
            self.name, "OK" if self.ok else "FAIL", self.detail
        )


class HealthCheck:
    """A named rule set evaluated against a metrics snapshot.

    Rules are ``(name, fn)`` where ``fn(snapshot) -> (ok, detail)``.
    :meth:`default` builds the stock cluster rule set; callers can
    :meth:`add_rule` their own (e.g. an SLO on p95 stage latency).
    """

    def __init__(self, rules=None):
        self.rules = list(rules or [])

    def add_rule(self, name, fn):
        self.rules.append((name, fn))
        return self

    def evaluate(self, snapshot):
        return [
            HealthStatus(name, *fn(snapshot)) for name, fn in self.rules
        ]

    def ok(self, snapshot):
        return all(status.ok for status in self.evaluate(snapshot))

    @classmethod
    def default(cls, min_pool_hit_rate=0.5):
        check = cls()

        def pool_hit_rate(snapshot):
            pins = snapshot.value("pc_pool_pages_pinned_total")
            reloads = snapshot.value("pc_pool_reloads_total")
            if pins <= 0:
                return True, "no buffer-pool activity yet"
            rate = 1.0 - reloads / pins
            return rate >= min_pool_hit_rate, (
                "hit rate %.3f (%d pins, %d reloads), floor %.2f"
                % (rate, pins, reloads, min_pool_hit_rate)
            )

        def replication_satisfied(snapshot):
            satisfied = snapshot.value(
                "pc_cluster_replication_satisfied", default=1
            )
            return bool(satisfied), (
                "every page at its set's replication factor"
                if satisfied else "some pages are under-replicated"
            )

        def no_blacklisted_workers(snapshot):
            blacklisted = snapshot.value("pc_cluster_workers_blacklisted")
            active = snapshot.value("pc_cluster_workers_active")
            return blacklisted == 0, (
                "%d worker(s) blacklisted, %d active"
                % (blacklisted, active)
            )

        def corruption_healed(snapshot):
            failures = snapshot.value("pc_repl_checksum_failures_total")
            healed = snapshot.value("pc_repl_pages_healed_total")
            ok = failures == 0 or healed > 0
            return ok, (
                "%d corrupt cop%s detected, %d healed"
                % (failures, "y" if failures == 1 else "ies", healed)
            )

        check.add_rule("buffer-pool-hit-rate", pool_hit_rate)
        check.add_rule("replication-factor-satisfied", replication_satisfied)
        check.add_rule("no-blacklisted-workers", no_blacklisted_workers)
        check.add_rule("corruption-healed", corruption_healed)
        return check
