"""The flight recorder: a bounded ring of structured runtime events.

A distributed trace explains *where time went*; it cannot explain what
the runtime was doing in the moments before a worker died, because the
spans that would say so died with the process.  The flight recorder is
the black box for that gap (DESIGN §14): a fixed-capacity ring of tiny
structured events — task dispatch/complete, page ship, quarantine/heal,
re-fork, deadline kill, chaos signal — kept on the master and on every
back-end child, and dumped into the trace only when a job fails or a
worker dies.  Memory is constant by construction: ``capacity`` events of
at most :data:`RECORD_SLOT_BYTES` encoded bytes each.

Two forms share one class:

* **In-process** (the master): a plain ``deque(maxlen=capacity)``.
* **Shared** (each child): the same deque, *plus* every record is
  serialized into a fixed-width slot of a shared byte array the parent
  allocated — so when the child is SIGKILLed mid-task, the master still
  reads the child's last-N events post-mortem with :func:`read_ring`.
  The child is the only writer and each record fits one slot, so the
  ring needs no lock; a torn read decodes as garbage JSON and is simply
  skipped (the adjacent records survive).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque

#: Fixed slot width of the shared ring; one encoded event per slot.
RECORD_SLOT_BYTES = 256
#: Default ring capacity (events). 64 slots * 256 B = 16 KiB per child.
DEFAULT_CAPACITY = 64

#: Shared-ring byte size for the default capacity (what the parent
#: allocates per child process).
RING_BYTES = DEFAULT_CAPACITY * RECORD_SLOT_BYTES


class FlightRecorder:
    """Bounded ring of structured events; optionally mirrored to shm.

    ``record(kind, **fields)`` appends one event — a dict carrying at
    least ``seq`` (monotonic per recorder), ``ts`` (``time.monotonic()``
    of this process), ``pid``, and ``kind``.  ``buffer`` (optional) is a
    writable shared byte array (``multiprocessing.Array('c', ...)``)
    every record is also serialized into, slot ``(seq-1) % slots``.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, buffer=None,
                 clock=time.monotonic):
        self._ring = deque(maxlen=capacity)
        self._clock = clock
        self._buffer = buffer
        self._slots = (len(buffer) // RECORD_SLOT_BYTES) if buffer is not None \
            else 0
        self.seq = 0

    def record(self, kind, **fields):
        """Append one event; returns it (callers rarely need the value)."""
        self.seq += 1
        event = {"seq": self.seq, "ts": self._clock(), "pid": os.getpid(),
                 "kind": kind}
        event.update(fields)
        self._ring.append(event)
        if self._slots:
            self._write_slot(event)
        return event

    def _write_slot(self, event):
        data = _encode(event)
        if data is None:
            return
        offset = ((event["seq"] - 1) % self._slots) * RECORD_SLOT_BYTES
        self._buffer[offset:offset + RECORD_SLOT_BYTES] = data

    def snapshot(self, since_seq=0):
        """Events still in the ring with ``seq > since_seq``, in order."""
        return [dict(event) for event in self._ring
                if event["seq"] > since_seq]

    def __len__(self):
        return len(self._ring)


def _encode(event):
    """One event as a fixed-width, space-padded JSON record (or None).

    Records that do not fit a slot are retried with their extra fields
    dropped — the ``seq``/``ts``/``pid``/``kind`` core always fits.
    """
    try:
        data = json.dumps(event, sort_keys=True, default=str).encode("utf-8")
    except (TypeError, ValueError):
        data = None
    if data is None or len(data) > RECORD_SLOT_BYTES:
        core = {key: event[key] for key in ("seq", "ts", "pid", "kind")
                if key in event}
        core["clipped"] = True
        data = json.dumps(core, sort_keys=True).encode("utf-8")
        if len(data) > RECORD_SLOT_BYTES:  # pragma: no cover - core is tiny
            return None
    return data.ljust(RECORD_SLOT_BYTES, b" ")


def read_ring(buffer):
    """Decode a shared ring written by (another process's) recorder.

    Returns the surviving events sorted by ``seq``.  Empty slots, torn
    writes, and half-overwritten records fail JSON decoding and are
    skipped — post-mortem reads want whatever is legible, not perfection.
    """
    events = []
    raw = bytes(buffer[:])
    for slot in range(len(raw) // RECORD_SLOT_BYTES):
        chunk = raw[slot * RECORD_SLOT_BYTES:(slot + 1) * RECORD_SLOT_BYTES]
        chunk = chunk.rstrip(b"\x00 ")
        if not chunk:
            continue
        try:
            event = json.loads(chunk.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            continue  # torn write; neighbors are still legible
        if isinstance(event, dict) and "seq" in event:
            events.append(event)
    events.sort(key=lambda event: event["seq"])
    return events
