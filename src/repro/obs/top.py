"""``pc top``: a live console over a running cluster.

``python -m repro.obs.top`` is the operator's first look at a cluster:
one line per worker showing liveness (the Supervisor's ALIVE / SUSPECT /
DEAD verdict), the back-end pid, the task it is executing right now, its
consumption rate (rows/sec, differentiated from the heartbeat slot's
rows counter between samples), buffer-pool residency, and how many times
the back-end was re-forked.  Everything it shows is read from state the
runtime already publishes — heartbeat slots via ``Supervisor.vitals``
and the metrics registry via ``cluster.metrics()`` — so watching costs
the cluster nothing.

The module is importable without a cluster: :class:`ClusterTop` takes
any object with ``workers`` and a ``transport`` (whose supervisor may be
None on the simulated transport, where liveness is definitionally
ALIVE).  ``main()`` spins up a small demo cluster on the process
transport, runs a job in the background, and renders a bounded number of
frames — a smoke-testable stand-in for an interactive session.
"""

from __future__ import annotations

import time

_STATE_ORDER = {"alive": 0, "suspect": 1, "dead": 2}


class WorkerSample:
    """One worker's row in a frame."""

    __slots__ = ("worker_id", "state", "pid", "task_id", "rows",
                 "rows_per_s", "pool_bytes", "pool_capacity", "reforks")

    def __init__(self, worker_id, state, pid, task_id, rows, rows_per_s,
                 pool_bytes, pool_capacity, reforks):
        self.worker_id = worker_id
        self.state = state
        self.pid = pid
        self.task_id = task_id
        self.rows = rows
        self.rows_per_s = rows_per_s
        self.pool_bytes = pool_bytes
        self.pool_capacity = pool_capacity
        self.reforks = reforks


class ClusterTop:
    """Samples and renders per-worker liveness and throughput."""

    def __init__(self, cluster, clock=time.monotonic):
        self.cluster = cluster
        self.clock = clock
        self._last_rows = {}  # worker_id -> (sample time, rows)

    def sample(self):
        """One frame: a list of :class:`WorkerSample`, one per worker."""
        supervisor = getattr(self.cluster.transport, "supervisor", None)
        now = self.clock()
        frame = []
        for worker in self.cluster.workers:
            state, pid, task_id, rows = "alive", None, 0, 0
            if supervisor is not None:
                vitals = supervisor.vitals(worker.worker_id)
                if vitals is not None:
                    state = vitals.state
                    pid, task_id, rows = vitals.pid, vitals.task_id, \
                        vitals.rows
            if pid is None:
                pid = getattr(worker.backend, "child_pid", None)
            last = self._last_rows.get(worker.worker_id)
            rate = 0.0
            if last is not None and now > last[0] and rows >= last[1]:
                rate = (rows - last[1]) / (now - last[0])
            self._last_rows[worker.worker_id] = (now, rows)
            pool_stats = worker.storage.pool.stats()
            frame.append(WorkerSample(
                worker.worker_id, state, pid, task_id, rows, rate,
                pool_stats["in_memory_bytes"], pool_stats["capacity_bytes"],
                worker.refork_count,
            ))
        frame.sort(key=lambda sample: (-_STATE_ORDER.get(sample.state, 0),
                                       sample.worker_id))
        return frame

    def render(self, frame=None):
        """The frame as terminal-ready text (header + one row/worker)."""
        if frame is None:
            frame = self.sample()
        lines = [
            "%-10s %-8s %8s %6s %12s %12s %14s %7s"
            % ("WORKER", "STATE", "PID", "TASK", "ROWS", "ROWS/S",
               "POOL", "REFORK")
        ]
        for sample in frame:
            residency = "--"
            if sample.pool_capacity:
                residency = "%s/%s" % (
                    _human_bytes(sample.pool_bytes),
                    _human_bytes(sample.pool_capacity),
                )
            lines.append(
                "%-10s %-8s %8s %6s %12d %12.0f %14s %7d"
                % (
                    sample.worker_id,
                    sample.state.upper(),
                    sample.pid if sample.pid else "-",
                    sample.task_id or "-",
                    sample.rows,
                    sample.rows_per_s,
                    residency,
                    sample.reforks,
                )
            )
        return "\n".join(lines)


def _human_bytes(count):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return ("%d%s" if unit == "B" else "%.1f%s") % (count, unit)
        count /= 1024.0
    return "%dB" % count  # pragma: no cover - loop always returns


def main(argv=None):
    """Watch a demo cluster: bounded frames, suitable for smoke tests.

    Real deployments would point this at a long-lived job service
    (ROADMAP item 3); until then it demonstrates the console against a
    local process-transport cluster executing a TPC-H-shaped job.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live per-worker console for a repro cluster.",
    )
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--frames", type=int, default=5,
                        help="frames to render before exiting")
    parser.add_argument("--interval", type=float, default=0.2,
                        help="seconds between frames")
    parser.add_argument("--transport", default="process",
                        choices=("sim", "process"))
    options = parser.parse_args(argv)

    # Imported lazily: repro.cluster imports repro.obs at module load,
    # so a module-level import here would be circular.
    import threading

    from repro.cluster import PCCluster
    from repro.tpch import TpchSpec, customers_per_supplier_pc, \
        load_pc_customers

    cluster = PCCluster(n_workers=options.workers,
                        transport=options.transport)
    try:
        load_pc_customers(cluster, TpchSpec(n_customers=60, n_parts=40,
                                            n_suppliers=8, seed=9))
        stop_at = time.monotonic() + options.frames * options.interval

        def churn():
            while time.monotonic() < stop_at:
                customers_per_supplier_pc(cluster)

        job = threading.Thread(target=churn, daemon=True)
        job.start()
        top = ClusterTop(cluster)
        for frame in range(options.frames):
            print("frame %d/%d" % (frame + 1, options.frames))
            print(top.render())
            print()
            if frame + 1 < options.frames:
                time.sleep(options.interval)
        job.join(timeout=30)
    finally:
        cluster.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
