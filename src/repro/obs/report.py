"""Human-readable rendering of a :class:`~repro.obs.Trace`.

``render_trace`` turns the span tree into an indented text report with
per-span wall times and counters — the quick look at where a job spent
its time that ``examples/quickstart.py`` prints and the runtime bench
persists alongside ``BENCH_trace.json``.
"""

from __future__ import annotations

#: Counters promoted to the one-line summary next to each span.
_HEADLINE_COUNTERS = (
    "engine.rows_in",
    "engine.rows_out",
    "net.bytes_zero_copy",
    "net.bytes_rows",
    "pool.pages_pinned",
)


def _fmt_value(value):
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def _span_line(span, indent):
    parts = ["%s%s %s" % ("  " * indent, span.kind, span.name)]
    if span.detail:
        parts.append("(%s)" % span.detail)
    parts.append("%8.3f ms" % (span.duration_s * 1e3))
    headline = [
        "%s=%s" % (name, _fmt_value(span.counters[name]))
        for name in _HEADLINE_COUNTERS
        if name in span.counters
    ]
    if headline:
        parts.append(" ".join(headline))
    return "  ".join(parts)


def render_trace(trace, counters=True):
    """Render a trace as indented text, one line per span.

    With ``counters=True`` a rolled-up counter block is appended after
    the tree so job totals (network byte splits, buffer-pool activity,
    engine tuple counts) are readable without summing by hand.
    """
    lines = []

    def visit(span, indent):
        lines.append(_span_line(span, indent))
        for child in span.children:
            visit(child, indent + 1)

    visit(trace.root, 0)
    if counters:
        totals = trace.totals()
        if totals:
            lines.append("")
            lines.append("counters (rolled up over the whole job):")
            for name in sorted(totals):
                lines.append("  %-32s %s" % (name, _fmt_value(totals[name])))
    return "\n".join(lines)
