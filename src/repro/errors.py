"""Exception hierarchy for the PlinyCompute reproduction.

Every error raised by the library derives from :class:`PCError`, so callers
can catch one base class at an API boundary.  Subsystems raise the most
specific subclass that applies.
"""


class PCError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ObjectModelError(PCError):
    """Base class for errors raised by the PC object model."""


class BlockFullError(ObjectModelError):
    """An allocation did not fit in the active allocation block.

    This mirrors the out-of-memory fault the paper describes in Section 6.1:
    the execution engine catches it, retires the full page, and retries the
    allocation on a fresh page.
    """

    def __init__(self, requested, available):
        super().__init__(
            "allocation of %d bytes does not fit (only %d bytes free)"
            % (requested, available)
        )
        self.requested = requested
        self.available = available


class NoActiveBlockError(ObjectModelError):
    """``make_object`` was called with no active allocation block."""


class NullHandleError(ObjectModelError):
    """A null Handle was dereferenced."""


class DanglingHandleError(ObjectModelError):
    """A Handle referenced an object that was already deallocated."""


class UnknownTypeCodeError(ObjectModelError):
    """A type code had no registered class in the local registry.

    In a cluster this triggers the catalog's simulated ``.so`` fetch
    (Section 6.3); if the catalog does not know the type either, the error
    propagates to the caller.
    """

    def __init__(self, type_code):
        super().__init__("unknown type code %d" % type_code)
        self.type_code = type_code


class TypeRegistrationError(ObjectModelError):
    """A type could not be registered (duplicate name, bad field spec...)."""


class CrossBlockWriteError(ObjectModelError):
    """An illegal mutation on a block that does not permit it."""


class CatalogError(PCError):
    """Base class for catalog-manager errors."""


class StorageError(PCError):
    """Base class for storage subsystem errors."""


class BufferPoolExhaustedError(StorageError):
    """The buffer pool could not evict enough pages to satisfy a request."""


class DatabaseNotFoundError(StorageError):
    """A database name did not exist in the distributed storage manager."""


class SetNotFoundError(StorageError):
    """A set name did not exist in the given database."""


class PageReloadError(StorageError):
    """A spilled page could not be reloaded into the buffer pool.

    Raised on an (injected or real) I/O fault while reading a spill file.
    The spill file itself survives, so the reload can be retried — inside
    a job the scheduler's stage retry does exactly that.
    """


class PageCorruptionError(StorageError):
    """A page's bytes failed their CRC32 integrity check.

    Raised when a spilled page reloads with a checksum mismatch or a
    network transfer arrives corrupted.  The replication layer reacts by
    quarantining the bad copy and re-fetching the page from a healthy
    replica; corrupted bytes are never handed to a query.
    """


class ReplicationError(StorageError):
    """The replication layer could not honor a set's replication factor.

    Raised when a page has no healthy live replica left (data loss) or a
    replication factor cannot be placed on the attached workers.
    """


class LambdaError(PCError):
    """Base class for errors in the lambda-calculus layer."""


class TcapError(PCError):
    """Base class for TCAP compilation / parsing / optimization errors."""


class TcapParseError(TcapError):
    """The textual TCAP program could not be parsed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class PlanTypeError(TcapError):
    """A compiled plan failed static type verification at submit time.

    Raised by :func:`repro.tcap.verify.verify_program` before the
    scheduler dispatches anything, carrying the offending statement's
    TCAP text so the error points at the plan, not at a worker
    traceback.
    """

    def __init__(self, message, statement=None):
        if statement is not None:
            message = "%s\n  in: %s" % (message, statement.to_text())
        super().__init__(message)
        self.statement = statement


class PlanningError(PCError):
    """The physical planner could not produce a valid pipeline plan."""


class ExecutionError(PCError):
    """A pipeline stage failed while processing a vector list."""


class ClusterError(PCError):
    """Base class for distributed-runtime errors."""


class WorkerCrashError(ClusterError):
    """The simulated worker back-end process crashed while running user code.

    The front-end process catches this and re-forks the back end, mirroring
    the dual-process design of Section 2.
    """


class TaskDeadlineError(WorkerCrashError):
    """A dispatched task overran its wall-clock deadline and was killed.

    Raised by the process transport when a back-end process is still alive
    but has not produced its result within ``RetryPolicy.timeout_s`` real
    seconds: the supervisor SIGKILLs the wedged child and the front-end
    re-forks it.  A :class:`WorkerCrashError` subclass so the scheduler's
    recovery machinery runs unchanged — but typed, so the retry loop can
    book the failure as a *timeout* rather than a crash even when the
    injectable policy clock never advanced.
    """

    #: Consulted by the scheduler's retry loop alongside
    #: ``RetryPolicy.timed_out`` — real wall time and simulated clock time
    #: reach the same verdict through different channels.
    deadline_exceeded = True


class InjectedFaultError(ClusterError):
    """A deterministic fault fired by a :class:`~repro.cluster.FaultInjector`."""


class BackendCrashedError(ClusterError):
    """A dispatch reached a back-end that already crashed.

    Deliberately *not* a :class:`WorkerCrashError`: the crash already
    happened and was reported; re-using the dead back-end without a
    ``refork_backend()`` is a caller bug, not a new crash to retry.
    """


class TransferDroppedError(ClusterError):
    """A network transfer was dropped and its retry budget is exhausted."""


class WorkerLostError(ClusterError):
    """A worker exhausted its retry budget and was declared permanently dead.

    Internal control-flow signal: the scheduler catches it, blacklists the
    worker, redistributes its durable partitions, and restarts the job on
    the survivors (when the :class:`~repro.cluster.RetryPolicy` allows).
    """

    def __init__(self, worker_id, reason):
        super().__init__(
            "worker %r lost: %s" % (worker_id, reason)
        )
        self.worker_id = worker_id
        self.reason = reason


class LinAlgError(PCError):
    """Base class for lilLinAlg errors (dimension mismatch, parse errors...)."""


class DslParseError(LinAlgError):
    """The lilLinAlg DSL source could not be parsed."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = "line %d" % line
            if column is not None:
                location += ", column %d" % column
            message = "%s: %s" % (location, message)
        super().__init__(message)
        self.line = line
        self.column = column


class BaselineError(PCError):
    """Base class for errors in the Spark-like baseline engine."""
