"""The baseline's Dataset API: a relational, columnar layer over RDDs.

Mirrors Spark's Dataset/Dataframe just enough for the paper's
experiments: data can be written/read in a Parquet-like columnar format
(cheaper to decode than row pickles), simple column selections and
filters run against the columnar form — but anything non-relational
(user functions over whole objects) must convert to an RDD first, the
exact conversion the paper identifies as the mllib Dataset k-means
bottleneck at the largest scales (Section 8.5.3).
"""

from __future__ import annotations

from repro.errors import BaselineError


class ParquetStore:
    """Columnar files: per-column pickled arrays in simulated HDFS."""

    def __init__(self, context):
        self.context = context

    def write(self, path, schema, rows):
        columns = {name: [] for name in schema}
        for row in rows:
            for name, value in zip(schema, row):
                columns[name].append(value)
        self.context.hdfs.write(
            "%s/_schema" % path, [list(schema)]
        )
        for name in schema:
            self.context.hdfs.write(
                "%s/%s" % (path, name), [columns[name]]
            )

    def read(self, path):
        schema = self.context.hdfs.read("%s/_schema" % path)[0]
        columns = {
            name: self.context.hdfs.read("%s/%s" % (path, name))[0]
            for name in schema
        }
        return schema, columns


class Dataset:
    """A schema-carrying, columnar dataset."""

    def __init__(self, context, schema, columns):
        self.context = context
        self.schema = list(schema)
        self.columns = columns

    @classmethod
    def read_parquet(cls, context, path):
        schema, columns = ParquetStore(context).read(path)
        return cls(context, schema, columns)

    def write_parquet(self, path):
        ParquetStore(self.context).write(path, self.schema, self._rows())

    def _rows(self):
        cols = [self.columns[name] for name in self.schema]
        return list(zip(*cols)) if cols else []

    def count(self):
        for name in self.schema:
            return len(self.columns[name])
        return 0

    def select(self, *names):
        """Columnar projection — no row materialization."""
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise BaselineError("unknown columns %s" % missing)
        return Dataset(
            self.context, names,
            {name: self.columns[name] for name in names},
        )

    def where(self, column, predicate):
        """Columnar filter on one column."""
        mask = [predicate(v) for v in self.columns[column]]
        return Dataset(
            self.context, self.schema,
            {
                name: [v for v, keep in zip(vals, mask) if keep]
                for name, vals in self.columns.items()
            },
        )

    def to_rdd(self):
        """Convert to an RDD of row tuples.

        This is the expensive boundary: rows are materialized as objects
        and *serialized into the RDD's storage format*, reproducing the
        Dataset->RDD conversion cost the paper measured for mllib
        k-means on its largest input.
        """
        rows = self._rows()
        serde = self.context.serde
        rows = serde.loads(serde.dumps(rows))
        return self.context.parallelize(rows)
