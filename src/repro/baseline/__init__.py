"""The Spark-like baseline engine used as the benchmark comparator."""

from repro.baseline.dataset import Dataset, ParquetStore
from repro.baseline.rdd import RDD, BaselineContext, Broadcast
from repro.baseline.serde import KryoSerde, SimulatedHDFS

__all__ = [
    "BaselineContext",
    "Broadcast",
    "Dataset",
    "KryoSerde",
    "ParquetStore",
    "RDD",
    "SimulatedHDFS",
]
