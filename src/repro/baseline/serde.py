"""Serialization for the Spark-like baseline engine.

The baseline models the managed-runtime cost structure the paper attacks:
objects must be *serialized* whenever they cross a storage or shuffle
boundary and *deserialized* on the other side.  ``pickle`` plays the role
of Kryo; the CPU it burns is real, which is exactly the point of the
PC-vs-baseline benchmarks — PC pages move with zero serde while the
baseline pays per object.
"""

from __future__ import annotations

import pickle


class KryoSerde:
    """Pickle-backed serializer with byte/call accounting."""

    def __init__(self):
        self.serialized_bytes = 0
        self.deserialized_bytes = 0
        self.serialize_calls = 0
        self.deserialize_calls = 0

    def dumps(self, obj):
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.serialized_bytes += len(data)
        self.serialize_calls += 1
        return data

    def loads(self, data):
        self.deserialized_bytes += len(data)
        self.deserialize_calls += 1
        return pickle.loads(data)

    def stats(self):
        return {
            "serialized_bytes": self.serialized_bytes,
            "deserialized_bytes": self.deserialized_bytes,
            "serialize_calls": self.serialize_calls,
            "deserialize_calls": self.deserialize_calls,
        }

    def reset(self):
        self.serialized_bytes = 0
        self.deserialized_bytes = 0
        self.serialize_calls = 0
        self.deserialize_calls = 0


class SimulatedHDFS:
    """A named store of serialized partition blobs.

    Reading always deserializes (the Table 3 "hot HDFS" configuration:
    the bytes are cached in RAM, the serde cost is not avoidable).
    """

    def __init__(self, serde):
        self.serde = serde
        self._files = {}  # path -> [partition blobs]

    def write(self, path, partitions):
        self._files[path] = [self.serde.dumps(part) for part in partitions]

    def read(self, path):
        try:
            blobs = self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        return [self.serde.loads(blob) for blob in blobs]

    def exists(self, path):
        return path in self._files

    def size_of(self, path):
        return sum(len(blob) for blob in self._files.get(path, []))
