"""Serialization for the Spark-like baseline engine.

The baseline models the managed-runtime cost structure the paper attacks:
objects must be *serialized* whenever they cross a storage or shuffle
boundary and *deserialized* on the other side.  ``pickle`` plays the role
of Kryo; the CPU it burns is real, which is exactly the point of the
PC-vs-baseline benchmarks — PC pages move with zero serde while the
baseline pays per object.
"""

from __future__ import annotations

import pickle

from repro.obs import MetricsRegistry


class KryoSerde:
    """Pickle-backed serializer with byte/call accounting."""

    def __init__(self, metrics=None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_serialized_bytes = self.metrics.counter(
            "baseline_serde_serialized_bytes_total",
            help="Bytes produced by baseline serialization")
        self._c_deserialized_bytes = self.metrics.counter(
            "baseline_serde_deserialized_bytes_total",
            help="Bytes consumed by baseline deserialization")
        self._c_serialize_calls = self.metrics.counter(
            "baseline_serde_serialize_calls_total",
            help="Baseline serialize invocations")
        self._c_deserialize_calls = self.metrics.counter(
            "baseline_serde_deserialize_calls_total",
            help="Baseline deserialize invocations")

    @property
    def serialized_bytes(self):
        return self._c_serialized_bytes.value

    @property
    def deserialized_bytes(self):
        return self._c_deserialized_bytes.value

    @property
    def serialize_calls(self):
        return self._c_serialize_calls.value

    @property
    def deserialize_calls(self):
        return self._c_deserialize_calls.value

    def dumps(self, obj):
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._c_serialized_bytes.inc(len(data))
        self._c_serialize_calls.inc()
        return data

    def loads(self, data):
        self._c_deserialized_bytes.inc(len(data))
        self._c_deserialize_calls.inc()
        return pickle.loads(data)

    def stats(self):
        return {
            "serialized_bytes": self.serialized_bytes,
            "deserialized_bytes": self.deserialized_bytes,
            "serialize_calls": self.serialize_calls,
            "deserialize_calls": self.deserialize_calls,
        }

    def reset(self):
        self._c_serialized_bytes.reset()
        self._c_deserialized_bytes.reset()
        self._c_serialize_calls.reset()
        self._c_deserialize_calls.reset()


class SimulatedHDFS:
    """A named store of serialized partition blobs.

    Reading always deserializes (the Table 3 "hot HDFS" configuration:
    the bytes are cached in RAM, the serde cost is not avoidable).
    """

    def __init__(self, serde):
        self.serde = serde
        self._files = {}  # path -> [partition blobs]

    def write(self, path, partitions):
        self._files[path] = [self.serde.dumps(part) for part in partitions]

    def read(self, path):
        try:
            blobs = self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        return [self.serde.loads(blob) for blob in blobs]

    def exists(self, path):
        return path in self._files

    def size_of(self, path):
        return sum(len(blob) for blob in self._files.get(path, []))
