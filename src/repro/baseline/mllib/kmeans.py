"""mllib-style k-means for the baseline engine (Section 8.5.1).

Algorithmically matched to the PC implementation: random initialization,
Lloyd iterations, and the norm lower-bound trick
``||a-b|| >= |(||a|| - ||b||)|`` to skip distance computations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BaselineError


def closest_center(point, point_norm, centers, center_norms):
    """Index of the nearest center, using the norm lower bound."""
    best_index = 0
    best_dist = None
    for index, center in enumerate(centers):
        bound = point_norm - center_norms[index]
        if best_dist is not None and bound * bound >= best_dist:
            continue
        delta = point - center
        dist = float(delta @ delta)
        if best_dist is None or dist < best_dist:
            best_dist = dist
            best_index = index
    return best_index, best_dist


class KMeansModel:
    def __init__(self, centers):
        self.centers = np.asarray(centers)

    def predict(self, point):
        norms = np.linalg.norm(self.centers, axis=1)
        index, _d = closest_center(
            np.asarray(point), float(np.linalg.norm(point)),
            self.centers, norms,
        )
        return index


def initialize(points_rdd, k, seed=0):
    """Random init: sample k starting centers (one cluster pass)."""
    sample = points_rdd.take(max(k * 20, k))
    if len(sample) < k:
        raise BaselineError("fewer points than clusters")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(sample), size=k, replace=False)
    return np.array([sample[i] for i in chosen])


def train(points_rdd, k, iterations, seed=0):
    """Lloyd's algorithm over the RDD; returns (model, per-iter centers)."""
    centers = initialize(points_rdd, k, seed=seed)
    history = []
    for _iteration in range(iterations):
        centers = _lloyd_step(points_rdd, centers)
        history.append(centers.copy())
    return KMeansModel(centers), history


def _lloyd_step(points_rdd, centers):
    context = points_rdd.context
    shared = context.broadcast(
        (centers, np.linalg.norm(centers, axis=1))
    )

    def assign(index, partition):
        local_centers, norms = shared.value(index)
        out = []
        for point in partition:
            point = np.asarray(point)
            idx, _d = closest_center(
                point, float(np.linalg.norm(point)), local_centers, norms
            )
            out.append((idx, (point, 1)))
        return out

    from repro.baseline.rdd import RDD

    assigned = RDD(context, "map_partitions_indexed", [points_rdd],
                   fn=assign)
    sums = assigned.reduce_by_key(
        lambda a, b: (a[0] + b[0], a[1] + b[1])
    ).collect()
    new_centers = centers.copy()
    for idx, (total, count) in sums:
        new_centers[idx] = total / count
    return new_centers
