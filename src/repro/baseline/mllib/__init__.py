"""mllib-style library on the baseline engine (the Spark comparators)."""

from repro.baseline.mllib import gmm, kmeans, lda, linalg
from repro.baseline.mllib.linalg import RowMatrix, linear_regression

__all__ = ["RowMatrix", "gmm", "kmeans", "lda", "linalg",
           "linear_regression"]
