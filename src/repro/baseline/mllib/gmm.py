"""mllib-style Gaussian mixture EM for the baseline engine.

Matched to the PC implementation except for the one documented
difference the paper calls out: mllib avoids underflow by *thresholding*
responsibilities, while the PC code uses the log-space trick.
"""

from __future__ import annotations

import numpy as np


class GaussianMixtureModel:
    def __init__(self, weights, means, covariances):
        self.weights = np.asarray(weights)
        self.means = np.asarray(means)
        self.covariances = np.asarray(covariances)


def initialize(points_rdd, k, seed=0):
    """Random initialization shared (by construction) with the PC code."""
    sample = np.asarray(points_rdd.take(max(20 * k, k)))
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(sample), size=k, replace=False)
    means = sample[chosen]
    d = sample.shape[1]
    cov = np.cov(sample.T) + 1e-3 * np.eye(d)
    return (
        np.full(k, 1.0 / k),
        means,
        np.array([cov.copy() for _ in range(k)]),
    )


def precompute_precisions(covariances):
    """Invert each covariance once per EM step (driver side)."""
    precisions = []
    for cov in covariances:
        d = cov.shape[0]
        try:
            inv = np.linalg.inv(cov)
            _sign, logdet = np.linalg.slogdet(cov)
        except np.linalg.LinAlgError:
            cov = cov + 1e-6 * np.eye(d)
            inv = np.linalg.inv(cov)
            _sign, logdet = np.linalg.slogdet(cov)
        precisions.append((inv, logdet))
    return precisions


def _gaussian_pdf(points, mean, precision):
    d = points.shape[1]
    inv, logdet = precision
    delta = points - mean
    mahalanobis = np.einsum("ij,jk,ik->i", delta, inv, delta)
    log_p = -0.5 * (mahalanobis + logdet + d * np.log(2 * np.pi))
    return np.exp(log_p)


def em_step(points_rdd, weights, means, covariances, threshold=1e-300):
    """One EM iteration; responsibilities via thresholding (mllib style)."""
    context = points_rdd.context
    k, d = means.shape
    precisions = precompute_precisions(covariances)
    shared = context.broadcast((weights, means, precisions))

    def accumulate(index, partition):
        w, mu, precs = shared.value(index)
        points = np.asarray(list(partition))
        if points.size == 0:
            return []
        densities = np.stack([
            w[j] * _gaussian_pdf(points, mu[j], precs[j]) for j in range(k)
        ], axis=1)
        densities = np.maximum(densities, threshold)  # the mllib trick
        resp = densities / densities.sum(axis=1, keepdims=True)
        stats = []
        for j in range(k):
            r = resp[:, j]
            weight_sum = float(r.sum())
            mean_sum = r @ points
            cov_sum = (points * r[:, None]).T @ points
            stats.append((j, (weight_sum, mean_sum, cov_sum)))
        return stats

    from repro.baseline.rdd import RDD

    stats = RDD(context, "map_partitions_indexed", [points_rdd],
                fn=accumulate)
    merged = dict(stats.reduce_by_key(
        lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2])
    ).collect())

    total = sum(entry[0] for entry in merged.values())
    new_weights = np.zeros(k)
    new_means = np.zeros((k, d))
    new_covs = np.zeros((k, d, d))
    for j in range(k):
        weight_sum, mean_sum, cov_sum = merged.get(
            j, (1e-12, np.zeros(d), 1e-6 * np.eye(d))
        )
        new_weights[j] = weight_sum / total
        new_means[j] = mean_sum / weight_sum
        new_covs[j] = (
            cov_sum / weight_sum - np.outer(new_means[j], new_means[j])
            + 1e-6 * np.eye(d)
        )
    return new_weights, new_means, new_covs


def train(points_rdd, k, iterations, seed=0):
    """Fit a GMM by EM; returns the model."""
    weights, means, covariances = initialize(points_rdd, k, seed=seed)
    for _iteration in range(iterations):
        weights, means, covariances = em_step(
            points_rdd, weights, means, covariances
        )
    return GaussianMixtureModel(weights, means, covariances)
