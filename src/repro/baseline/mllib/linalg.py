"""mllib-style distributed linear algebra for the baseline engine.

A :class:`RowMatrix` is an RDD of numpy row vectors, mirroring Spark
mllib's ``RowMatrix``: Gram matrices and matrix products are computed by
aggregating per-partition partial results to the driver.  Used by the
Table 2 benchmark as the "Spark mllib" comparator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BaselineError


class RowMatrix:
    """A distributed matrix stored as an RDD of rows."""

    def __init__(self, rows_rdd, n_cols=None):
        self.rows = rows_rdd
        self._n_cols = n_cols

    @property
    def n_cols(self):
        if self._n_cols is None:
            first = self.rows.take(1)
            if not first:
                raise BaselineError("empty RowMatrix")
            self._n_cols = len(first[0])
        return self._n_cols

    def gramian(self):
        """Compute ``X^T X`` by summing per-partition outer products."""
        d = self.n_cols

        def partial(partition):
            acc = np.zeros((d, d))
            for row in partition:
                acc += np.outer(row, row)
            return [acc]

        partials = self.rows.map_partitions(partial).collect()
        return sum(partials, np.zeros((d, d)))

    def transpose_multiply_vector(self, y_rdd):
        """Compute ``X^T y`` where ``y`` is a row-aligned RDD of scalars.

        Rows and responses are zipped by joining on a synthetic index —
        the shuffle-heavy path a naive mllib user ends up with.
        """
        indexed_rows = self.rows.map_partitions(
            lambda part: [(i, r) for i, r in enumerate(part)]
        )
        # Partition-local zip: both RDDs were created with aligned
        # partitions, so pairing within partitions is safe.
        d = self.n_cols

        def partial(pair_part):
            acc = np.zeros(d)
            for row, y in pair_part:
                acc += row * y
            return [acc]

        zipped = _zip_partitions(self.rows, y_rdd)
        partials = zipped.map_partitions(partial).collect()
        return sum(partials, np.zeros(d))

    def multiply_local(self, local):
        """``X @ A`` for a small driver-side matrix ``A`` (broadcast)."""
        local = np.asarray(local)
        shared = self.rows.context.broadcast(local)

        def apply_block(index, partition):
            a = shared.value(index)
            return [row @ a for row in partition]

        from repro.baseline.rdd import RDD

        return RowMatrix(
            RDD(self.rows.context, "map_partitions_indexed",
                [self.rows], fn=apply_block),
            n_cols=local.shape[1],
        )

    def nearest_neighbor(self, query, metric=None):
        """Row index minimizing the (A-weighted) squared distance."""
        query = np.asarray(query)
        metric = np.eye(len(query)) if metric is None else np.asarray(metric)
        shared = self.rows.context.broadcast((query, metric))

        def partial(index, partition):
            q, a = shared.value(index)
            best = None
            for offset, row in enumerate(partition):
                delta = row - q
                dist = float(delta @ a @ delta)
                if best is None or dist < best[0]:
                    best = (dist, index, offset, row)
            return [best] if best is not None else []

        from repro.baseline.rdd import RDD

        candidates = RDD(
            self.rows.context, "map_partitions_indexed", [self.rows],
            fn=partial,
        ).collect()
        return min(candidates, key=lambda c: c[0])


def _zip_partitions(left, right):
    """Pair two partition-aligned RDDs element-wise (driver-side)."""
    left_parts = left._compute_all()
    right_parts = right._compute_all()
    context = left.context
    paired = [
        list(zip(lp, rp)) for lp, rp in zip(left_parts, right_parts)
    ]
    return context.parallelize(
        [record for part in paired for record in part]
    )


def linear_regression(x_matrix, y_rdd):
    """OLS through the normal equations, mllib style."""
    gram = x_matrix.gramian()
    xty = x_matrix.transpose_multiply_vector(y_rdd)
    return np.linalg.solve(gram, xty)
