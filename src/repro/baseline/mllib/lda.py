"""Word-based, non-collapsed Gibbs LDA on the baseline engine.

This is the "Spark expert" implementation of Section 8.5.1, with the four
tuning levels of Table 4 selectable via :class:`LdaTuning`:

* ``vanilla``       — plain shuffle joins, generic (slow) multinomial;
* ``join_hint``     — broadcast-join the topic/word model instead of
  shuffling the 700M-triple side;
* ``persist``       — additionally persist the joined triples reused by
  both aggregations;
* ``hand_multinomial`` — additionally replace the generic multinomial
  sampler with the hand-coded vectorized one.

Each level subsumes the previous, exactly as in the paper's narrative.
"""

from __future__ import annotations

import numpy as np

from repro.ml.sampling import dirichlet, multinomial_fast, multinomial_slow

TUNINGS = ("vanilla", "join_hint", "persist", "hand_multinomial")


class LdaTuning:
    """Which of the Table 4 tuning steps are active."""

    def __init__(self, level="vanilla"):
        if level not in TUNINGS:
            raise ValueError("unknown tuning level %r" % level)
        self.level = level
        index = TUNINGS.index(level)
        self.broadcast_join = index >= 1
        self.force_persist = index >= 2
        self.fast_multinomial = index >= 3


class LdaState:
    """The model state carried across Gibbs iterations."""

    def __init__(self, theta, phi):
        self.theta = theta  # doc id -> topic probabilities (k,)
        self.phi = phi  # word id -> per-topic probabilities (k,)


def initialize(n_docs, dictionary_size, n_topics, seed=0):
    """Random Dirichlet initialization of theta and phi columns."""
    rng = np.random.default_rng(seed)
    theta = {
        doc: dirichlet(rng, np.ones(n_topics)) for doc in range(n_docs)
    }
    word_weights = rng.random((n_topics, dictionary_size)) + 0.1
    word_weights /= word_weights.sum(axis=1, keepdims=True)
    phi = {word: word_weights[:, word].copy()
           for word in range(dictionary_size)}
    return LdaState(theta, phi)


def gibbs_iteration(context, triples_rdd, state, n_topics, tuning,
                    alpha=0.1, beta=0.1, seed=0):
    """One full Gibbs sweep; returns the new state.

    ``triples_rdd`` holds (doc, word, count) records.  The sweep is the
    join-heavy dance the paper describes: triples join with the per-doc
    topic vector and the per-word topic column, topic assignments are
    sampled, and two aggregations rebuild the doc-topic and word-topic
    count matrices from which fresh theta/phi are drawn.
    """
    sample = (
        multinomial_fast if tuning.fast_multinomial else multinomial_slow
    )
    rng = np.random.default_rng(seed)

    theta_rdd = context.parallelize(list(state.theta.items()))
    phi_rdd = context.parallelize(list(state.phi.items()))
    by_doc = triples_rdd.map(lambda t: (t[0], (t[1], t[2])))

    # Join triples with theta (by doc), then with phi (by word) — the
    # many-to-one join the paper sizes at 700 GB on its corpus.
    with_theta = by_doc.join(theta_rdd, broadcast_hint=tuning.broadcast_join)
    by_word = with_theta.map(
        lambda kv: (kv[1][0][0], (kv[0], kv[1][0][1], kv[1][1]))
    )
    with_both = by_word.join(phi_rdd, broadcast_hint=tuning.broadcast_join)

    def assign(kv):
        word, ((doc, count, theta_d), phi_w) = kv
        probabilities = theta_d * phi_w
        counts = sample(rng, count, probabilities)
        return (doc, word, counts)

    assignments = with_both.map(assign)
    if tuning.force_persist:
        assignments = assignments.persist()

    doc_counts = dict(
        assignments.map(lambda t: (t[0], t[2]))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    word_counts = dict(
        assignments.map(lambda t: (t[1], t[2]))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    if tuning.force_persist:
        assignments.unpersist()

    new_theta = {
        doc: dirichlet(rng, alpha + doc_counts.get(doc, 0.0))
        for doc in state.theta
    }
    # Per-topic word totals normalize phi columns; sample new phi rows
    # topic-by-topic, then slice back into per-word columns.
    k = n_topics
    dictionary = sorted(state.phi)
    matrix = np.zeros((k, len(dictionary)))
    for column, word in enumerate(dictionary):
        counts = word_counts.get(word)
        if counts is not None:
            matrix[:, column] = counts
    sampled = np.stack([
        dirichlet(rng, beta + matrix[topic]) for topic in range(k)
    ])
    new_phi = {
        word: sampled[:, column].copy()
        for column, word in enumerate(dictionary)
    }
    return LdaState(new_theta, new_phi)


def run(context, triples, n_docs, dictionary_size, n_topics, iterations,
        tuning=None, seed=0):
    """Full LDA run; returns the final state."""
    tuning = tuning or LdaTuning("vanilla")
    triples_rdd = context.parallelize(triples)
    state = initialize(n_docs, dictionary_size, n_topics, seed=seed)
    for iteration in range(iterations):
        state = gibbs_iteration(
            context, triples_rdd, state, n_topics, tuning,
            seed=seed + iteration + 1,
        )
    return state
