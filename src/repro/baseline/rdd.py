"""A Spark-like lazy RDD engine — the managed-runtime comparator.

This is a from-scratch, single-process reproduction of the execution
model the paper benchmarks PC against: lazy, partitioned datasets with
narrow transformations (map / filter / flatMap) that pipeline within a
partition and wide transformations (reduceByKey / groupByKey / join) that
*shuffle* — and every shuffle serializes records with pickle on the way
out and deserializes on the way in, faithfully reproducing the
per-record serde and allocation costs of a JVM dataflow engine.

Tuning knobs the Table 4 ablation exercises are here too: ``persist()``
(cache deserialized partitions), ``broadcast()`` + ``join(..., broadcast_
hint=True)`` (avoid shuffling the big side).
"""

from __future__ import annotations

import itertools

from repro.baseline.serde import KryoSerde, SimulatedHDFS
from repro.errors import BaselineError
from repro.obs import MetricsRegistry

_rdd_ids = itertools.count(1)


class BaselineContext:
    """The SparkContext stand-in: partitions, serde, HDFS, metrics."""

    def __init__(self, n_partitions=4, metrics=None):
        self.n_partitions = n_partitions
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry(labels={"engine": "baseline"})
        self.serde = KryoSerde(metrics=self.metrics)
        self.hdfs = SimulatedHDFS(self.serde)
        self._c_shuffles = self.metrics.counter(
            "baseline_shuffles_total",
            help="Wide-transformation shuffles executed by the baseline")
        self._c_shuffle_bytes = self.metrics.counter(
            "baseline_shuffle_bytes_total",
            help="Serialized bytes moved through baseline shuffles")

    @property
    def shuffles(self):
        return self._c_shuffles.value

    @property
    def shuffle_bytes(self):
        return self._c_shuffle_bytes.value

    # -- dataset creation ---------------------------------------------------------

    def parallelize(self, data, n_partitions=None):
        """An RDD over in-driver data (no serde until a boundary)."""
        n = n_partitions or self.n_partitions
        data = list(data)
        chunk = (len(data) + n - 1) // max(n, 1) or 1
        partitions = [
            data[i * chunk:(i + 1) * chunk] for i in range(n)
        ]
        return RDD(self, kind="parallelize", parents=[],
                   payload=partitions)

    def object_file(self, path):
        """An RDD reading a serialized object file from simulated HDFS.

        Every evaluation deserializes — Spark's "hot HDFS" read path.
        """
        return RDD(self, kind="object_file", parents=[], payload=path)

    def save_object_file(self, rdd, path):
        """Serialize an RDD's partitions into simulated HDFS."""
        self.hdfs.write(path, rdd._compute_all())

    def broadcast(self, value):
        """Ship ``value`` to every partition (serialized once per copy)."""
        blob = self.serde.dumps(value)
        copies = [self.serde.loads(blob) for _ in range(self.n_partitions)]
        return Broadcast(copies)

    def stats(self):
        return {
            "serde": self.serde.stats(),
            "shuffles": self.shuffles,
            "shuffle_bytes": self.shuffle_bytes,
        }


class Broadcast:
    """A broadcast variable: one deserialized copy per partition."""

    def __init__(self, copies):
        self._copies = copies

    def value(self, partition_index=0):
        return self._copies[partition_index % len(self._copies)]


class RDD:
    """A lazy, partitioned dataset."""

    def __init__(self, context, kind, parents, payload=None, fn=None):
        self.context = context
        self.rdd_id = next(_rdd_ids)
        self.kind = kind
        self.parents = parents
        self.payload = payload
        self.fn = fn
        self._cached = None
        self._persist = False

    # -- narrow transformations ------------------------------------------------------

    def map(self, fn):
        """Per-record transformation (pipelined, no serde)."""
        return RDD(self.context, "map", [self], fn=fn)

    def flat_map(self, fn):
        """Per-record one-to-many transformation."""
        return RDD(self.context, "flat_map", [self], fn=fn)

    def filter(self, fn):
        """Keep records satisfying ``fn``."""
        return RDD(self.context, "filter", [self], fn=fn)

    def map_partitions(self, fn):
        """Whole-partition transformation."""
        return RDD(self.context, "map_partitions", [self], fn=fn)

    def map_values(self, fn):
        """Transform the value of (key, value) records."""
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def key_by(self, fn):
        """Turn records into (fn(record), record) pairs."""
        return self.map(lambda record: (fn(record), record))

    # -- wide transformations ------------------------------------------------------------

    def reduce_by_key(self, fn):
        """Shuffle (key, value) pairs and combine values per key.

        Map-side combining happens before the shuffle (as in Spark), but
        the shuffled records are still serialized per partition.
        """
        return RDD(self.context, "reduce_by_key", [self], fn=fn)

    def group_by_key(self):
        """Shuffle (key, value) pairs into (key, [values]) groups."""
        return RDD(self.context, "group_by_key", [self])

    def join(self, other, broadcast_hint=False):
        """Inner join of two (key, value) RDDs.

        ``broadcast_hint=True`` is the Table 4 "join hint": the right side
        is collected, broadcast, and the join degenerates to a map over
        the left side, avoiding the full shuffle.
        """
        if broadcast_hint:
            table = {}
            for key, value in other.collect():
                table.setdefault(key, []).append(value)
            shared = self.context.broadcast(table)

            def probe(index, partition):
                local = shared.value(index)
                out = []
                for key, value in partition:
                    for match in local.get(key, ()):
                        out.append((key, (value, match)))
                return out

            return RDD(self.context, "map_partitions_indexed", [self],
                       fn=probe)
        return RDD(self.context, "join", [self, other])

    def distinct(self):
        """Shuffle-based deduplication."""
        return (
            self.map(lambda record: (record, None))
            .reduce_by_key(lambda a, b: a)
            .map(lambda kv: kv[0])
        )

    # -- persistence ------------------------------------------------------------------------

    def persist(self):
        """Cache deserialized partitions in RAM after first evaluation."""
        self._persist = True
        return self

    cache = persist

    def unpersist(self):
        self._persist = False
        self._cached = None
        return self

    # -- actions ---------------------------------------------------------------------------------

    def collect(self):
        """All records, gathered to the driver."""
        return [record for part in self._compute_all() for record in part]

    def count(self):
        return sum(len(part) for part in self._compute_all())

    def reduce(self, fn):
        result = None
        first = True
        for part in self._compute_all():
            for record in part:
                if first:
                    result = record
                    first = False
                else:
                    result = fn(result, record)
        if first:
            raise BaselineError("reduce of an empty RDD")
        return result

    def take(self, n):
        out = []
        for part in self._compute_all():
            for record in part:
                out.append(record)
                if len(out) == n:
                    return out
        return out

    def top(self, n, key=lambda x: x):
        """Largest ``n`` records, computed per-partition then merged."""
        import heapq

        candidates = []
        for part in self._compute_all():
            candidates.extend(heapq.nlargest(n, part, key=key))
        return heapq.nlargest(n, candidates, key=key)

    # -- evaluation --------------------------------------------------------------------------------

    def _compute_all(self):
        if self._cached is not None:
            return self._cached
        partitions = self._materialize()
        if self._persist:
            self._cached = partitions
        return partitions

    def _materialize(self):
        context = self.context
        kind = self.kind
        if kind == "parallelize":
            return [list(part) for part in self.payload]
        if kind == "object_file":
            return context.hdfs.read(self.payload)
        if kind == "map":
            return [
                [self.fn(record) for record in part]
                for part in self.parents[0]._compute_all()
            ]
        if kind == "flat_map":
            return [
                [out for record in part for out in self.fn(record)]
                for part in self.parents[0]._compute_all()
            ]
        if kind == "filter":
            return [
                [record for record in part if self.fn(record)]
                for part in self.parents[0]._compute_all()
            ]
        if kind == "map_partitions":
            return [
                list(self.fn(part))
                for part in self.parents[0]._compute_all()
            ]
        if kind == "map_partitions_indexed":
            return [
                list(self.fn(index, part))
                for index, part in enumerate(
                    self.parents[0]._compute_all()
                )
            ]
        if kind == "reduce_by_key":
            return self._shuffle_reduce()
        if kind == "group_by_key":
            return self._shuffle_group()
        if kind == "join":
            return self._shuffle_join()
        raise BaselineError("unknown RDD kind %r" % kind)

    def _exchange(self, outgoing):
        """The shuffle: serialize per destination partition, deserialize.

        ``outgoing`` is, per source partition, a list of per-destination
        record lists.  Returns the per-destination gathered records.
        """
        context = self.context
        n = context.n_partitions
        received = [[] for _ in range(n)]
        for per_dest in outgoing:
            for dest in range(n):
                records = per_dest[dest]
                if not records:
                    continue
                blob = context.serde.dumps(records)
                context._c_shuffle_bytes.inc(len(blob))
                received[dest].extend(context.serde.loads(blob))
        context._c_shuffles.inc()
        return received

    def _partition_pairs(self, parent):
        n = self.context.n_partitions
        outgoing = []
        for part in parent._compute_all():
            per_dest = [[] for _ in range(n)]
            for key, value in part:
                per_dest[hash(key) % n].append((key, value))
            outgoing.append(per_dest)
        return outgoing

    def _shuffle_reduce(self):
        parent = self.parents[0]
        n = self.context.n_partitions
        fn = self.fn
        # Map-side combine.
        outgoing = []
        for part in parent._compute_all():
            combined = {}
            for key, value in part:
                if key in combined:
                    combined[key] = fn(combined[key], value)
                else:
                    combined[key] = value
            per_dest = [[] for _ in range(n)]
            for key, value in combined.items():
                per_dest[hash(key) % n].append((key, value))
            outgoing.append(per_dest)
        received = self._exchange(outgoing)
        out = []
        for records in received:
            merged = {}
            for key, value in records:
                if key in merged:
                    merged[key] = fn(merged[key], value)
                else:
                    merged[key] = value
            out.append(list(merged.items()))
        return out

    def _shuffle_group(self):
        received = self._exchange(self._partition_pairs(self.parents[0]))
        out = []
        for records in received:
            groups = {}
            for key, value in records:
                groups.setdefault(key, []).append(value)
            out.append(list(groups.items()))
        return out

    def _shuffle_join(self):
        left = self._exchange(self._partition_pairs(self.parents[0]))
        right = self._exchange(self._partition_pairs(self.parents[1]))
        out = []
        for left_records, right_records in zip(left, right):
            table = {}
            for key, value in right_records:
                table.setdefault(key, []).append(value)
            joined = []
            for key, value in left_records:
                for match in table.get(key, ()):
                    joined.append((key, (value, match)))
            out.append(joined)
        return out
