"""Table 7: source-lines-of-code comparison, PC vs baseline.

The paper's point: by the SLOC metric, PC is not a harder development
target than Spark — the counts are in the same ballpark, with PC's ML
codes somewhat larger mostly because of the numerics interface.  The
reproduction counts the non-blank, non-comment lines of its own
application implementations, exactly as Table 7 counts the authors'.
"""

import os

import pytest

from bench_utils import render_table, report

_SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

#: application -> (PC implementation files, baseline implementation files)
APPLICATIONS = {
    "lilLinAlg": (
        ["lillinalg/matrix.py", "lillinalg/ops.py", "lillinalg/dsl.py"],
        ["baseline/mllib/linalg.py"],
    ),
    "TPC-H Customers per Supplier": (
        ["tpch/queries.py::cps", "tpch/schema.py"],
        ["tpch/queries.py::cps_baseline", "tpch/schema.py::py"],
    ),
    "TPC-H top-k Jaccard": (
        ["tpch/queries.py::topk"],
        ["tpch/queries.py::topk_baseline"],
    ),
    "LDA": (["ml/lda.py"], ["baseline/mllib/lda.py"]),
    "GMM": (["ml/gmm.py"], ["baseline/mllib/gmm.py"]),
    "k-means": (["ml/kmeans.py"], ["baseline/mllib/kmeans.py"]),
}

#: markers bounding the shared-file sections counted separately
_SECTIONS = {
    "tpch/queries.py::cps": ("# Customers per supplier", "# Top-k"),
    "tpch/queries.py::cps_baseline": (
        "def customers_per_supplier_baseline", "# ----"),
    "tpch/queries.py::topk": ("class TopJaccard", "def top_k_jaccard_baseline"),
    "tpch/queries.py::topk_baseline": (
        "def top_k_jaccard_baseline", "def reference_"),
    "tpch/schema.py": ("class Part", "# -- baseline"),
    "tpch/schema.py::py": ("# -- baseline", None),
}


def _sloc_of_text(text):
    count = 0
    in_docstring = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_docstring:
            if '"""' in stripped:
                in_docstring = False
            continue
        if stripped.startswith('"""') or stripped.startswith("r'''"):
            if not (stripped.endswith('"""') and len(stripped) > 3):
                in_docstring = True
            continue
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def _sloc(spec):
    if "::" in spec:
        path, _section = spec.split("::")
        start, end = _SECTIONS[spec]
    else:
        path, start, end = spec, None, None
    with open(os.path.join(_SRC, path)) as f:
        text = f.read()
    if start is not None:
        begin = text.find(start)
        text = text[begin:]
        if end is not None:
            stop = text.find(end)
            if stop > 0:
                text = text[:stop]
    return _sloc_of_text(text)


@pytest.mark.benchmark(group="table7")
def test_table7_sloc(benchmark):
    rows = []
    for application, (pc_files, baseline_files) in APPLICATIONS.items():
        pc_sloc = sum(_sloc(f) for f in pc_files)
        baseline_sloc = sum(_sloc(f) for f in baseline_files)
        rows.append((application, pc_sloc, baseline_sloc))
    report("table7_sloc", render_table(
        "Table 7 — lines of source code, PC vs baseline implementations",
        ("application", "SLOC on PlinyCompute", "SLOC on baseline"),
        rows,
    ))
    # Paper shape: same ballpark — PC never an order of magnitude bigger.
    for application, pc_sloc, baseline_sloc in rows:
        assert pc_sloc < 10 * max(baseline_sloc, 1), application
        assert pc_sloc > 0 and baseline_sloc > 0, application

    benchmark(lambda: [_sloc("ml/lda.py")])
