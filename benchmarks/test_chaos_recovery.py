"""Detect→resume recovery latency under seeded real-signal storms.

The supervision layer's acceptance bar (DESIGN §13) is qualitative —
byte-identical results under SIGKILL storms — but its *cost* is a
latency: how long between a back-end dying for real and its replacement
running the retried task.  This bench runs the multi-stage TPC-H
customers-per-supplier job on the process transport (replication=2)
under one :class:`~repro.cluster.ChaosMonkey` storm per seed, asserts
the storm changed nothing, and persists the per-seed and pooled
p50/p99 of ``pc_sup_recovery_seconds`` as ``BENCH_chaos.json`` in the
repository root.

Seeds default to (7, 11, 23); a CI matrix leg can pin one via
``PC_CHAOS_SEED``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cluster import ChaosMonkey, PCCluster, RetryPolicy
from repro.cluster.chaos import KILL, STOP
from repro.cluster.transport import remote_available
from repro.obs.metrics import quantile_from_buckets
from repro.tpch import TpchSpec, customers_per_supplier_pc, load_pc_customers

from bench_utils import render_table, report

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_chaos.json"
)

TPCH_SPEC = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=11)
DEFAULT_SEEDS = (7, 11, 23)
KILLS, STOPS = 3, 1
WINDOW_S = 1.5
HORIZON_S = 2.2

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)


def _seeds():
    pinned = os.environ.get("PC_CHAOS_SEED")
    if pinned:
        return (int(pinned),)
    return DEFAULT_SEEDS


def _cluster(tmp_path, tag):
    root = tmp_path / tag
    root.mkdir(parents=True, exist_ok=True)
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01,
                         backoff_max_s=0.05)
    cluster = PCCluster(
        n_workers=3, page_size=1 << 14, spill_root=str(root),
        transport="process", retry_policy=policy,
    )
    load_pc_customers(cluster, TPCH_SPEC, replication=2)
    return cluster


def _storm_leg(tmp_path, seed, baseline):
    cluster = _cluster(tmp_path, "storm-%d" % seed)
    monkey = ChaosMonkey(cluster, seed=seed, kills=KILLS, stops=STOPS,
                         window_s=WINDOW_S)
    runs = 0
    start = time.monotonic()
    with monkey:
        horizon = time.monotonic() + HORIZON_S
        while time.monotonic() < horizon:
            assert customers_per_supplier_pc(cluster) == baseline
            runs += 1
    elapsed = time.monotonic() - start
    assert monkey.counts == {KILL: KILLS, STOP: STOPS}
    assert customers_per_supplier_pc(cluster) == baseline

    snapshot = cluster.metrics()
    family = snapshot.families["pc_sup_recovery_seconds"]
    leg = {
        "seed": seed,
        "runs": runs,
        "elapsed_s": round(elapsed, 3),
        "kills_delivered": monkey.counts[KILL],
        "stops_delivered": monkey.counts[STOP],
        "deaths": snapshot.value("pc_sup_deaths_total"),
        "crashes_booked": snapshot.value("pc_faults_backend_crashes_total"),
        "reforks": sum(w.refork_count for w in cluster.workers),
        "recovery_p50_s": cluster.supervisor.recovery_quantile(0.5),
        "recovery_p99_s": cluster.supervisor.recovery_quantile(0.99),
        "_family": family,
    }
    cluster.close()
    assert cluster.shm_registry.live == {}
    return leg


def _pooled_quantiles(families, q_list):
    """Quantiles over the bucket counts summed across every storm leg."""
    bounds, counts, count, max_observed = None, None, 0, None
    for family in families:
        for series in family["series"].values():
            if counts is None:
                bounds = family["bounds"]
                counts = list(series["counts"])
            else:
                counts = [a + b for a, b in zip(counts, series["counts"])]
            count += series["count"]
            if series["max"] is not None:
                max_observed = (
                    series["max"] if max_observed is None
                    else max(max_observed, series["max"])
                )
    if counts is None:
        return {q: None for q in q_list}
    return {
        q: quantile_from_buckets(q, bounds, counts, count, max_observed)
        for q in q_list
    }


def _fmt_ms(seconds):
    return "-" if seconds is None else "%.1f" % (seconds * 1e3)


@needs_process
@pytest.mark.benchmark(group="chaos")
def test_chaos_recovery_writes_bench_json(tmp_path, benchmark):
    baseline_cluster = _cluster(tmp_path, "baseline")
    baseline = customers_per_supplier_pc(baseline_cluster)
    baseline_cluster.close()

    legs = [_storm_leg(tmp_path, seed, baseline) for seed in _seeds()]
    pooled = _pooled_quantiles(
        [leg.pop("_family") for leg in legs], (0.5, 0.99)
    )

    # Every leg saw real deaths (booked as crashes whether the exit was
    # caught by the transport or declared DEAD by heartbeat silence),
    # re-forked the victims, and measured the recovery.
    for leg in legs:
        assert leg["crashes_booked"] >= 1, leg
        assert leg["reforks"] >= 1, leg
        assert leg["recovery_p50_s"] is not None, leg

    payload = {
        "benchmark": "chaos_recovery",
        "workload": {
            "job": "tpch_customers_per_supplier",
            "n_customers": TPCH_SPEC.n_customers,
            "n_suppliers": TPCH_SPEC.n_suppliers,
            "replication": 2,
            "transport": "process",
            "kills": KILLS,
            "stops": STOPS,
            "window_s": WINDOW_S,
            "seeds": [leg["seed"] for leg in legs],
        },
        "results": legs,
        "recovery_p50_s": pooled[0.5],
        "recovery_p99_s": pooled[0.99],
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    report("chaos_recovery", render_table(
        "Detect -> resume recovery latency under signal storms "
        "(%d kills + %d stop per seed)" % (KILLS, STOPS),
        ["seed", "runs", "deaths", "reforks", "p50 ms", "p99 ms"],
        [
            [str(leg["seed"]), str(leg["runs"]), str(leg["deaths"]),
             str(leg["reforks"]), _fmt_ms(leg["recovery_p50_s"]),
             _fmt_ms(leg["recovery_p99_s"])]
            for leg in legs
        ] + [
            ["all", "-", "-", "-", _fmt_ms(pooled[0.5]),
             _fmt_ms(pooled[0.99])]
        ],
    ))

    # One representative storm for pytest-benchmark stats.
    benchmark(lambda: _storm_leg(tmp_path, _seeds()[0], baseline))
