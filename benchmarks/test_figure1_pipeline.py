"""Figure 1: execution of the first four stages of the example pipeline.

The paper's figure walks the Dep/Emp/Sup join's opening pipeline:
``att_acc`` extracts ``Dep.deptName`` into a new vector, ``method_call``
invokes ``Emp.getDeptName()``, ``==`` builds a boolean vector, and
``FILTER`` drops the non-matching rows.  This bench compiles the same
``getSelection`` and prints the vector list after each of the four
stages.
"""

import pytest

from repro.core import (
    JoinComp,
    ObjectReader,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.engine.vectors import VectorList
from repro.tcap import compile_computations
from repro.tcap.ir import ApplyStmt, FilterStmt

from bench_utils import render_table, report


class Dep:
    def __init__(self, deptName):
        self.deptName = deptName

    def __repr__(self):
        return "Dep(%s)" % self.deptName


class Emp:
    def __init__(self, name, dept):
        self.name = name
        self.dept = dept

    def getDeptName(self):
        return self.dept

    def __repr__(self):
        return "Emp(%s)" % self.name


class DeptJoin(JoinComp):
    def get_selection(self, dep, emp):
        return lambda_from_member(dep, "deptName") == \
            lambda_from_method(emp, "getDeptName")

    def get_projection(self, dep, emp):
        return lambda_from_native([dep, emp], lambda d, e: (d.deptName, e.name))


@pytest.mark.benchmark(group="figure1")
def test_figure1_pipeline_stages(benchmark):
    reader_d = ObjectReader("db", "dep")
    reader_e = ObjectReader("db", "emp")
    join = DeptJoin().set_input(0, reader_d).set_input(1, reader_e)
    writer = Writer("db", "out").set_input(join)
    program = compile_computations(writer)

    deps = [Dep("sales"), Dep("eng")]
    emps = [Emp("ann", "sales"), Emp("bob", "hr"), Emp("cat", "eng")]

    # Drive the first four post-join stages by hand over one vector list,
    # mirroring the figure: att_acc -> method_call -> == -> FILTER.
    applies = [
        s for s in program.statements
        if isinstance(s, ApplyStmt)
        and s.info.get("type") in ("attAccess", "methodCall",
                                   "equalityCheck")
    ]
    filters = [s for s in program.statements if isinstance(s, FilterStmt)]
    att = next(s for s in applies if s.info.get("type") == "attAccess")
    method = next(s for s in applies if s.info.get("type") == "methodCall")
    equals = next(s for s in applies if s.info.get("type") == "equalityCheck")
    recheck_filter = filters[-1]

    # The joined vector list (dep x emp pairs, as the figure's example).
    pairs = [(d, e) for d in deps for e in emps]
    vlist = VectorList({
        att.apply_columns[0]: [d for d, _e in pairs],
        method.apply_columns[0]: [e for _d, e in pairs],
    })
    rows = []

    def run_stage(label, stage, vlist):
        fn = program.stage_fn(stage.computation, stage.stage)
        inputs = [vlist.column(c) for c in stage.apply_columns]
        produced = fn(*inputs)
        out = vlist.with_column(stage.new_column, list(produced))
        rows.append((label, stage.stage, stage.new_column,
                     ", ".join(str(v) for v in produced)))
        return out

    vlist = run_stage("stage 1 (att_acc: Dep.deptName)", att, vlist)
    vlist = run_stage("stage 2 (method_call: getDeptName())", method, vlist)
    equals_inputs = [vlist.column(att.new_column),
                     vlist.column(method.new_column)]
    bools = program.stage_fn(equals.computation, equals.stage)(*equals_inputs)
    vlist = vlist.with_column(equals.new_column, bools)
    rows.append(("stage 3 (==: bl)", equals.stage, equals.new_column,
                 ", ".join(str(b) for b in bools)))
    kept = [
        (d, e)
        for (d, e), keep in zip(pairs, bools)
        if keep
    ]
    rows.append(("stage 4 (FILTER)", "filter", recheck_filter.bool_column,
                 ", ".join("(%r,%r)" % (d, e) for d, e in kept)))

    report("figure1_pipeline", render_table(
        "Figure 1 — the four opening pipeline stages of the Dep/Emp join",
        ("stage", "compiled stage", "new column", "vector contents"),
        rows,
    ))
    assert [e.name for _d, e in kept] == ["ann", "cat"]

    benchmark(lambda: compile_computations(
        Writer("db", "out").set_input(
            DeptJoin().set_input(0, ObjectReader("db", "dep"))
            .set_input(1, ObjectReader("db", "emp"))
        )
    ))
