"""Table 2: the distributed linear algebra benchmark (Section 8.3.2).

Three computations — Gram matrix (X^T X), least-squares linear
regression ((X^T X)^-1 X^T y), and metric nearest-neighbor search — at
three dimensionalities, on:

* **PC (lilLinAlg)** — MatrixBlock sets, join+aggregation multiply;
* **baseline mllib** — RowMatrix on the Spark-like RDD engine (rows are
  objects; shuffles and driver aggregation pay pickling);
* **SystemML-style** — like the paper's SystemML, switches to a purely
  local (single-node, no distribution overhead) execution when the
  computation is small; block-partitioned RDD execution otherwise.

Paper shape to reproduce: lilLinAlg wins at the higher dimensionalities;
the local-mode comparator can win at dimension 10 because distribution
overhead dominates tiny computations.

(The paper's SciDB column has no open substitute here; DESIGN.md
documents the omission.)
"""

import numpy as np
import pytest

from repro.baseline import BaselineContext
from repro.baseline.mllib.linalg import RowMatrix, linear_regression
from repro.cluster import PCCluster
from repro.lillinalg import DistributedMatrix

from bench_utils import fmt_seconds, render_table, report, timed

#: (dimension, n_points) pairs — scaled from the paper's 10^6 points
#: (n stays above d so the Gram matrix is invertible).
CASES = [(10, 4000), (100, 2000), (1000, 1200)]

_LOCAL_THRESHOLD_CELLS = 4000 * 10  # "small enough to run locally"


def _data(dim, n):
    rng = np.random.default_rng(dim)
    x = rng.normal(size=(n, dim))
    y = x @ rng.normal(size=dim) + 0.01 * rng.normal(size=n)
    return x, y


def _pc_matrices(x, y):
    # Like the paper (Section 8.3.2), page and block sizes are tuned per
    # dimensionality: wide matrices chunk their columns so no product
    # block outgrows a page.
    cluster = PCCluster(n_workers=4, page_size=4 << 20)
    block_rows = max(64, x.shape[0] // 8)
    block_cols = min(x.shape[1], 256)
    dx = DistributedMatrix.from_numpy(
        cluster, "lla", x, block_rows, block_cols
    )
    dy = DistributedMatrix.from_numpy(
        cluster, "lla", y.reshape(-1, 1), block_rows, 1
    )
    return cluster, dx, dy


def _systemml_style(x, fn_local, fn_distributed):
    """Local mode for small inputs (the paper's starred cells)."""
    if x.size <= _LOCAL_THRESHOLD_CELLS:
        return timed(fn_local)[0], "local"
    return timed(fn_distributed)[0], "distributed"


def _run_case(dim, n):
    x, y = _data(dim, n)
    row = {"dim": dim}

    cluster, dx, dy = _pc_matrices(x, y)
    context = BaselineContext(n_partitions=8)
    rows_rdd = context.parallelize(list(x)).persist()
    rows_rdd.collect()
    matrix = RowMatrix(rows_rdd, n_cols=dim)
    y_rdd = context.parallelize(list(y))

    # -- Gram matrix -----------------------------------------------------------
    pc_time, pc_gram = timed(lambda: dx.transpose_multiply(dx).to_numpy())
    assert np.allclose(pc_gram, x.T @ x, atol=1e-6 * n)
    mllib_time, _g = timed(matrix.gramian)
    sysml_time, mode = _systemml_style(
        x, lambda: x.T @ x, matrix.gramian
    )
    row["gram"] = (pc_time, mllib_time, sysml_time, mode)

    # -- Linear regression ------------------------------------------------------
    def pc_regression():
        gram = dx.transpose_multiply(dx)
        xty = dx.transpose_multiply(dy)
        return gram.inverse().multiply(xty).to_numpy().ravel()

    pc_time, pc_beta = timed(pc_regression)
    expected = np.linalg.solve(x.T @ x, x.T @ y)
    assert np.allclose(pc_beta, expected, atol=1e-6)
    mllib_time, _b = timed(lambda: linear_regression(matrix, y_rdd))
    sysml_time, _mode = _systemml_style(
        x, lambda: np.linalg.solve(x.T @ x, x.T @ y),
        lambda: linear_regression(matrix, y_rdd),
    )
    row["regression"] = (pc_time, mllib_time, sysml_time, mode)

    # -- Nearest neighbor ----------------------------------------------------------
    rng = np.random.default_rng(1 + dim)
    query = rng.normal(size=dim)
    metric = np.eye(dim)

    def pc_nearest():
        delta = dx.subtract_row_vector(query)
        weighted = delta.multiply(
            DistributedMatrix.from_numpy(cluster, "lla", metric,
                                         dx.block_cols, dx.block_cols)
        )
        distances = weighted.elementwise_multiply(delta).row_sum()
        return int(np.argmin(distances.to_numpy().ravel()))

    pc_time, pc_index = timed(pc_nearest)
    expected_index = int(np.argmin(
        np.einsum("ij,jk,ik->i", x - query, metric, x - query)
    ))
    assert pc_index == expected_index
    mllib_time, _nn = timed(
        lambda: matrix.nearest_neighbor(query, metric)
    )
    sysml_time, _mode = _systemml_style(
        x,
        lambda: np.argmin(np.einsum(
            "ij,jk,ik->i", x - query, metric, x - query
        )),
        lambda: matrix.nearest_neighbor(query, metric),
    )
    row["nearest"] = (pc_time, mllib_time, sysml_time, mode)
    return row


@pytest.mark.benchmark(group="table2")
def test_table2_linear_algebra(benchmark):
    rows = [_run_case(dim, n) for dim, n in CASES]

    table_rows = []
    for computation in ("gram", "regression", "nearest"):
        for row in rows:
            pc, mllib, sysml, mode = row[computation]
            star = "*" if mode == "local" else ""
            table_rows.append((
                computation, row["dim"],
                fmt_seconds(pc), fmt_seconds(sysml) + star,
                fmt_seconds(mllib),
            ))
    report("table2_linear_algebra", render_table(
        "Table 2 — linear algebra (times MM:SS.mmm; * = local mode)",
        ("computation", "dim", "PC(lilLinAlg)", "SystemML-style",
         "baseline mllib"),
        table_rows,
    ))

    # Paper shape: at the highest dimensionality PC beats the mllib
    # comparator on every computation.
    for computation in ("gram", "regression", "nearest"):
        pc, mllib, _s, _m = rows[-1][computation]
        assert pc < mllib, (
            "%s at dim %d: PC %.3fs vs mllib %.3fs"
            % (computation, rows[-1]["dim"], pc, mllib)
        )

    # Representative op for --benchmark-only stats: the dim-100 Gram.
    x, y = _data(100, 1000)
    cluster, dx, _dy = _pc_matrices(x, y)
    benchmark(lambda: dx.transpose_multiply(dx))
