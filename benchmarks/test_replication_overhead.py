"""What replication costs: load and query time at factor 1, 2, 3.

Replica writes are synchronous — every sealed page ships to ``k``
ring-chosen workers before the load returns — so the factor buys
durability with load-time bytes and time.  Queries read each page once
(from its first live replica), so query time should stay roughly flat.
This bench quantifies both and persists ``BENCH_replication.json`` in
the repository root so future PRs can diff the overhead curve.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import PCCluster
from repro.core import AggregateComp, ObjectReader, Writer, lambda_from_member
from repro.memory import Float64, Int32, Int64, PCObject

from bench_utils import fmt_seconds, render_table, report, timed

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_replication.json"
)

N_POINTS = 3000
N_CLUSTERS = 8
FACTORS = (1, 2, 3)


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class SumByCluster(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


def _run_factor(tmp_path, replication):
    cluster = PCCluster(
        n_workers=3, page_size=1 << 13,
        spill_root=str(tmp_path / ("r%d" % replication)),
    )
    cluster.create_database("db")
    cluster.create_set("db", "points", Point, replication=replication)

    def load():
        with cluster.loader("db", "points") as loader:
            for i in range(N_POINTS):
                loader.append(Point, pid=i, cluster_id=i % N_CLUSTERS,
                              x=float(i))

    load_s, _ = timed(load)

    agg = SumByCluster().set_input(ObjectReader("db", "points"))

    def query():
        cluster.execute_computations(
            Writer("db", "sums").set_input(agg), job_name="agg"
        )
        return cluster.read("db", "sums", as_pairs=True, comp=agg)

    query_s, sums = timed(query)
    assert len(sums) == N_CLUSTERS
    assert sums[0] == sum(
        float(i) for i in range(N_POINTS) if i % N_CLUSTERS == 0
    )

    meta = cluster.catalog.set_metadata("db", "points")
    return {
        "replication": replication,
        "load_s": round(load_s, 6),
        "query_s": round(query_s, 6),
        "pages": len(meta.pages),
        "replica_writes": cluster.replication.replica_writes,
        "net_bytes_zero_copy": cluster.network.bytes_zero_copy,
        "net_messages": cluster.network.messages,
    }


@pytest.mark.benchmark(group="replication")
def test_replication_overhead_writes_bench_json(tmp_path, benchmark):
    rows = [_run_factor(tmp_path, k) for k in FACTORS]
    base = rows[0]

    payload = {
        "benchmark": "replication_overhead",
        "workload": {
            "n_workers": 3,
            "n_points": N_POINTS,
            "n_clusters": N_CLUSTERS,
            "factors": list(FACTORS),
        },
        "results": rows,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    with open(BENCH_PATH) as f:
        parsed = json.load(f)
    results = {r["replication"]: r for r in parsed["results"]}
    # Factor 1 ships no replicas; factor k ships (k-1) copies per page.
    assert results[1]["replica_writes"] == 0
    for k in FACTORS[1:]:
        assert results[k]["replica_writes"] == \
            (k - 1) * results[k]["pages"]
        assert results[k]["net_bytes_zero_copy"] > \
            results[1]["net_bytes_zero_copy"]

    report("replication_overhead", render_table(
        "Replication overhead (%d points, 3 workers)" % N_POINTS,
        ["replication", "load", "query", "pages", "replica writes",
         "zero-copy bytes"],
        [
            [str(r["replication"]), fmt_seconds(r["load_s"]),
             fmt_seconds(r["query_s"]), str(r["pages"]),
             str(r["replica_writes"]), "{:,}".format(
                 r["net_bytes_zero_copy"])]
            for r in rows
        ],
    ) + "\n\nbaseline: factor 1 load %s / query %s\n" % (
        fmt_seconds(base["load_s"]), fmt_seconds(base["query_s"])
    ))

    # One representative operation for pytest-benchmark stats.
    benchmark(lambda: _run_factor(tmp_path, 2))
