"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at
simulation scale.  Timings for the side-by-side comparisons are taken
with ``time.perf_counter`` (one measured run after any setup); each test
additionally registers one representative operation with the
pytest-benchmark fixture so ``--benchmark-only`` emits its usual stats.

Rendered tables are written to ``benchmarks/results/<name>.txt`` (and
stdout), which is where EXPERIMENTS.md's recorded numbers come from.
"""

from __future__ import annotations

import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def timed(fn, *args, **kwargs):
    """Run ``fn`` once; returns (elapsed_seconds, result)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def fmt_seconds(seconds):
    """MM:SS.mmm, matching the paper's MM:SS format at sub-second scale."""
    minutes = int(seconds // 60)
    return "%02d:%06.3f" % (minutes, seconds % 60)


def render_table(title, headers, rows):
    """A paper-style fixed-width text table."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows),
                                      default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append(
        " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def report(name, text):
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return path
