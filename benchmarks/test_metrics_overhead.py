"""Profiler/metrics overhead budget: instrumented runs stay within 5%.

Runs the Figure-4 trace workload (selection + aggregation) on identical
clusters with profiling enabled and disabled, interleaved best-of-N so
transient machine noise hits both arms equally.  The CI metrics leg
fails if the enabled-path overhead exceeds the 5% budget, and the
measured numbers land in ``BENCH_metrics.json`` next to a sample of the
cluster-wide metrics snapshot the instrumented run produced.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
)
from repro.memory import Float64, Int32, Int64, PCObject

from bench_utils import report

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_metrics.json"
)

N_POINTS = 6000
N_CLUSTERS = 8
TRIALS = 7
OVERHEAD_BUDGET = 0.05


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class Positive(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "x") > 0.0


class SumByCluster(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


def _make_cluster(profiling):
    cluster = PCCluster(n_workers=4, page_size=1 << 13,
                        profiling=profiling)
    cluster.create_database("db")
    cluster.create_set("db", "points", Point)
    with cluster.loader("db", "points") as load:
        for i in range(N_POINTS):
            load.append(Point, pid=i, cluster_id=i % N_CLUSTERS,
                        x=float(i % 50) - 10.0)
    return cluster


def _run_job(cluster, job_name):
    computation = Writer("db", job_name).set_input(
        SumByCluster().set_input(
            Positive().set_input(ObjectReader("db", "points"))
        )
    )
    start = time.perf_counter()
    cluster.execute_computations(computation, job_name=job_name)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="metrics")
def test_profiler_overhead_within_budget(benchmark):
    times = {False: [], True: []}
    clusters = {False: _make_cluster(False), True: _make_cluster(True)}
    # Warm both arms once (imports, code caches) before measuring.
    for profiling, cluster in clusters.items():
        _run_job(cluster, "warmup")
    for trial in range(TRIALS):
        for profiling, cluster in clusters.items():
            times[profiling].append(
                _run_job(cluster, "run-%d" % trial)
            )

    off = min(times[False])
    on = min(times[True])
    overhead = (on - off) / off

    # The instrumented cluster really did profile: per-stage and
    # per-operator series exist with observations.
    snapshot = clusters[True].metrics()
    assert snapshot.quantile("pc_op_seconds", 0.5, operator="apply") \
        is not None
    assert snapshot.value("pc_sched_stages_total") > 0
    plain = clusters[False].metrics()
    assert plain.quantile("pc_op_seconds", 0.5) is None

    payload = {
        "benchmark": "metrics_overhead",
        "workload": {
            "n_workers": 4,
            "n_points": N_POINTS,
            "n_clusters": N_CLUSTERS,
            "trials": TRIALS,
        },
        "wall_s_profiling_off": round(off, 6),
        "wall_s_profiling_on": round(on, 6),
        "overhead_fraction": round(overhead, 6),
        "overhead_budget": OVERHEAD_BUDGET,
        "samples": {
            "off": [round(t, 6) for t in times[False]],
            "on": [round(t, 6) for t in times[True]],
        },
        "metrics_snapshot": json.loads(snapshot.to_json()),
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    report("metrics_overhead", (
        "profiling off (best of %d): %.4fs\n"
        "profiling on  (best of %d): %.4fs\n"
        "overhead: %.2f%% (budget %.0f%%)"
        % (TRIALS, off, TRIALS, on, 100 * overhead,
           100 * OVERHEAD_BUDGET)
    ))

    assert overhead <= OVERHEAD_BUDGET, (
        "profiler overhead %.2f%% exceeds the %.0f%% budget"
        % (100 * overhead, 100 * OVERHEAD_BUDGET)
    )

    benchmark(lambda: _run_job(clusters[True], "bench"))
